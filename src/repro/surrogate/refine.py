"""Adaptive refinement: calibrate new knots only where they matter.

The builder starts from a coarse lattice of share levels, fits a
:class:`~repro.surrogate.surface.ParameterSurface`, and then refines it
with a leave-one-level-out cross-validation loop:

1. For every *interior* level of every refinable axis, rebuild the
   blend from the two neighbouring levels alone and predict the
   parameters at each knot of the held-out plane.
2. Score the plane by the worst relative error over the time-domain
   parameters (:data:`ERROR_PARAMS`) against the exact calibrated
   values.
3. If the worst plane's error exceeds the tolerance, insert the
   midpoints of the two bracketing intervals as new levels, calibrate
   the new planes, and loop. Narrower intervals shrink the linear
   interpolation error quadratically, so the loop converges for any
   smooth parameter surface.

Every calibration goes through the supplied
:class:`~repro.calibration.cache.CalibrationCache`, which means:

* **budget awareness** — the builder checks ``max_calibrations``
  *before* paying for a plane and stops with ``stopped=True`` instead
  of overshooting (the surface stays valid, just coarser than asked);
* **crash recovery** — a cache constructed with a
  :class:`~repro.recovery.journal.RunJournal` commits every calibrated
  knot the moment it completes, so a killed refinement resumes by
  replaying the journal into the cache and re-running the builder: the
  replayed knots answer instantly and the loop continues from exactly
  where it died, producing a bit-identical fit (asserted in
  ``tests/surrogate/test_refine.py``);
* **engine batching** — a cache whose runner carries a PR-4
  :class:`~repro.parallel.EvaluationEngine` runs each calibration's
  measurement trials as engine batches; the refinement loop itself
  stays serial because experiments draw on sequential RNG streams.

Observability: every refinement round increments
``surrogate.refinements`` (labelled ``axis=<name>``); each fresh
calibration the builder pays for is visible as ``calibration.cache.fresh``
plus a ``surrogate.calibrations`` counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics
from repro.optimizer.params import OptimizerParameters
from repro.surrogate.surface import (
    AXIS_NAMES,
    Knot,
    ParameterSurface,
    blend_corners,
    knot_key,
)
from repro.util.errors import CalibrationError, SurrogateError
from repro.virt.resources import ResourceVector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.calibration.cache import CalibrationCache

#: Default cross-validation tolerance: worst relative error allowed on
#: a held-out plane before its bracketing intervals are subdivided.
DEFAULT_TOLERANCE = 0.05

#: Parameters scored by the cross-validation error metric — the
#: time-domain quantities interpolation is supposed to reproduce. The
#: integer capacity fields track the memory share by construction and
#: are excluded.
ERROR_PARAMS = ("random_page_cost", "cpu_tuple_cost",
                "cpu_index_tuple_cost", "cpu_operator_cost",
                "cpu_like_byte_cost", "seconds_per_seq_page")

#: Intervals narrower than this are never subdivided further — the
#: share axes are quantized at 1e-4, and a surface this fine is beyond
#: any physical calibration's noise floor anyway.
MIN_INTERVAL = 1e-3


def design_levels(problem, grid: int, fine_factor: int):
    """Initial lattice levels per axis for a continuous-design surrogate.

    Controlled axes get three levels spanning the range a fine-grid
    search of ``grid * fine_factor`` units can reach; uncontrolled axes
    get exactly the fixed shares the problem pins them to (usually one
    level). The memory floor keeps every lattice knot bootable — the
    hypervisor refuses guests below ``MIN_GUEST_MEMORY_MIB``.

    Returns a dict keyed by :class:`~repro.virt.resources.ResourceKind`.
    *problem* is duck-typed (any object with ``n_workloads``,
    ``machine``, ``controlled_resources``, ``fixed_share_for`` and
    ``specs``), so this module stays independent of ``repro.core``.
    """
    from repro.virt.resources import ALL_RESOURCES, ResourceKind
    from repro.virt.vm import MIN_GUEST_MEMORY_MIB

    fine = grid * fine_factor
    n = problem.n_workloads
    levels = {}
    for kind in ALL_RESOURCES:
        if kind in problem.controlled_resources:
            lo = 1.0 / fine
            if kind is ResourceKind.MEMORY:
                lo = max(lo, MIN_GUEST_MEMORY_MIB / problem.machine.memory_mib)
            hi = 1.0 - (n - 1) / fine
            levels[kind] = (round(lo, 4), round((lo + hi) / 2, 4),
                            round(hi, 4))
        else:
            levels[kind] = tuple(sorted({
                round(problem.fixed_share_for(kind, spec.name), 4)
                for spec in problem.specs
            }))
    return levels


def relative_error(predicted: OptimizerParameters,
                   exact: OptimizerParameters) -> float:
    """Worst relative error over :data:`ERROR_PARAMS`."""
    predicted_values = predicted.as_dict()
    exact_values = exact.as_dict()
    worst = 0.0
    for name in ERROR_PARAMS:
        reference = max(abs(exact_values[name]), 1e-12)
        worst = max(worst,
                    abs(predicted_values[name] - exact_values[name])
                    / reference)
    return worst


@dataclass
class RefinementReport:
    """What one :meth:`SurrogateBuilder.build` call did."""

    surface: ParameterSurface
    #: Exact-calibration requests made (initial lattice + refinement);
    #: equals fresh experiments on a cold cache, and includes instantly
    #: answered replays on a warm one (see
    #: :meth:`SurrogateBuilder._calibrate`).
    calibrations: int = 0
    #: Refinement rounds executed (one per subdivided plane).
    refinements: int = 0
    #: Worst held-out-plane error at the final fit (0 when no axis has
    #: interior levels to cross-validate).
    worst_error: float = 0.0
    #: True when the calibration budget stopped refinement early.
    stopped: bool = False
    #: (axis name, held-out level, error) per cross-validation score of
    #: the final fit, for reports and tests.
    scores: List[Tuple[str, float, float]] = field(default_factory=list)


@dataclass
class RefitReport:
    """What one :meth:`SurrogateBuilder.refit` call did."""

    surface: ParameterSurface
    #: Knots actually overwritten with fresh parameters.
    refits: int = 0
    #: Budget requests spent (replays included — see :meth:`refit`).
    requests: int = 0
    #: True when the budget ran out before every requested knot.
    stopped: bool = False
    #: Knots kept stale after a permanent calibration failure.
    fallbacks: int = 0


class SurrogateBuilder:
    """Fits and adaptively refines a parameter surface."""

    def __init__(self, cache: "CalibrationCache",
                 tolerance: float = DEFAULT_TOLERANCE,
                 max_calibrations: Optional[int] = None):
        if tolerance <= 0:
            raise SurrogateError("tolerance must be positive")
        if max_calibrations is not None and max_calibrations < 1:
            raise SurrogateError("max_calibrations must be at least 1")
        self._cache = cache
        self._tolerance = tolerance
        self._max_calibrations = max_calibrations
        self._spent = 0
        #: Requests held back from the current phase's budget checks —
        #: :meth:`build` sets this to its ``reserve`` argument so the
        #: cross-validation loop leaves room for a later polish phase.
        self._reserve = 0

    # -- calibration plumbing ----------------------------------------------

    @property
    def spent(self) -> int:
        """Calibration requests made so far (see :meth:`_calibrate`)."""
        return self._spent

    @property
    def remaining(self) -> Optional[int]:
        """Requests left in the budget (``None`` when unbounded)."""
        if self._max_calibrations is None:
            return None
        return max(0, self._max_calibrations - self._spent)

    def budget_allows(self, n_new: int) -> bool:
        """Whether *n_new* more requests fit within the budget."""
        return self._budget_allows(n_new)

    def _budget_allows(self, n_new: int) -> bool:
        if self._max_calibrations is None:
            return True
        return self._spent + n_new <= self._max_calibrations - self._reserve

    def _calibrate(self, knot: Knot) -> OptimizerParameters:
        """One exact calibration through the cache (journaled there).

        The budget counts *requests*, not fresh experiments: a knot the
        cache already holds (warm cache, journal replay on resume) is
        answered instantly but still spends one budget unit. That makes
        the budget's stop decision a pure function of the knot sequence
        — a killed-and-resumed refinement, whose early knots replay from
        the journal, stops at exactly the same point as an uninterrupted
        one. On a cold cache, requests and fresh experiments coincide.
        """
        params = self._cache.params_for(
            ResourceVector.of(cpu=knot[0], memory=knot[1], io=knot[2]),
            exact=True)
        self._spent += 1
        metrics.counter("surrogate.calibrations").inc()
        return params

    def _calibrate_plane(self, axes: List[List[float]], axis: int,
                         level: float,
                         knots: Dict[Knot, OptimizerParameters]) -> None:
        """Calibrate every knot of one axis level's plane, in order."""
        from itertools import product
        other = [axes[a] if a != axis else [level] for a in range(3)]
        for coords in product(*other):
            knot = knot_key(coords)
            if knot not in knots:
                knots[knot] = self._calibrate(knot)

    @staticmethod
    def _plane_size(axes: List[List[float]], axis: int) -> int:
        size = 1
        for a in range(3):
            if a != axis:
                size *= len(axes[a])
        return size

    # -- cross-validation ---------------------------------------------------

    def _held_out_error(self, axes: List[List[float]], axis: int,
                        index: int,
                        knots: Dict[Knot, OptimizerParameters]) -> float:
        """Worst error predicting level *index* from its two neighbours."""
        from itertools import product
        lo = axes[axis][index - 1]
        hi = axes[axis][index + 1]
        level = axes[axis][index]
        fraction = (level - lo) / (hi - lo)
        other = [axes[a] if a != axis else [level] for a in range(3)]
        worst = 0.0
        for coords in product(*other):
            lo_knot = knot_key(tuple(
                lo if a == axis else coords[a] for a in range(3)))
            hi_knot = knot_key(tuple(
                hi if a == axis else coords[a] for a in range(3)))
            predicted = blend_corners(
                [(knots[lo_knot], 1.0 - fraction), (knots[hi_knot], fraction)],
                clamp=True)
            worst = max(worst,
                        relative_error(predicted, knots[knot_key(coords)]))
        return worst

    def _scores(self, axes: List[List[float]], refinable: Sequence[int],
                knots: Dict[Knot, OptimizerParameters]
                ) -> List[Tuple[int, int, float]]:
        """(axis, interior index, error) for every held-out plane."""
        scores = []
        for axis in refinable:
            for index in range(1, len(axes[axis]) - 1):
                scores.append((axis, index,
                               self._held_out_error(axes, axis, index,
                                                    knots)))
        return scores

    @staticmethod
    def _knot_uncertainty(axes: List[List[float]],
                          refinable: Sequence[int],
                          scores: List[Tuple[int, int, float]],
                          ) -> Dict[Knot, float]:
        """Per-knot uncertainty from the final cross-validation scores.

        A held-out plane's error is the fit's own estimate of how wrong
        interpolation is *around* that level; each knot inherits the
        worst such error over its three axis levels (boundary levels,
        which are never held out, inherit their nearest interior
        level's error). This is the acquisition signal the surface
        carries for the polish phase and the drift planner.
        """
        level_error: List[Dict[float, float]] = [{}, {}, {}]
        for axis, index, error in scores:
            level_error[axis][axes[axis][index]] = error
        for axis in refinable:
            values = axes[axis]
            if len(values) >= 3:
                level_error[axis].setdefault(
                    values[0], level_error[axis][values[1]])
                level_error[axis].setdefault(
                    values[-1], level_error[axis][values[-2]])
        from itertools import product
        return {
            knot_key(coords): max(
                level_error[axis].get(coords[axis], 0.0)
                for axis in range(3))
            for coords in product(*axes)
        }

    # -- the build loop -----------------------------------------------------

    def build(self, cpu_levels: Sequence[float],
              memory_levels: Sequence[float],
              io_levels: Sequence[float] = (1.0,),
              reserve: int = 0) -> RefinementReport:
        """Calibrate the initial lattice, then refine to tolerance.

        Axes with a single level are fixed (uncontrolled resources) and
        never refined; axes with two levels have no interior plane to
        cross-validate until a refinement of another axis... they stay
        as given — supply three levels (lo, mid, hi) on every axis you
        want the error control to cover.

        *reserve* holds that many budget units back from the
        cross-validation loop (the lattice and refinements stop as if
        the budget were ``max_calibrations - reserve``), leaving them
        for a later :meth:`extend`-based polish phase.
        """
        if reserve < 0:
            raise SurrogateError("reserve must be non-negative")
        self._reserve = reserve
        try:
            return self._build(cpu_levels, memory_levels, io_levels)
        finally:
            self._reserve = 0

    def _build(self, cpu_levels: Sequence[float],
               memory_levels: Sequence[float],
               io_levels: Sequence[float]) -> RefinementReport:
        axes: List[List[float]] = [
            sorted({round(float(v), 4) for v in levels})
            for levels in (cpu_levels, memory_levels, io_levels)
        ]
        for axis, values in enumerate(axes):
            if not values:
                raise SurrogateError(
                    f"axis {AXIS_NAMES[axis]} needs at least one level")
        refinable = [axis for axis in range(3) if len(axes[axis]) >= 3]

        knots: Dict[Knot, OptimizerParameters] = {}
        report = RefinementReport(surface=None)  # type: ignore[arg-type]
        # Initial lattice, in deterministic product order.
        from itertools import product
        lattice = [knot_key(coords) for coords in product(*axes)]
        if not self._budget_allows(len(lattice)):
            raise SurrogateError(
                "max_calibrations cannot cover the initial lattice "
                f"({len(lattice)} knots needed, "
                f"{self._max_calibrations} allowed)")
        for knot in lattice:
            knots[knot] = self._calibrate(knot)

        while True:
            scores = self._scores(axes, refinable, knots)
            over = [(error, axis, index)
                    for axis, index, error in scores
                    if error > self._tolerance]
            if not over:
                break
            error, axis, index = max(over)
            lo = axes[axis][index - 1]
            level = axes[axis][index]
            hi = axes[axis][index + 1]
            new_levels = [round((lo + level) / 2, 4),
                          round((level + hi) / 2, 4)]
            new_levels = [v for v in new_levels
                          if v not in axes[axis]
                          and min(abs(v - lo), abs(v - level),
                                  abs(v - hi)) >= MIN_INTERVAL / 2]
            if not new_levels:
                break  # intervals are at the resolution floor
            cost = len(new_levels) * self._plane_size(axes, axis)
            if not self._budget_allows(cost):
                report.stopped = True
                break
            for new_level in new_levels:
                axes[axis] = sorted(axes[axis] + [new_level])
                self._calibrate_plane(axes, axis, new_level, knots)
            report.refinements += 1
            metrics.counter("surrogate.refinements",
                            axis=AXIS_NAMES[axis]).inc()

        final_scores = self._scores(axes, refinable, knots)
        report.scores = [(AXIS_NAMES[axis], axes[axis][index], error)
                         for axis, index, error in final_scores]
        report.worst_error = max(
            (error for _a, _l, error in report.scores), default=0.0)
        report.calibrations = self._spent
        report.surface = ParameterSurface(
            knots, tolerance=self._tolerance,
            uncertainty=self._knot_uncertainty(axes, refinable,
                                               final_scores))
        return report

    # -- targeted extension (search-in-the-loop polish) ---------------------

    def extension_cost(self, surface: ParameterSurface,
                       additions: Sequence[Tuple[int, float]]) -> int:
        """Calibrations :meth:`extend` would pay for *additions*.

        Counts the new knots of each inserted level's plane, with planes
        sized against the levels already inserted by earlier additions
        (cross knots are counted once).
        """
        axes = [list(surface.axis_levels(axis)) for axis in range(3)]
        total = 0
        for axis, level in self._new_levels(axes, additions):
            axes[axis] = sorted(axes[axis] + [level])
            total += self._plane_size(axes, axis)
        return total

    @staticmethod
    def _new_levels(axes: List[List[float]],
                    additions: Sequence[Tuple[int, float]]
                    ) -> List[Tuple[int, float]]:
        """Deduplicated ``(axis, level)`` pairs in deterministic order."""
        seen = set()
        new = []
        for axis, level in sorted(
                (axis, round(float(level), 4)) for axis, level in additions):
            if level not in axes[axis] and (axis, level) not in seen:
                seen.add((axis, level))
                new.append((axis, level))
        return new

    def extend(self, surface: ParameterSurface,
               additions: Sequence[Tuple[int, float]]) -> ParameterSurface:
        """Insert *additions* (``(axis, level)`` pairs) into *surface*.

        Calibrates every new knot needed to keep the lattice complete
        (one plane per inserted level, sized against all levels inserted
        so far) and returns the extended surface. The builder's request
        budget keeps counting across :meth:`build` and :meth:`extend`
        calls — check :meth:`extension_cost` against :meth:`budget_allows`
        first; extending past the budget raises
        :class:`~repro.util.errors.SurrogateError`.
        """
        axes = [list(surface.axis_levels(axis)) for axis in range(3)]
        new = self._new_levels(axes, additions)
        if not new:
            return surface
        if not self._budget_allows(self.extension_cost(surface, additions)):
            raise SurrogateError(
                "extend() would exceed max_calibrations "
                f"({self._max_calibrations}); check extension_cost() first")
        knots = {knot: surface.knot_params(knot) for knot in surface.knots}
        uncertainty = {knot: surface.knot_uncertainty(knot)
                       for knot in surface.knots}
        for axis, level in new:
            axes[axis] = sorted(axes[axis] + [level])
            self._calibrate_plane(axes, axis, level, knots)
            metrics.counter("surrogate.refinements",
                            axis=AXIS_NAMES[axis]).inc()
        # Freshly calibrated knots default to zero uncertainty.
        return ParameterSurface(knots, tolerance=surface.tolerance,
                                uncertainty=uncertainty)

    # -- targeted refits (drift repair) -------------------------------------

    def refit(self, surface: ParameterSurface, knots: Sequence[Knot],
              calibrate=None) -> "RefitReport":
        """Recalibrate *existing* knots of *surface*, in the given order.

        Where :meth:`extend` grows the lattice, ``refit`` overwrites
        stale values in place — the drift loop's targeted repair
        (``docs/drift.md``). It spends one request per knot from the
        same budget as :meth:`build`/:meth:`extend`, with identical
        replay semantics: *calibrate* (``knot -> OptimizerParameters``)
        may answer from a journal replay and the request still counts,
        so a killed-and-resumed online loop stops refitting at exactly
        the same knot. Without *calibrate*, knots go through the
        builder's cache — note a memoizing cache returns the value it
        already holds, so drift callers supply a fresh-measurement
        callable.

        Knots beyond the budget are skipped (``stopped=True``) rather
        than raising: a drift repair applies what it can afford. A knot
        whose calibration fails permanently (a
        :class:`~repro.util.errors.CalibrationError` surviving the
        retry policy) is kept stale and counted as a fallback, matching
        the cache's graceful-degradation contract.
        """
        ordered: List[Knot] = []
        for knot in knots:
            key = knot_key(knot)
            if key not in set(surface.knots):
                raise SurrogateError(
                    f"cannot refit {key}: not a knot of this surface")
            if key not in ordered:
                ordered.append(key)
        report = RefitReport(surface=surface)
        updates: Dict[Knot, OptimizerParameters] = {}
        for knot in ordered:
            if not self._budget_allows(1):
                report.stopped = True
                break
            self._spent += 1
            report.requests += 1
            metrics.counter("surrogate.calibrations").inc()
            try:
                if calibrate is not None:
                    params = calibrate(knot)
                else:
                    params = self._cache.params_for(
                        ResourceVector.of(cpu=knot[0], memory=knot[1],
                                          io=knot[2]),
                        exact=True)
            except CalibrationError:
                report.fallbacks += 1
                metrics.counter("resilience.fallbacks",
                                kind="stale-knot").inc()
                continue
            updates[knot] = params
            report.refits += 1
            metrics.counter("surrogate.refits").inc()
        if updates:
            report.surface = surface.with_knots(updates)
        return report
