"""Calibration surrogate: interpolated parameter surfaces over allocations.

``P(R)`` depends only on the resource allocation (the paper's central
observation), so it can be fitted once over a lattice of calibrated
knots and then served for *any* allocation without further experiments.
:class:`ParameterSurface` is the fitted model (multilinear
interpolation, monotonicity clamps, extrapolation guards);
:class:`SurrogateBuilder` grows the lattice adaptively, calibrating new
knots only where cross-validated interpolation error exceeds a
tolerance; :func:`design_continuous` adds the search-in-the-loop polish
phase that anchors and refines the lattice around the allocations the
search actually proposes. See ``docs/surrogate.md``.
"""

from repro.surrogate.polish import (
    ContinuousDesign,
    PolishOutcome,
    design_continuous,
    polish,
    warm_start,
)
from repro.surrogate.refine import (
    DEFAULT_TOLERANCE,
    RefinementReport,
    RefitReport,
    SurrogateBuilder,
    design_levels,
    relative_error,
)
from repro.surrogate.surface import (
    AXIS_NAMES,
    RATIO_NAMES,
    ParameterSurface,
    blend_corners,
    knot_key,
)

__all__ = [
    "AXIS_NAMES",
    "ContinuousDesign",
    "DEFAULT_TOLERANCE",
    "ParameterSurface",
    "PolishOutcome",
    "RATIO_NAMES",
    "RefinementReport",
    "RefitReport",
    "SurrogateBuilder",
    "blend_corners",
    "design_continuous",
    "design_levels",
    "knot_key",
    "polish",
    "relative_error",
    "warm_start",
]
