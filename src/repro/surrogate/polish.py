"""Search-in-the-loop polish: spend calibrations where the search looks.

Cross-validation refinement (:class:`~repro.surrogate.refine.SurrogateBuilder`)
controls the surface's *global* parameter error, but a search only needs
the surface to be accurate near the cost valley it is descending into —
and multilinear interpolation of convex parameter curves systematically
*overestimates* cost between knots, which can hide an interior optimum
from the search entirely. The polish loop closes that gap:

1. Run the actual continuous search against the current surface.
2. Form a candidate set: the incumbent allocation plus its best
   single-fine-unit neighbour (one unit of one controlled resource moved
   between two workloads, scored by the same surrogate model).
3. *Anchor*: any candidate share that is not yet a lattice level is
   inserted and calibrated exactly — the incumbent's predicted cost
   becomes its true cost.
4. *Explore*: once all candidate shares are anchored, subdivide the
   lattice intervals bracketing them (midpoint insertion) until the
   brackets are no wider than one fine-grid step, so interpolation
   error can no longer misrank the valley.
5. Repeat until a search round needs no insertions (converged) or the
   builder's request budget runs out.

Everything is deterministic: candidates are ordered by (cost, resource,
workload) with lexicographic tie-breaks, insertions are sorted, and the
builder's budget counts requests (replayed knots included), so a
killed-and-resumed polish — whose calibrations replay from the journal
via the cache — walks exactly the same trajectory.

:func:`design_continuous` is the one-call orchestrator used by the CLI
and the recovery supervisor: fit (with budget reserved for polish),
polish, attach the final surface to the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.obs import metrics
from repro.surrogate.refine import (
    DEFAULT_TOLERANCE,
    RefinementReport,
    SurrogateBuilder,
    design_levels,
)
from repro.surrogate.surface import AXIS_NAMES, ParameterSurface
from repro.virt.resources import ResourceKind, ResourceVector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.calibration.cache import CalibrationCache
    from repro.core.designer import Design


def _axis_of(kind: ResourceKind) -> int:
    return AXIS_NAMES.index(str(kind))


def _best_neighbor(problem, allocation, model,
                   fine: int) -> Optional[Dict[str, ResourceVector]]:
    """Best single fine-unit transfer between two workloads, or ``None``.

    Considers every (resource, donor, recipient) move of one ``1/fine``
    share unit that keeps both workloads feasible, scores the resulting
    allocation with *model*, and returns the per-workload vectors of the
    cheapest one. Ties break lexicographically on (resource, donor,
    recipient), so the choice is deterministic.
    """
    names = sorted(allocation.workload_names())
    step = 1.0 / fine
    best: Optional[Tuple[Tuple, Dict[str, ResourceVector]]] = None
    for kind in problem.controlled_resources:
        for src in names:
            for dst in names:
                if src == dst:
                    continue
                vectors = {name: allocation.vector_for(name)
                           for name in names}
                donated = vectors[src].share(kind) - step
                received = vectors[dst].share(kind) + step
                if donated < step - 1e-12 or received > 1.0 - step + 1e-12:
                    continue
                vectors[src] = vectors[src].with_share(kind,
                                                       round(donated, 10))
                vectors[dst] = vectors[dst].with_share(kind,
                                                       round(received, 10))
                cost = sum(model.cost(problem.spec(name), vectors[name])
                           for name in names)
                key = (cost, str(kind), src, dst)
                if best is None or key < best[0]:
                    best = (key, vectors)
    return best[1] if best else None


def warm_start(problem, surface: ParameterSurface, start, *,
               grid: int = 4, fine_factor: int = 8,
               algorithm_label: str = "warm-start",
               max_evaluations: Optional[int] = None) -> "Design":
    """Local descent from an incumbent allocation, against *surface*.

    The drift loop's redesign primitive (``docs/drift.md``): after a
    targeted recalibration the optimum has usually moved only a few
    fine-grid units, so instead of re-running a cold search from equal
    shares, descend from *start* by repeated best-single-fine-unit
    transfers (the polish loop's :func:`_best_neighbor`, same
    deterministic tie-breaks) until no transfer improves the total.
    Evaluations are pure surrogate arithmetic. Terminates: the fine
    lattice is finite and every accepted move strictly decreases cost.

    ``max_evaluations`` caps the surrogate evaluations spent (checked
    at descent-step boundaries, the PR 2 budget convention): the serve
    layer derives the cap from a request's remaining deadline budget,
    so a warm-tier answer can never blow its deadline mid-descent. A
    capped descent returns the best allocation so far with
    ``stopped=True``.

    Returns a full :class:`~repro.core.designer.Design` whose baseline
    is the problem's equal-share default evaluated under the same
    surface, so ``predicted_improvement`` stays comparable with cold
    designs.
    """
    from repro.core.cost_model import OptimizerCostModel
    from repro.core.designer import Design, VirtualizationDesigner

    model = OptimizerCostModel(surface)
    designer = VirtualizationDesigner(problem, model)
    fine = grid * fine_factor
    allocation = start
    costs = designer.evaluate(allocation)
    total = sum(costs.values())
    stopped = False
    # Each descent step costs one _best_neighbor sweep plus one
    # candidate evaluation; both are len(names)-sized batches of
    # surrogate lookups counted by the model.
    step_cost = _descent_step_cost(problem, allocation)
    while True:
        if (max_evaluations is not None
                and model.evaluations + step_cost > max_evaluations):
            stopped = True
            break
        vectors = _best_neighbor(problem, allocation, model, fine)
        if vectors is None:
            break
        candidate = allocation
        for name, vector in vectors.items():
            candidate = candidate.with_vector(name, vector)
        candidate_costs = designer.evaluate(candidate)
        candidate_total = sum(candidate_costs.values())
        if candidate_total >= total - 1e-12:
            break
        allocation, costs, total = candidate, candidate_costs, candidate_total
        metrics.counter("search.step_refinements",
                        algorithm=algorithm_label).inc()
    default = problem.default_allocation()
    default_costs = designer.evaluate(default)
    return Design(
        problem=problem,
        allocation=allocation,
        predicted_total_cost=total,
        predicted_costs=costs,
        default_allocation=default,
        default_total_cost=sum(default_costs.values()),
        default_costs=default_costs,
        algorithm=algorithm_label,
        evaluations=model.evaluations,
        stopped=stopped,
    )


def _descent_step_cost(problem, allocation) -> int:
    """Worst-case model evaluations one descent step can spend."""
    names = sorted(allocation.workload_names())
    moves = 0
    for _ in problem.controlled_resources:
        moves += len(names) * (len(names) - 1)
    # Every candidate move scores len(names) specs, plus the accepted
    # candidate's designer.evaluate.
    return (moves + 1) * len(names)


def _candidate_shares(problem, surface: ParameterSurface, candidates
                      ) -> List[Tuple[int, float]]:
    """Distinct (axis, share) targets, clamped to the calibrated hull."""
    targets = set()
    for vectors in candidates:
        for vector in vectors.values():
            for kind in problem.controlled_resources:
                axis = _axis_of(kind)
                levels = surface.axis_levels(axis)
                share = min(max(round(vector.share(kind), 4),
                                levels[0]), levels[-1])
                targets.add((axis, round(share, 4)))
    return sorted(targets)


def _insertions(surface: ParameterSurface,
                targets: List[Tuple[int, float]],
                fine: int) -> List[Tuple[int, float]]:
    """Levels to insert for *targets*: anchors first, then midpoints.

    Anchoring (a target share that is not a lattice level) takes
    priority — until every candidate share is exactly calibrated, the
    incumbent's cost is interpolated and might be wrong. Once anchored,
    the brackets around each target are subdivided while wider than one
    fine-grid step.
    """
    anchors = []
    for axis, share in targets:
        levels = [round(v, 4) for v in surface.axis_levels(axis)]
        if share not in levels and (axis, share) not in anchors:
            anchors.append((axis, share))
    if anchors:
        return sorted(anchors)
    midpoints = []
    for axis, share in targets:
        levels = [round(v, 4) for v in surface.axis_levels(axis)]
        index = levels.index(share)
        brackets = []
        if index > 0:
            brackets.append((levels[index - 1], share))
        if index + 1 < len(levels):
            brackets.append((share, levels[index + 1]))
        for lo, hi in brackets:
            if hi - lo <= 1.0 / fine:
                continue
            mid = round((lo + hi) / 2, 4)
            if mid not in levels and (axis, mid) not in midpoints:
                midpoints.append((axis, mid))
    return sorted(midpoints)


def _affordable_prefix(builder: SurrogateBuilder, surface: ParameterSurface,
                       inserts: List[Tuple[int, float]]
                       ) -> List[Tuple[int, float]]:
    """Longest prefix of *inserts* the remaining budget can pay for."""
    affordable: List[Tuple[int, float]] = []
    for count in range(len(inserts), 0, -1):
        prefix = inserts[:count]
        if builder.budget_allows(builder.extension_cost(surface, prefix)):
            affordable = prefix
            break
    return affordable


@dataclass
class PolishOutcome:
    """What the polish loop produced."""

    design: "Design"
    surface: ParameterSurface
    #: Polish rounds that inserted at least one level.
    iterations: int
    #: True when the final search round needed no insertions; False
    #: when the calibration budget stopped the loop first.
    converged: bool


def polish(problem, builder: SurrogateBuilder, surface: ParameterSurface,
           *, algorithm: str = "greedy", grid: int = 4,
           fine_factor: int = 8, max_evaluations: Optional[int] = None,
           engine=None) -> PolishOutcome:
    """Alternate searching and targeted calibration until stable."""
    from repro.core.cost_model import OptimizerCostModel
    from repro.core.designer import VirtualizationDesigner

    fine = grid * fine_factor
    iterations = 0
    while True:
        model = OptimizerCostModel(surface)
        designer = VirtualizationDesigner(problem, model)
        design = designer.design(algorithm, grid=grid,
                                 max_evaluations=max_evaluations,
                                 engine=engine, continuous=True,
                                 fine_factor=fine_factor)
        names = design.allocation.workload_names()
        candidates = [{name: design.allocation.vector_for(name)
                       for name in names}]
        neighbor = _best_neighbor(problem, design.allocation, model, fine)
        if neighbor is not None:
            candidates.append(neighbor)
        targets = _candidate_shares(problem, surface, candidates)
        inserts = _insertions(surface, targets, fine)
        if not inserts:
            return PolishOutcome(design=design, surface=surface,
                                 iterations=iterations, converged=True)
        inserts = _affordable_prefix(builder, surface, inserts)
        if not inserts:
            return PolishOutcome(design=design, surface=surface,
                                 iterations=iterations, converged=False)
        surface = builder.extend(surface, inserts)
        iterations += 1
        metrics.counter("surrogate.polish", algorithm=algorithm).inc()


@dataclass
class ContinuousDesign:
    """One complete continuous-mode design: fit, polish, final search."""

    design: "Design"
    surface: ParameterSurface
    fit: RefinementReport
    #: Total calibration requests (fit + polish; replays included).
    calibrations: int
    polish_iterations: int
    #: True when polish reached a fixed point within the budget.
    converged: bool


def design_continuous(problem, cache: "CalibrationCache", *,
                      algorithm: str = "greedy", grid: int = 4,
                      fine_factor: int = 8,
                      tolerance: float = DEFAULT_TOLERANCE,
                      max_calibrations: Optional[int] = 24,
                      fit_reserve: Optional[int] = None,
                      max_evaluations: Optional[int] = None,
                      engine=None) -> ContinuousDesign:
    """Fit a surrogate, polish it against the search, return the design.

    The calibration-request budget is split between the two phases:
    cross-validation refinement (:meth:`SurrogateBuilder.build`) gets
    ``max_calibrations - fit_reserve`` and the search-in-the-loop polish
    gets whatever is left. By default half the headroom above the
    initial lattice is reserved for polish — global accuracy and
    search-local accuracy matter equally until told otherwise.

    The final surface (exact at every lattice knot the run paid for) is
    attached to *cache*, so ``cache.save()`` persists it in the v3
    format and a later load serves the same fit without refitting.
    """
    levels = design_levels(problem, grid, fine_factor)
    cpu = levels[ResourceKind.CPU]
    memory = levels[ResourceKind.MEMORY]
    io = levels[ResourceKind.IO]
    if fit_reserve is None:
        if max_calibrations is None:
            fit_reserve = 0
        else:
            lattice = len(cpu) * len(memory) * len(io)
            fit_reserve = max(0, (max_calibrations - lattice) // 2)
    builder = SurrogateBuilder(cache, tolerance=tolerance,
                               max_calibrations=max_calibrations)
    fit = builder.build(cpu, memory, io, reserve=fit_reserve)
    outcome = polish(problem, builder, fit.surface, algorithm=algorithm,
                     grid=grid, fine_factor=fine_factor,
                     max_evaluations=max_evaluations, engine=engine)
    cache.attach_surrogate(outcome.surface)
    return ContinuousDesign(design=outcome.design, surface=outcome.surface,
                            fit=fit, calibrations=builder.spent,
                            polish_iterations=outcome.iterations,
                            converged=outcome.converged)
