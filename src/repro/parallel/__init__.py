"""Parallel evaluation engine (see ``docs/parallelism.md``)."""

from repro.parallel.engine import (
    POOL_KINDS,
    EvaluationEngine,
    make_engine,
)

__all__ = [
    "POOL_KINDS",
    "EvaluationEngine",
    "make_engine",
]
