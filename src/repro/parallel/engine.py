"""The evaluation engine: deterministic fan-out for batched work.

Overview
--------
Cost-model evaluations are "the currency that matters" in this
reproduction — every search step and every calibration experiment is
bottlenecked on them. An :class:`EvaluationEngine` is the one place
that knows how to spend that currency concurrently: callers hand it a
pure function and an ordered list of work items, and it returns the
results *in item order*, no matter how many workers ran them or which
worker finished first.

Pools
-----
Three pool kinds, selected by the ``pool`` argument (``--pool`` on the
CLI):

* ``serial`` — no concurrency; the reference implementation every other
  pool must be bit-identical to.
* ``thread`` (default) — a shared :class:`ThreadPoolExecutor`. Python's
  GIL serializes pure-Python work, so threads mostly buy overlap for
  code that releases the GIL; the batched call structure (one batch
  instead of N calls) is where single-core wins come from.
* ``process`` — a fork-based worker pool giving true CPU parallelism on
  multi-core hosts. Each batch forks workers that inherit the parent's
  state by copy-on-write, evaluate their slice, and ship results back;
  nothing a worker mutates is visible to the parent, which is exactly
  what makes the merge deterministic.

Determinism contract
--------------------
``map(fn, items)`` returns ``[fn(items[0]), fn(items[1]), ...]`` — the
same values, in the same order, for every pool kind and worker count.
The engine guarantees ordering; the *caller* guarantees that ``fn`` is
hermetic (each item's result must not depend on the execution of other
items). Library callers achieve that by forking per-item RNG and
fault-injector streams before submitting (see
:meth:`repro.faults.FaultInjector.fork_stream`), never by relying on
shared sequential state. The contract is spelled out in
``docs/parallelism.md`` and enforced by ``tests/parallel`` and the
serial-vs-parallel property tests.

Errors raised by tasks are re-raised in item order: if items 3 and 7
both fail, every run reports item 3's exception, so a parallel run
fails the same way a serial one does.

Observability
-------------
Creating an engine sets the ``parallel.workers`` gauge (labelled
``pool=<kind>``); every ``map`` call increments ``parallel.batches``
and adds the item count to ``parallel.tasks``.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.obs import metrics
from repro.util.errors import AllocationError

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Recognized pool kinds, in documentation order.
POOL_KINDS = ("serial", "thread", "process")

#: Module-level slot the fork-based pool reads through copy-on-write.
#: Only ever set immediately before forking and cleared right after;
#: worker processes see the value frozen at fork time.
_FORK_PAYLOAD: Optional[tuple] = None


def _fork_call(index: int):
    """Run one item of the payload inside a forked worker.

    Counter increments the task makes land in the worker's
    copy-on-write clone of the metrics registry, invisible to the
    parent — so the worker diffs its counter state around the task and
    ships the increments back with the result for the parent to replay
    (in item order), keeping every counter bit-identical to a serial
    run. Worker-side *histograms* (only the wall-clock
    ``optimizer.plan_seconds`` timer) are not marshalled; host-time
    telemetry is nondeterministic by nature and outside the contract.
    """
    fn, items = _FORK_PAYLOAD  # type: ignore[misc]
    registry = metrics.get_registry()
    before = registry.counter_state()
    try:
        ok, value = True, fn(items[index])
    except Exception as exc:  # noqa: BLE001 - marshalled to the parent
        ok, value = False, exc
    deltas = tuple(
        (key, after_value - before.get(key, 0.0))
        for key, after_value in sorted(registry.counter_state().items())
        if after_value - before.get(key, 0.0) > 0)
    return (index, ok, value, deltas)


class EvaluationEngine:
    """Runs batches of hermetic tasks with deterministic ordering."""

    def __init__(self, workers: int = 1, pool: str = "thread"):
        if workers < 1:
            raise AllocationError("workers must be at least 1")
        if pool not in POOL_KINDS:
            raise AllocationError(
                f"unknown pool kind {pool!r}; available: {list(POOL_KINDS)}")
        if workers == 1:
            pool = "serial"  # one worker needs no pool machinery
        self.workers = workers
        self.pool = pool
        self._executor: Optional[ThreadPoolExecutor] = None
        metrics.gauge("parallel.workers", pool=pool).set(workers)

    # -- the one entry point -------------------------------------------------

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> List[_R]:
        """``[fn(item) for item in items]``, possibly in parallel.

        Results are always in item order; the first raising item's
        exception (by index, not by completion time) propagates.
        """
        items = list(items)
        if not items:
            return []
        metrics.counter("parallel.batches", pool=self.pool).inc()
        metrics.counter("parallel.tasks", pool=self.pool).inc(len(items))
        if self.pool == "serial" or len(items) == 1:
            return [fn(item) for item in items]
        if self.pool == "thread":
            return self._map_threaded(fn, items)
        return self._map_forked(fn, items)

    # -- pool plumbing -------------------------------------------------------

    def _threads(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-eval")
        return self._executor

    def _map_threaded(self, fn, items: list) -> list:
        """Fan a batch out over the shared thread pool, in slices.

        Submitting one future per item makes dispatch overhead rival
        the work when tasks are sub-millisecond, so items are submitted
        as contiguous slices (a few per worker, preserving order) and
        each slice runs serially inside one future. Slicing changes
        scheduling only, never results: slices partition the item list
        in order, so the flattened result list is identical for every
        slice size.
        """
        slice_size = max(1, -(-len(items) // (self.workers * 4)))
        slices = [items[i:i + slice_size]
                  for i in range(0, len(items), slice_size)]
        futures = [self._threads().submit(lambda part=part: [fn(item) for item in part])
                   for part in slices]
        results: List[_R] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            # Futures are consumed in slice (= item) order, so the
            # earliest failing item's exception wins, as in serial runs.
            try:
                results.extend(future.result())
            except Exception as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def _map_forked(self, fn, items: list) -> list:
        """Fan a batch out over forked worker processes.

        The payload travels to the workers by fork-time copy-on-write
        (no pickling of ``fn`` or the items), and only the results are
        pickled back. Falls back to serial execution where the ``fork``
        start method does not exist (e.g. Windows).
        """
        global _FORK_PAYLOAD
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            return [fn(item) for item in items]
        _FORK_PAYLOAD = (fn, items)
        try:
            with context.Pool(processes=min(self.workers, len(items))) as pool:
                raw = pool.map(_fork_call, range(len(items)),
                               chunksize=max(1, len(items) // self.workers))
        finally:
            _FORK_PAYLOAD = None
        results: List[object] = [None] * len(items)
        first_error: Optional[tuple] = None
        registry = metrics.get_registry()
        for index, ok, value, deltas in sorted(raw):
            # Replay in item order (failed items included, as in a
            # serial run where increments before the raise persist).
            registry.apply_counter_deltas(deltas)
            if ok:
                results[index] = value
            elif first_error is None or index < first_error[0]:
                first_error = (index, value)
        if first_error is not None:
            raise first_error[1]
        return results

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the thread pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EvaluationEngine(workers={self.workers}, pool={self.pool!r})"


def make_engine(workers: Optional[int],
                pool: str = "thread") -> Optional[EvaluationEngine]:
    """Engine from CLI-style arguments; ``None`` workers means serial.

    ``workers=None`` (flag absent) returns ``None`` so callers keep the
    legacy unbatched code path; ``workers=0`` sizes the pool to the
    host's CPU count.
    """
    if workers is None:
        return None
    if workers == 0:
        workers = os.cpu_count() or 1
    return EvaluationEngine(workers=workers, pool=pool)
