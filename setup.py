"""Thin setup.py shim: enables legacy `pip install -e .` in offline
environments where the PEP 660 editable path (which needs the `wheel`
package) is unavailable."""

from setuptools import setup

setup()
