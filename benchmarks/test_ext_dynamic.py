"""Extension E1 — dynamic reallocation (paper, Section 7).

"An important next step ... is to consider the dynamic case and
reconfigure the virtual machines on the fly in response to changes in
the workload." Two TPC-H tenants swap roles between a day phase
(tenant A runs the I/O-bound Q4 mix, tenant B the CPU-bound Q13 mix)
and a night phase (roles reversed). The dynamic controller re-solves
the design problem at each phase boundary.
"""

import pytest

from repro.core.dynamic import DynamicReallocator, WorkloadPhase
from repro.core.problem import WorkloadSpec
from repro.util.tables import format_table
from repro.workloads import tpch_query
from repro.workloads.workload import Workload

from conftest import report


@pytest.fixture(scope="module")
def phases(tpch):
    q4 = tpch_query("Q4")
    q13 = tpch_query("Q13")

    def spec(name, sql, copies):
        return WorkloadSpec(Workload.repeat(name, sql, copies), tpch)

    # One persistent role swap: the day mix runs once, then the night
    # mix persists. (A strictly alternating schedule would make any
    # purely reactive controller thrash — it observes each swap one
    # phase late; the unit tests in tests/core/test_monitor_workload.py
    # pin that behaviour.)
    return [
        WorkloadPhase("day", [spec("tenant-a", q4, 2), spec("tenant-b", q13, 6)]),
        WorkloadPhase("night", [spec("tenant-a", q13, 6), spec("tenant-b", q4, 2)]),
        WorkloadPhase("night-2", [spec("tenant-a", q13, 6), spec("tenant-b", q4, 2)]),
        WorkloadPhase("night-3", [spec("tenant-a", q13, 6), spec("tenant-b", q4, 2)]),
    ]


def test_ext_dynamic_reallocation(benchmark, phases, machine, estimated_model):
    def run():
        reallocator = DynamicReallocator(
            machine, estimated_model, algorithm="exhaustive", grid=4,
            reconfiguration_seconds=0.05,
        )
        return reallocator.run(phases)

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for strategy in ("static-default", "static-designed", "dynamic",
                     "triggered"):
        strat = reports[strategy]
        rows.append([
            strategy,
            *[outcome.total_cost for outcome in strat.outcomes],
            strat.reconfigurations,
            strat.total_cost,
        ])
    table = format_table(
        ["strategy"] + [f"{p.name} cost (s)" for p in phases]
        + ["reconfigs", "total (s)"],
        rows,
        title="Extension E1: static vs dynamic reallocation over workload phases",
    )
    report("ext_dynamic", table)

    dynamic = reports["dynamic"]
    assert dynamic.total_cost < reports["static-designed"].total_cost
    assert dynamic.total_cost < reports["static-default"].total_cost
    # The oracle controller reconfigures exactly at the one role swap.
    assert dynamic.reconfigurations == 1
    # The drift-triggered controller (which must *observe* a bad phase
    # before reacting) lands between the oracle and static designs.
    triggered = reports["triggered"]
    assert dynamic.total_cost <= triggered.total_cost + 1e-9
    assert triggered.total_cost <= reports["static-designed"].total_cost + 1e-9
