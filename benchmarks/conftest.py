"""Shared benchmark fixtures and reporting.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation/extension) and both prints the rows and writes them to
``benchmarks/results/<name>.txt`` so runs can be diffed.

The laboratory machine and the TPC-H database are shared session-wide;
experiment scale matches the paper's regime (database larger than any
VM's buffer pool, see DESIGN.md).
"""

from __future__ import annotations

import pathlib
import sys

import pytest

from repro.calibration import CalibrationCache, CalibrationRunner
from repro.core.cost_model import MeasuredCostModel, OptimizerCostModel
from repro.virt.machine import laboratory_machine
from repro.workloads import build_tpch_database

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The paper's allocation levels: "ranging from 25% to 75%".
SHARE_LEVELS = (0.25, 0.5, 0.75)
#: Scale factor for the benchmark TPC-H database.
BENCH_SCALE_FACTOR = 0.01


@pytest.fixture(scope="session")
def machine():
    return laboratory_machine()


@pytest.fixture(scope="session")
def tpch(machine):
    return build_tpch_database(
        scale_factor=BENCH_SCALE_FACTOR,
        tables=["customer", "orders", "lineitem"],
        name="tpch-bench",
    )


@pytest.fixture(scope="session")
def calibration(machine):
    return CalibrationCache(CalibrationRunner(machine))


@pytest.fixture(scope="session")
def estimated_model(calibration):
    return OptimizerCostModel(calibration)


@pytest.fixture(scope="session")
def measured_model(machine, calibration):
    return MeasuredCostModel(machine, calibration=calibration)


def report(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    # Bypass pytest's capture so the tables appear in tee'd output.
    sys.__stdout__.write("\n" + text + "\n")
    sys.__stdout__.flush()
