"""Shared benchmark fixtures and reporting.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation/extension) and both prints the rows and writes them to
``benchmarks/results/<name>.txt`` so runs can be diffed.

Each result file carries a standard header (see EXPERIMENTS.md,
"Result-file convention"): the exact command that regenerates it and an
observability footer with the counted work the benchmark spent
(cost-model evaluations, calibration activity, buffer-pool hit ratio)
— taken as per-test deltas of the process-wide metrics registry, so
every row of EXPERIMENTS.md can quote its evaluation budget.

The laboratory machine and the TPC-H database are shared session-wide;
experiment scale matches the paper's regime (database larger than any
VM's buffer pool, see DESIGN.md). Work done inside session fixtures is
attributed to the first benchmark that requests them.
"""

from __future__ import annotations

import os
import pathlib
import sys

import pytest

from repro import obs
from repro.calibration import CalibrationCache, CalibrationRunner
from repro.core.cost_model import MeasuredCostModel, OptimizerCostModel
from repro.virt.machine import laboratory_machine
from repro.workloads import build_tpch_database

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Registry totals quoted in each result file's header.
_TRACKED = (
    ("evals", "cost_model.evaluations"),
    ("memo", "cost_model.memo_hits"),
    ("experiments", "calibration.experiments"),
    ("exact", "calibration.cache.exact_hits"),
    ("interp", "calibration.cache.interpolated"),
    ("fresh", "calibration.cache.fresh"),
    ("hits", "engine.pages.buffer_hits"),
    ("seq", "engine.pages.seq_reads"),
    ("rand", "engine.pages.random_reads"),
)

_test_baseline: dict = {}


def _totals() -> dict:
    registry = obs.get_registry()
    return {key: registry.total(name) for key, name in _TRACKED}


@pytest.fixture(autouse=True)
def _obs_baseline():
    """Snapshot metric totals so report() can quote per-test deltas."""
    _test_baseline.clear()
    _test_baseline.update(_totals())
    yield


def _counted_work_line() -> str:
    """One-line summary of the work this benchmark spent (delta)."""
    delta = {key: value - _test_baseline.get(key, 0.0)
             for key, value in _totals().items()}
    requests = delta["hits"] + delta["seq"] + delta["rand"]
    ratio = delta["hits"] / requests if requests else 1.0
    return (
        f"# Counted work: cost-model evals={delta['evals']:.0f} "
        f"(memo {delta['memo']:.0f}) | calibration: "
        f"{delta['experiments']:.0f} experiments, "
        f"{delta['exact']:.0f} exact / {delta['interp']:.0f} interpolated "
        f"lookups | buffer hit ratio {ratio:.3f}"
    )


def _regenerate_line() -> str:
    """The exact command that regenerates the current result file."""
    raw = os.environ.get("PYTEST_CURRENT_TEST", "")
    nodeid = raw.rsplit(" ", 1)[0] if raw else "benchmarks/"
    return (f'# Regenerate with: PYTHONPATH=src python -m pytest '
            f'"{nodeid}" --benchmark-only -q')

#: The paper's allocation levels: "ranging from 25% to 75%".
SHARE_LEVELS = (0.25, 0.5, 0.75)
#: Scale factor for the benchmark TPC-H database.
BENCH_SCALE_FACTOR = 0.01


@pytest.fixture(scope="session")
def machine():
    return laboratory_machine()


@pytest.fixture(scope="session")
def tpch(machine):
    return build_tpch_database(
        scale_factor=BENCH_SCALE_FACTOR,
        tables=["customer", "orders", "lineitem"],
        name="tpch-bench",
    )


@pytest.fixture(scope="session")
def calibration(machine):
    return CalibrationCache(CalibrationRunner(machine))


@pytest.fixture(scope="session")
def estimated_model(calibration):
    return OptimizerCostModel(calibration)


@pytest.fixture(scope="session")
def measured_model(machine, calibration):
    return MeasuredCostModel(machine, calibration=calibration)


def report(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results.

    The persisted file gets the standard header (regeneration command +
    counted-work footer, see EXPERIMENTS.md); the printed copy is just
    the table.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    header = "\n".join([_regenerate_line(), _counted_work_line()])
    (RESULTS_DIR / f"{name}.txt").write_text(header + "\n\n" + text + "\n")
    # Bypass pytest's capture so the tables appear in tee'd output.
    sys.__stdout__.write("\n" + text + "\n")
    sys.__stdout__.flush()
