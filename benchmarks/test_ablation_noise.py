"""Ablation A3 — robustness of the design decision to measurement noise.

Real calibration measures wall-clock times, which jitter. The paper's
method only needs estimates to *rank* allocations, so some noise should
be tolerable. This ablation re-runs the Figure-5 design with calibration
measurements perturbed by increasing multiplicative noise and records
whether the designer still reaches the paper's 25/75 decision.
"""


from repro.calibration import CalibrationCache, CalibrationRunner
from repro.core.cost_model import OptimizerCostModel
from repro.core.designer import VirtualizationDesigner
from repro.core.problem import VirtualizationDesignProblem, WorkloadSpec
from repro.util.tables import format_table
from repro.virt.resources import ResourceKind
from repro.workloads import tpch_query
from repro.workloads.workload import Workload

from conftest import report

NOISE_LEVELS = (0.0, 0.02, 0.05, 0.10)
SEEDS = (11, 23, 47)


def test_ablation_noise_robustness(benchmark, machine, tpch):
    specs = [
        WorkloadSpec(Workload.repeat("w-q4", tpch_query("Q4"), 3), tpch),
        WorkloadSpec(Workload.repeat("w-q13", tpch_query("Q13"), 9), tpch),
    ]

    def run():
        rows = []
        for sigma in NOISE_LEVELS:
            correct = 0
            trials = 1 if sigma == 0.0 else len(SEEDS)
            seeds = (SEEDS[0],) if sigma == 0.0 else SEEDS
            for seed in seeds:
                cache = CalibrationCache(CalibrationRunner(
                    machine, noise_sigma=sigma, seed=seed,
                ))
                problem = VirtualizationDesignProblem(
                    machine=machine, specs=specs,
                    controlled_resources=(ResourceKind.CPU,),
                )
                designer = VirtualizationDesigner(
                    problem, OptimizerCostModel(cache)
                )
                design = designer.design("exhaustive", grid=4)
                q13_cpu = design.allocation.vector_for("w-q13").cpu
                q4_cpu = design.allocation.vector_for("w-q4").cpu
                if q13_cpu > q4_cpu:
                    correct += 1
            rows.append([f"{sigma:.0%}", trials, correct,
                         f"{correct}/{trials}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    report("ablation_noise", format_table(
        ["measurement noise (sigma)", "trials", "correct decisions",
         "decision rate"],
        rows,
        title="Ablation A3: Figure-5 decision (CPU to the Q13 workload) "
              "under calibration measurement noise",
    ))

    by_sigma = {row[0]: (row[1], row[2]) for row in rows}
    # Noise-free calibration must always reach the paper's decision.
    assert by_sigma["0%"] == (1, 1)
    # Small realistic jitter must not flip it.
    trials, correct = by_sigma["2%"]
    assert correct == trials
