"""Figure 4 — sensitivity of Q4 and Q13 to the CPU share.

Paper: "The estimated and actual execution times in the figure both
show that Q4 is not sensitive to changing the CPU allocation. ... On
the other hand, Q13 is very sensitive to changing the CPU allocation."
Memory is fixed at 50%; times are normalized to the default 50% CPU
allocation.
"""

import pytest

from repro.core.problem import WorkloadSpec
from repro.util.tables import format_table
from repro.virt.resources import ResourceVector
from repro.workloads import tpch_query
from repro.workloads.workload import Workload

from conftest import SHARE_LEVELS, report


def alloc(cpu):
    return ResourceVector.of(cpu=cpu, memory=0.5, io=0.5)


@pytest.fixture(scope="module")
def specs(tpch):
    return {
        "Q4": WorkloadSpec(Workload("q4", [tpch_query("Q4")]), tpch),
        "Q13": WorkloadSpec(Workload("q13", [tpch_query("Q13")]), tpch),
    }


def test_fig4_cpu_sensitivity(benchmark, specs, estimated_model, measured_model):
    def run():
        series = {}
        for name, spec in specs.items():
            est = [estimated_model.cost(spec, alloc(c)) for c in SHARE_LEVELS]
            act = [measured_model.cost(spec, alloc(c)) for c in SHARE_LEVELS]
            series[name] = {
                "est": [v / est[1] for v in est],
                "act": [v / act[1] for v in act],
                "act_abs": act,
            }
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    headers = ["query", "series"] + [f"cpu {c:.0%}" for c in SHARE_LEVELS]
    rows = []
    for name in ("Q4", "Q13"):
        rows.append([name, "estimated (norm.)"] + series[name]["est"])
        rows.append([name, "actual (norm.)"] + series[name]["act"])
        rows.append([name, "actual (seconds)"] + series[name]["act_abs"])
    report("fig4_sensitivity", format_table(
        headers, rows,
        title="Figure 4: estimated vs actual execution time, normalized "
              "to the 50% CPU allocation (memory fixed at 50%)",
    ))

    q4 = series["Q4"]["act"]
    q13 = series["Q13"]["act"]
    # Q4 is insensitive; Q13 is very sensitive.
    assert q4[0] / q4[2] < 1.35
    assert q13[0] / q13[2] > 1.5
    # Estimates rank allocations exactly as measurements do.
    for name in ("Q4", "Q13"):
        est, act = series[name]["est"], series[name]["act"]
        assert sorted(range(3), key=lambda i: est[i]) == \
            sorted(range(3), key=lambda i: act[i])
