"""Ablation A1 — search algorithms for the allocation space.

The paper defers the combinatorial search, expecting "standard
techniques such as dynamic programming" to apply. This ablation
compares exhaustive enumeration (the oracle), dynamic programming
(exact for the separable objective), and greedy share-shifting on
design problems of growing size, reporting solution quality and the
number of cost-model evaluations each needs.
"""

import pytest

from repro.core.cost_model import OptimizerCostModel
from repro.core.problem import VirtualizationDesignProblem, WorkloadSpec
from repro.core.search import make_algorithm
from repro.util.tables import format_table
from repro.virt.resources import ResourceKind
from repro.workloads.workload import cpu_heavy_workload, random_mixed_workload, scan_heavy_workload

from conftest import report

ALGORITHMS = ("exhaustive", "dynamic-programming", "greedy")


@pytest.fixture(scope="module")
def problems(tpch, machine):
    """Design problems with 2, 3, and 4 workloads of mixed profiles."""
    def spec(workload):
        return WorkloadSpec(workload, tpch)

    base = [
        spec(scan_heavy_workload("io-1", copies=1)),
        spec(cpu_heavy_workload("cpu-1", copies=1)),
        spec(random_mixed_workload("mix-1", 3, seed=5, cpu_bias=0.7)),
        spec(random_mixed_workload("mix-2", 3, seed=9, cpu_bias=0.3)),
    ]
    return {
        n: VirtualizationDesignProblem(
            machine=machine, specs=base[:n],
            controlled_resources=(ResourceKind.CPU,),
        )
        for n in (2, 3, 4)
    }


def test_ablation_search_algorithms(benchmark, problems, machine, calibration):
    grid = 8

    def run():
        rows = []
        for n, problem in sorted(problems.items()):
            for algorithm_name in ALGORITHMS:
                # A fresh cost model per run so evaluation counts are
                # comparable (memoization is per model).
                model = OptimizerCostModel(calibration)
                algorithm = make_algorithm(algorithm_name, grid)
                result = algorithm.search(problem, model)
                rows.append((n, algorithm_name, result.total_cost,
                             result.evaluations))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    report("ablation_search", format_table(
        ["N workloads", "algorithm", "total est. cost (s)", "evaluations"],
        rows,
        title=f"Ablation A1: search algorithms (CPU controlled, grid={grid})",
    ))

    by_key = {(n, name): (cost, evals) for n, name, cost, evals in rows}
    for n in (2, 3, 4):
        oracle_cost, oracle_evals = by_key[(n, "exhaustive")]
        dp_cost, _ = by_key[(n, "dynamic-programming")]
        greedy_cost, greedy_evals = by_key[(n, "greedy")]
        # DP is exact for the separable objective.
        assert dp_cost == pytest.approx(oracle_cost, rel=1e-9)
        # Greedy never beats the oracle and uses fewer evaluations on
        # the larger instances.
        assert greedy_cost >= oracle_cost - 1e-9
        if n >= 3:
            assert greedy_evals <= oracle_evals


def test_ablation_grid_granularity(benchmark, tpch, machine, calibration):
    """How fine must the share grid be?

    The Figure-5 problem solved at increasing discretizations. Finer
    grids can only improve the (estimated) optimum but each extra level
    multiplies the calibration and evaluation work; the table shows
    where the returns flatten.
    """
    from repro.core.designer import VirtualizationDesigner
    from repro.core.problem import VirtualizationDesignProblem, WorkloadSpec
    from repro.workloads import tpch_query
    from repro.workloads.workload import Workload

    specs = [
        WorkloadSpec(Workload.repeat("w-q4", tpch_query("Q4"), 3), tpch),
        WorkloadSpec(Workload.repeat("w-q13", tpch_query("Q13"), 9), tpch),
    ]
    problem = VirtualizationDesignProblem(
        machine=machine, specs=specs,
        controlled_resources=(ResourceKind.CPU,),
    )

    def run():
        rows = []
        for grid in (2, 4, 8, 16):
            model = OptimizerCostModel(calibration)
            designer = VirtualizationDesigner(problem, model)
            design = designer.design("exhaustive", grid=grid)
            rows.append([
                grid,
                design.allocation.vector_for("w-q4").cpu,
                design.allocation.vector_for("w-q13").cpu,
                design.predicted_total_cost,
                model.evaluations,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablation_grid", format_table(
        ["grid", "w-q4 CPU", "w-q13 CPU", "est. total (s)", "evaluations"],
        rows,
        title="Ablation A1b: share-grid granularity on the Figure-5 problem",
    ))

    costs = [row[3] for row in rows]
    # Finer grids never make the (estimated) optimum worse.
    for coarse, fine in zip(costs, costs[1:]):
        assert fine <= coarse + 1e-9
    # Every grid keeps the paper's decision direction.
    for row in rows[1:]:  # grid=2 can only split 50/50
        assert row[2] > row[1]
