"""Ablation A2 — reducing the cost of calibration.

The paper (Section 7): "This cost modeling can be refined by developing
techniques to reduce the number of calibration experiments required,
since cost model calibration is a fairly lengthy process."

Two refinements are evaluated against exact per-allocation calibration:

* *Interpolation*: calibrate only the corners of the share grid and
  answer interior allocations by multilinear interpolation.
* *Protocol*: the closed-form sequential protocol vs the joint
  least-squares fit over the full measurement suite.

Quality metric: relative error of the interpolated/alternative
``cpu_tuple_cost`` and ``seconds_per_seq_page`` against exact
calibration at the probe allocation, plus whether the Figure-5 design
decision survives.
"""


from repro.calibration import CalibrationCache, CalibrationRunner
from repro.core.cost_model import OptimizerCostModel
from repro.core.problem import WorkloadSpec
from repro.util.tables import format_table
from repro.virt.resources import ResourceVector
from repro.workloads import tpch_query
from repro.workloads.workload import Workload

from conftest import report


def alloc(cpu, memory=0.5):
    return ResourceVector.of(cpu=cpu, memory=memory, io=0.5)


def test_ablation_calibration_interpolation(benchmark, machine, tpch):
    probes = [alloc(0.5, 0.5), alloc(0.375, 0.625), alloc(0.625, 0.375)]

    def run():
        runner = CalibrationRunner(machine)
        exact_cache = CalibrationCache(runner, interpolate=False)
        interp_cache = CalibrationCache(runner, interpolate=True)
        # Only the 4 corners are calibrated for the interpolating cache.
        interp_cache.calibrate_grid([0.25, 0.75], [0.25, 0.75], [0.5])

        rows = []
        for probe in probes:
            exact = exact_cache.params_for(probe)
            approx = interp_cache.params_for(probe)
            rows.append((
                f"cpu={probe.cpu:.3f} mem={probe.memory:.3f}",
                exact.cpu_tuple_cost, approx.cpu_tuple_cost,
                abs(approx.cpu_tuple_cost / exact.cpu_tuple_cost - 1),
                abs(approx.seconds_per_seq_page / exact.seconds_per_seq_page - 1),
            ))
        calibrations_saved = exact_cache.n_calibrations  # one per probe
        return rows, interp_cache.n_calibrations, calibrations_saved

    rows, corner_count, probe_count = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        ["probe allocation", "exact cpu_tuple_cost", "interpolated",
         "rel. error", "T_seq rel. error"],
        rows,
        title="Ablation A2a: interpolated vs exact calibration",
    )
    table += (
        f"\n\nCalibration experiments: {corner_count} (corner grid, reused for "
        f"any interior allocation) vs {probe_count} exact probes "
        f"(one per allocation, growing with every new design problem)"
    )
    report("ablation_calibration_interpolation", table)

    # Interpolation must stay in the right ballpark. The residual error
    # is the curvature of the ~1/share parameter surfaces between grid
    # points (largest at the grid center); T_seq itself interpolates
    # well. A denser grid shrinks both — that is the trade-off this
    # ablation quantifies.
    for _probe, _exact, _approx, tuple_err, seq_err in rows:
        assert tuple_err < 1.0
        assert seq_err < 0.3


def test_ablation_calibration_protocols(benchmark, machine, tpch):
    allocations = [alloc(c) for c in (0.25, 0.5, 0.75)]

    def run():
        sequential = CalibrationRunner(machine, method="sequential")
        lstsq = CalibrationRunner(machine, method="lstsq")
        spec = WorkloadSpec(Workload("q13", [tpch_query("Q13")]), tpch)
        rows = []
        rankings = {}
        for method, runner in (("sequential", sequential), ("lstsq", lstsq)):
            cache = CalibrationCache(runner)
            model = OptimizerCostModel(cache)
            costs = [model.cost(spec, a) for a in allocations]
            rankings[method] = sorted(range(3), key=lambda i: costs[i])
            for a, cost in zip(allocations, costs):
                params = cache.params_for(a)
                rows.append((method, f"{a.cpu:.0%}", params.cpu_tuple_cost,
                             params.random_page_cost, cost))
        return rows, rankings

    rows, rankings = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        ["protocol", "cpu share", "cpu_tuple_cost", "random_page_cost",
         "est. Q13 cost (s)"],
        rows,
        title="Ablation A2b: sequential vs least-squares calibration",
    )
    sequential_ok = rankings["sequential"] == [2, 1, 0]
    lstsq_ok = rankings["lstsq"] == [2, 1, 0]
    table += (
        f"\n\nCPU-allocation ranking for Q13 (best to worst CPU share):"
        f" sequential {'correct' if sequential_ok else 'WRONG'},"
        f" least-squares {'correct' if lstsq_ok else 'WRONG'}."
        f"\nFinding: the joint fit mixes cache regimes (thrashing index"
        f" scans vs cached loops) into one system and is not rank-safe;"
        f" the closed-form sequential protocol is the library default."
    )
    report("ablation_calibration_protocols", table)

    # The default protocol must rank CPU allocations correctly for a
    # CPU-bound query (more CPU -> cheaper); the joint fit's failure to
    # do so reliably is this ablation's documented finding.
    assert rankings["sequential"] == [2, 1, 0]
