"""Extension E2 — service-level objectives (paper, Section 7).

"Adding different service-level objectives to the different workloads
is also an interesting direction for future work." Two identical
CPU-bound tenants compete; an SLO policy (a) weights the gold tenant's
seconds 5x, and (b) alternatively bounds the batch tenant's degradation
at 10% — showing both how SLOs steer the design and how constraints
temper it.
"""

import pytest

from repro.core.designer import VirtualizationDesigner
from repro.core.problem import VirtualizationDesignProblem, WorkloadSpec
from repro.core.slo import ServiceLevelObjective, SloPolicy
from repro.util.tables import format_table
from repro.virt.resources import ResourceKind
from repro.workloads import tpch_query
from repro.workloads.workload import Workload

from conftest import report


@pytest.fixture(scope="module")
def problem(tpch, machine):
    q13 = tpch_query("Q13")
    specs = [
        WorkloadSpec(Workload.repeat("gold", q13, 4), tpch),
        WorkloadSpec(Workload.repeat("batch", q13, 4), tpch),
    ]
    return VirtualizationDesignProblem(
        machine=machine, specs=specs,
        controlled_resources=(ResourceKind.CPU,),
    )


def test_ext_slo_policies(benchmark, problem, estimated_model):
    def run():
        rows = []
        designs = {}
        policies = {
            "no SLO": None,
            "gold weight 5x": SloPolicy({
                "gold": ServiceLevelObjective(weight=5.0),
            }),
            "gold 5x + batch <=10% degradation": SloPolicy({
                "gold": ServiceLevelObjective(weight=5.0),
                "batch": ServiceLevelObjective(max_degradation=0.10),
            }),
        }
        for label, policy in policies.items():
            designer = VirtualizationDesigner(problem, estimated_model,
                                              slo=policy)
            design = designer.design("exhaustive", grid=8)
            designs[label] = design
            rows.append([
                label,
                design.allocation.vector_for("gold").cpu,
                design.allocation.vector_for("batch").cpu,
                design.predicted_costs["gold"],
                design.predicted_costs["batch"],
            ])
        return rows, designs

    rows, designs = benchmark.pedantic(run, rounds=1, iterations=1)

    report("ext_slo", format_table(
        ["policy", "gold CPU", "batch CPU", "gold est. (s)", "batch est. (s)"],
        rows,
        title="Extension E2: service-level objectives steer the design",
    ))

    neutral = designs["no SLO"]
    weighted = designs["gold weight 5x"]
    bounded = designs["gold 5x + batch <=10% degradation"]

    # Identical tenants split evenly without SLOs.
    assert neutral.allocation.vector_for("gold").cpu == pytest.approx(0.5)
    # Weighting pulls CPU toward gold.
    assert weighted.allocation.vector_for("gold").cpu > 0.5
    # The degradation bound keeps batch within 10% of its baseline.
    baseline_batch = neutral.default_costs["batch"]
    assert bounded.predicted_costs["batch"] <= baseline_batch * 1.10 + 1e-9
    # And therefore gold gets no more CPU than the unconstrained case.
    assert bounded.allocation.vector_for("gold").cpu <= \
        weighted.allocation.vector_for("gold").cpu
