"""Extension E3 — placement across a heterogeneous fleet.

Beyond the paper's single consolidated host: two machines with opposite
strengths (one CPU-rich, one I/O-rich) receive four TPC-H tenants with
opposite profiles. The placement designer must discover the affinity
(CPU-bound tenants to the CPU-rich box, I/O-bound tenants to the
I/O-rich box) from calibrated what-if estimates alone, and divide each
machine's CPU among its tenants.
"""

import pytest

from repro.calibration import CalibrationCache, CalibrationRunner
from repro.core.cost_model import OptimizerCostModel
from repro.core.placement import PlacementDesigner
from repro.core.problem import WorkloadSpec
from repro.util.tables import format_table
from repro.virt.machine import PhysicalMachine
from repro.virt.resources import ResourceKind
from repro.workloads import tpch_query
from repro.workloads.workload import Workload

from conftest import report


def _machine(name: str, cpu_rate: float, seq_mib: float,
             rand_iops: float) -> PhysicalMachine:
    return PhysicalMachine(
        name=name, cpu_units_per_second=cpu_rate, memory_mib=20.0,
        io_seq_mib_per_second=seq_mib, io_random_ops_per_second=rand_iops,
    )


@pytest.fixture(scope="module")
def fleet():
    return [
        _machine("cpu-rich", cpu_rate=500e6, seq_mib=30.0, rand_iops=80.0),
        _machine("io-rich", cpu_rate=125e6, seq_mib=120.0, rand_iops=260.0),
    ]


def test_ext_placement(benchmark, fleet, tpch):
    specs = [
        WorkloadSpec(Workload.repeat("cpu-a", tpch_query("Q13"), 4), tpch),
        WorkloadSpec(Workload.repeat("cpu-b", tpch_query("Q13"), 4), tpch),
        WorkloadSpec(Workload.repeat("io-a", tpch_query("Q4"), 2), tpch),
        WorkloadSpec(Workload.repeat("io-b", tpch_query("Q4"), 2), tpch),
    ]

    def run():
        designer = PlacementDesigner(
            fleet, specs,
            cost_model_for=lambda machine: OptimizerCostModel(
                CalibrationCache(CalibrationRunner(machine))
            ),
            controlled_resources=(ResourceKind.CPU,), grid=4,
        )
        result = designer.place()
        # Compare with the naive balanced placement (one of each kind
        # per box).
        naive = {"cpu-a": "cpu-rich", "io-a": "cpu-rich",
                 "cpu-b": "io-rich", "io-b": "io-rich"}
        naive_cost, _ = designer._fleet_cost(naive)
        return designer, result, naive_cost

    designer, result, naive_cost = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [name, result.assignment[name],
         result.designs[result.assignment[name]]
         .allocation.vector_for(name).cpu]
        for name in sorted(result.assignment)
    ]
    table = format_table(["workload", "machine", "CPU share"], rows,
                         title="Extension E3: placement on a heterogeneous fleet")
    table += (
        f"\n\nFleet cost: placed {result.total_cost:.3f}s vs "
        f"naive balanced {naive_cost:.3f}s "
        f"({1 - result.total_cost / naive_cost:.1%} better)"
    )
    report("ext_placement", table)

    # Affinity discovered from estimates alone.
    assert result.machine_for("cpu-a") == "cpu-rich"
    assert result.machine_for("cpu-b") == "cpu-rich"
    assert result.machine_for("io-a") == "io-rich"
    assert result.machine_for("io-b") == "io-rich"
    assert result.total_cost <= naive_cost + 1e-9
