"""Engine microbenchmarks.

Unlike the experiment benchmarks (which regenerate the paper's figures
with single-shot runs), these time the substrate's hot paths over many
rounds, so performance regressions in the engine itself are visible in
the pytest-benchmark table: B+-tree lookups, buffer-pool access, LIKE
matching, expression evaluation, and an end-to-end aggregation query.
"""

import pytest

from repro.engine.bufferpool import BufferPool
from repro.engine.database import Database
from repro.engine.expr import (
    BinaryOp,
    ColumnRef,
    EvalContext,
    LikeExpr,
    Literal,
    RowLayout,
)
from repro.engine.index import BPlusTreeIndex
from repro.engine.schema import Column, ColumnType, TableSchema
from repro.engine.storage import RecordId
from repro.engine.trace import WorkTrace


@pytest.fixture(scope="module")
def btree():
    entries = [(i, RecordId(i // 80, i % 80)) for i in range(100_000)]
    return BPlusTreeIndex.bulk_load("bench", "t", "a", entries)


def test_micro_btree_point_lookup(benchmark, btree):
    def lookups():
        hits = 0
        for key in range(0, 100_000, 997):
            rids, _pages = btree.search(key)
            hits += len(rids)
        return hits

    assert benchmark(lookups) == len(range(0, 100_000, 997))


def test_micro_btree_range_scan(benchmark, btree):
    def scan():
        return sum(1 for _ in btree.range_scan(40_000, 45_000))

    assert benchmark(scan) == 5001


def test_micro_bufferpool_access(benchmark):
    pool = BufferPool(512)
    trace = WorkTrace()

    def churn():
        for page in range(2048):
            pool.access(1, page % 700, trace, sequential=True)
        return pool.hits

    benchmark(churn)


def test_micro_like_matching(benchmark):
    expr = LikeExpr(Literal("the quick brown fox jumps over the lazy dog"),
                    "%quick%lazy%")
    ctx = EvalContext()

    def match():
        result = True
        for _ in range(1000):
            result = expr.eval((), ctx)
        return result

    assert benchmark(match) is True


def test_micro_expression_eval(benchmark):
    layout = RowLayout([("t", "a"), ("t", "b")])
    expr = BinaryOp(
        "and",
        BinaryOp("<", ColumnRef("t", "a"), Literal(500)),
        BinaryOp(">=", BinaryOp("*", ColumnRef("t", "b"), Literal(3)),
                 Literal(10)),
    ).bind(layout)
    rows = [(i, i % 7) for i in range(1000)]
    ctx = EvalContext()

    def evaluate():
        return sum(1 for row in rows if expr.eval(row, ctx) is True)

    benchmark(evaluate)


@pytest.fixture(scope="module")
def agg_db():
    db = Database("micro", memory_pages=4096)
    db.create_table(TableSchema("m", [
        Column("k", ColumnType.INT),
        Column("v", ColumnType.FLOAT),
    ]))
    db.load_rows("m", [(i % 100, float(i)) for i in range(20_000)])
    db.analyze()
    db.warm_cache()
    return db


def test_micro_group_by_query(benchmark, agg_db):
    sql = "select k, sum(v) as s, count(*) as n from m group by k"

    def query():
        return len(agg_db.run_sql(sql).rows)

    assert benchmark(query) == 100
