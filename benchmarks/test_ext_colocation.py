"""Extension E5 — capped vs work-conserving scheduling under co-location.

The paper's formulation prices an allocation as if each VM always held
exactly its share (Xen's *cap* mode) — which also makes workloads
measurable in isolation. Xen equally supports *work-conserving* weights
where idle capacity flows to whoever can use it. This benchmark re-runs
the Figure-5 scenario with both tenants executing concurrently and asks
how much of the designed allocation's benefit the scheduler mode
changes.

Expected shape: under caps the 25/75 design clearly beats 50/50 (the
paper's result); under work-conserving weights the default narrows the
gap on its own, because the I/O-bound tenant's unused CPU flows to the
CPU-bound tenant regardless of the configured split.
"""


from repro.core.measure import WorkloadRunner
from repro.util.tables import format_table
from repro.virt.colocation import ColocationSimulator, timeline_from_runs
from repro.virt.resources import ResourceVector
from repro.workloads import tpch_query
from repro.workloads.workload import Workload

from conftest import report


def test_ext_colocation_scheduling_modes(benchmark, machine, tpch, calibration):
    w_q4 = Workload.repeat("w-q4", tpch_query("Q4"), 3)
    w_q13 = Workload.repeat("w-q13", tpch_query("Q13"), 9)

    def run():
        # Collect each tenant's statement traces once (memory fixed at
        # 50%, so traces do not depend on the CPU split under test).
        runner = WorkloadRunner(machine)
        base = ResourceVector.of(cpu=0.5, memory=0.5, io=0.5)
        params = calibration.params_for(base)
        q4_traces = runner.run(w_q4, tpch, base,
                               planning_params=params).statement_traces
        q13_traces = runner.run(w_q13, tpch, base,
                                planning_params=params).statement_traces

        simulator = ColocationSimulator(machine, step_seconds=0.002)
        scenarios = {}
        for split_label, q4_cpu, q13_cpu in (("default 50/50", 0.5, 0.5),
                                             ("designed 25/75", 0.25, 0.75)):
            for mode_label, conserving in (("capped", False),
                                           ("work-conserving", True)):
                timelines = [
                    timeline_from_runs(
                        "w-q4",
                        ResourceVector.of(cpu=q4_cpu, memory=0.5, io=0.5),
                        q4_traces, machine,
                    ),
                    timeline_from_runs(
                        "w-q13",
                        ResourceVector.of(cpu=q13_cpu, memory=0.5, io=0.5),
                        q13_traces, machine,
                    ),
                ]
                result = simulator.run(timelines, work_conserving=conserving)
                scenarios[(split_label, mode_label)] = result
        return scenarios

    scenarios = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (split, mode), result in sorted(scenarios.items()):
        rows.append([
            split, mode,
            result.completion_seconds["w-q4"],
            result.completion_seconds["w-q13"],
            result.makespan_seconds,
        ])
    table = format_table(
        ["allocation", "scheduler mode", "w-q4 done (s)", "w-q13 done (s)",
         "makespan (s)"],
        rows,
        title="Extension E5: concurrent co-location, capped vs "
              "work-conserving scheduling",
    )

    capped_gap = (
        scenarios[("default 50/50", "capped")].completion_seconds["w-q13"]
        / scenarios[("designed 25/75", "capped")].completion_seconds["w-q13"]
    )
    conserving_gap = (
        scenarios[("default 50/50", "work-conserving")]
        .completion_seconds["w-q13"]
        / scenarios[("designed 25/75", "work-conserving")]
        .completion_seconds["w-q13"]
    )
    table += (
        f"\n\nQ13 speedup from the 25/75 design: {capped_gap:.2f}x under caps "
        f"vs {conserving_gap:.2f}x work-conserving.\nWork-conserving weights "
        f"recover part of the design's benefit automatically; caps make the "
        f"design decision essential — and caps are what make per-VM "
        f"performance predictable enough to design for."
    )
    report("ext_colocation", table)

    # Under caps the design must help Q13 substantially.
    assert capped_gap > 1.15
    # Work-conserving narrows (but need not erase) the design's edge.
    assert conserving_gap < capped_gap
    # Work-conserving mode never slows any tenant relative to caps at
    # the same configured shares.
    for split in ("default 50/50", "designed 25/75"):
        for name in ("w-q4", "w-q13"):
            assert scenarios[(split, "work-conserving")] \
                .completion_seconds[name] <= \
                scenarios[(split, "capped")].completion_seconds[name] + 1e-6
    # No overlap is modeled inside a VM here, so Q4's slowdown at 25%
    # CPU is an upper bound on what the isolated measurement (Figure 5)
    # shows; it must still finish within a sane envelope.
    assert scenarios[("designed 25/75", "capped")] \
        .completion_seconds["w-q4"] <= \
        scenarios[("default 50/50", "capped")].completion_seconds["w-q4"] * 1.5
