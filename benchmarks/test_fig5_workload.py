"""Figure 5 — effect of the designed allocation on total execution time.

Paper: two workloads, one of 3 copies of Q4 and one of 9 copies of Q13
(copies chosen so the workloads take similar time at equal shares).
"The figure shows that the latter allocation [75% of the CPU to Q13]
improves the performance of Q13 by 30% without hurting the performance
of Q4."

This benchmark also closes the loop the paper describes: the 25/75
decision is *made by the virtualization designer from optimizer
estimates*, then validated by measurement.
"""

import pytest

from repro.core.designer import VirtualizationDesigner
from repro.core.problem import VirtualizationDesignProblem, WorkloadSpec
from repro.util.tables import format_table
from repro.virt.resources import ResourceKind, ResourceVector
from repro.workloads import tpch_query
from repro.workloads.workload import Workload

from conftest import report


def alloc(cpu):
    return ResourceVector.of(cpu=cpu, memory=0.5, io=0.5)


@pytest.fixture(scope="module")
def workload_specs(tpch):
    return [
        WorkloadSpec(Workload.repeat("w-q4", tpch_query("Q4"), 3), tpch),
        WorkloadSpec(Workload.repeat("w-q13", tpch_query("Q13"), 9), tpch),
    ]


def test_fig5_designed_allocation(benchmark, workload_specs, machine,
                                  estimated_model, measured_model):
    def run():
        # The designer makes the decision from estimates alone.
        problem = VirtualizationDesignProblem(
            machine=machine, specs=workload_specs,
            controlled_resources=(ResourceKind.CPU,),
        )
        designer = VirtualizationDesigner(problem, estimated_model)
        design = designer.design("exhaustive", grid=4)

        q4_spec, q13_spec = workload_specs
        chosen_q4 = design.allocation.vector_for("w-q4").cpu
        chosen_q13 = design.allocation.vector_for("w-q13").cpu
        measured = {
            "default": {
                "w-q4": measured_model.cost(q4_spec, alloc(0.5)),
                "w-q13": measured_model.cost(q13_spec, alloc(0.5)),
            },
            "designed": {
                "w-q4": measured_model.cost(q4_spec, alloc(chosen_q4)),
                "w-q13": measured_model.cost(q13_spec, alloc(chosen_q13)),
            },
        }
        return design, measured

    design, measured = benchmark.pedantic(run, rounds=1, iterations=1)

    chosen_q4 = design.allocation.vector_for("w-q4").cpu
    chosen_q13 = design.allocation.vector_for("w-q13").cpu
    q13_improvement = 1 - measured["designed"]["w-q13"] / measured["default"]["w-q13"]
    q4_degradation = measured["designed"]["w-q4"] / measured["default"]["w-q4"] - 1

    headers = ["allocation", "w-q4 (3 x Q4) seconds", "w-q13 (9 x Q13) seconds",
               "total seconds"]
    rows = [
        ["default 50%/50%",
         measured["default"]["w-q4"], measured["default"]["w-q13"],
         measured["default"]["w-q4"] + measured["default"]["w-q13"]],
        [f"designed {chosen_q4:.0%}/{chosen_q13:.0%}",
         measured["designed"]["w-q4"], measured["designed"]["w-q13"],
         measured["designed"]["w-q4"] + measured["designed"]["w-q13"]],
    ]
    table = format_table(headers, rows,
                         title="Figure 5: total execution time per workload")
    table += (
        f"\n\nDesigner decision (from estimates): CPU {chosen_q4:.0%} to w-q4, "
        f"{chosen_q13:.0%} to w-q13"
        f"\nMeasured: w-q13 improves {q13_improvement:.1%} "
        f"(paper: ~30%), w-q4 changes {q4_degradation:+.1%} "
        f"(paper: not hurt)"
    )
    report("fig5_workload", table)

    # The paper's decision: take CPU away from Q4, give it to Q13.
    assert chosen_q13 > chosen_q4
    # The paper's outcome: Q13 improves substantially, Q4 barely moves,
    # and the total is better than the default.
    assert q13_improvement > 0.15
    assert q4_degradation < 0.25
    default_total = sum(measured["default"].values())
    designed_total = sum(measured["designed"].values())
    assert designed_total < default_total
