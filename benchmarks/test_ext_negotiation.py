"""Extension E4 — DBMS/hypervisor memory negotiation (paper, Section 7).

The paper's final open problem: let the database communicate with the
virtualization layer. Here each guest advises its working-set size and
the hypervisor splits memory proportionally — no calibration, no
search.

Tenants: two CPU-similar Q13 mixes over databases of very different
sizes. At 50/50 the big tenant's working set misses its buffer pool
(every copy re-reads from disk) while the small tenant wastes most of
its memory; shifting memory toward the big tenant lets its working set
become resident without hurting the small one.

The benchmark's finding *supports the paper's Section-7 argument for
this channel*: the calibrated what-if design cannot beat the advisory
here, because ``P(R)`` is database-independent by construction ("P ...
depends only on the machine characteristics") and therefore cannot see
a specific tenant's cache-residency cliff. The guest's advisory carries
exactly the information the optimizer-side model is missing.
"""

import pytest

from repro.core.cost_model import MeasuredCostModel, OptimizerCostModel
from repro.core.designer import VirtualizationDesigner
from repro.core.negotiation import MemoryNegotiator, working_set_report
from repro.core.problem import VirtualizationDesignProblem, WorkloadSpec
from repro.util.tables import format_table
from repro.virt.resources import ResourceKind, ResourceVector
from repro.workloads import build_tpch_database, tpch_query
from repro.workloads.workload import Workload

from conftest import report


@pytest.fixture(scope="module")
def tenants():
    big = build_tpch_database(
        scale_factor=0.035, tables=["customer", "orders"], name="big-tenant")
    small = build_tpch_database(
        scale_factor=0.01, tables=["customer", "orders"], name="small-tenant")
    return [
        WorkloadSpec(Workload.repeat("big-tenant", tpch_query("Q13"), 4), big),
        WorkloadSpec(Workload.repeat("small-tenant", tpch_query("Q13"), 4),
                     small),
    ]


def test_ext_memory_negotiation(benchmark, tenants, machine, calibration):
    measured = MeasuredCostModel(machine, calibration=calibration)

    def run():
        # Negotiated memory split from the guests' advisories, capped by
        # the hypervisor to what caching can actually serve.
        negotiator = MemoryNegotiator(min_share=0.10)
        advisories = {
            spec.name: negotiator.cacheable_pages(
                working_set_report(spec.database), machine.memory_mib,
                n_guests=len(tenants),
            )
            for spec in tenants
        }
        negotiated_shares = negotiator.propose(advisories)

        # Full design over the memory axis for comparison.
        problem = VirtualizationDesignProblem(
            machine=machine, specs=tenants,
            controlled_resources=(ResourceKind.MEMORY,),
        )
        designer = VirtualizationDesigner(
            problem, OptimizerCostModel(calibration)
        )
        design = designer.design("exhaustive", grid=8)

        def alloc(name, memory):
            return ResourceVector.of(cpu=0.5, memory=memory, io=0.5)

        outcomes = {}
        for label, shares in (
            ("default 50/50", {spec.name: 0.5 for spec in tenants}),
            ("negotiated", negotiated_shares),
            ("designed", {
                spec.name: design.allocation.vector_for(spec.name).memory
                for spec in tenants
            }),
        ):
            outcomes[label] = {
                spec.name: measured.cost(spec, alloc(spec.name, shares[spec.name]))
                for spec in tenants
            }
        return advisories, negotiated_shares, design, outcomes

    advisories, shares, design, outcomes = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = []
    for label, costs in outcomes.items():
        if label == "negotiated":
            mem = {name: shares[name] for name in costs}
        elif label == "designed":
            mem = {name: design.allocation.vector_for(name).memory
                   for name in costs}
        else:
            mem = {name: 0.5 for name in costs}
        rows.append([
            label,
            f"{mem['big-tenant']:.0%}/{mem['small-tenant']:.0%}",
            costs["big-tenant"], costs["small-tenant"],
            sum(costs.values()),
        ])
    table = format_table(
        ["strategy", "memory split (big/small)",
         "big-tenant (s)", "small-tenant (s)", "total (s)"],
        rows,
        title="Extension E4: memory negotiation vs default vs full design",
    )
    table += (
        f"\n\nCapped advisories: big-tenant={advisories['big-tenant']} pages, "
        f"small-tenant={advisories['small-tenant']} pages"
    )
    report("ext_negotiation", table)

    totals = {label: sum(costs.values()) for label, costs in outcomes.items()}
    # The advisory channel must clearly beat the default: the big
    # tenant's working set becomes resident.
    assert totals["negotiated"] < totals["default 50/50"] * 0.97
    # The advisory must give the memory-hungry tenant the larger share.
    assert shares["big-tenant"] > shares["small-tenant"]
    # No assertion that the calibrated design beats the advisory: the
    # machine-generic P(R) cannot model a tenant-specific residency
    # cliff — the documented finding of this extension.