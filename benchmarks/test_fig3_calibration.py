"""Figure 3 — the calibrated ``cpu_tuple_cost`` parameter.

Paper: "Figure 3 shows the result of using our calibration process to
compute cpu_tuple_cost for different CPU and memory allocations,
ranging from 25% to 75% of the available CPU or memory. The figure
shows that the cpu_tuple_cost parameter is sensitive to changes in
resource allocation, and that our calibration process can detect this
sensitivity."

Reproduced shape: cpu_tuple_cost *falls* as the CPU share grows (per
tuple CPU time shrinks relative to a page fetch) and *rises* as the
memory share grows (page fetches get cheaper with caching).
"""

from repro.util.tables import format_table
from repro.virt.resources import ResourceVector

from conftest import SHARE_LEVELS, report


def test_fig3_cpu_tuple_cost_surface(benchmark, calibration):
    def run():
        surface = {}
        for cpu in SHARE_LEVELS:
            for memory in SHARE_LEVELS:
                params = calibration.params_for(
                    ResourceVector.of(cpu=cpu, memory=memory, io=0.5)
                )
                surface[(cpu, memory)] = params.cpu_tuple_cost
        return surface

    surface = benchmark.pedantic(run, rounds=1, iterations=1)

    headers = ["cpu share \\ mem share"] + [f"{m:.0%}" for m in SHARE_LEVELS]
    rows = [
        [f"{cpu:.0%}"] + [surface[(cpu, memory)] for memory in SHARE_LEVELS]
        for cpu in SHARE_LEVELS
    ]
    report("fig3_cpu_tuple_cost", format_table(
        headers, rows,
        title="Figure 3: calibrated cpu_tuple_cost vs CPU and memory shares",
    ))

    # The paper's claim: the parameter is sensitive to the allocation.
    for memory in SHARE_LEVELS:
        column = [surface[(cpu, memory)] for cpu in SHARE_LEVELS]
        assert column[0] > column[1] > column[2], \
            f"cpu_tuple_cost must fall with CPU share (mem={memory})"
    for cpu in SHARE_LEVELS:
        row = [surface[(cpu, memory)] for memory in SHARE_LEVELS]
        assert row[-1] > row[0], \
            f"cpu_tuple_cost must rise with memory share (cpu={cpu})"
