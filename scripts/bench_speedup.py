#!/usr/bin/env python
"""Benchmark: serial vs parallel designer runs on the paper's grids.

Times the same design problems the Figure 3 / Figure 5 experiments
solve — TPC-H workloads competing for CPU *and* memory on the
laboratory machine — once through the legacy engine-less path (the
serial baseline) and once per worker count through the batched
:class:`~repro.parallel.EvaluationEngine` path.

Calibration cost is excluded from the timings: a shared
interpolation-enabled :class:`CalibrationCache` is pre-warmed on the
grid's corner allocations, so every timed run pays only for what-if
evaluations and search bookkeeping — the work the engine actually
parallelizes. Each timed configuration gets a fresh
:class:`OptimizerCostModel` (empty memo) over that shared cache.

Where the speedup comes from: the batched exhaustive strategy costs
each distinct (workload, choice) pair once and scores the full
combination space with plain float sums, while the serial baseline
builds and evaluates an allocation matrix per combination — at grid 21
with three workloads that is ~400 pairs vs ~5300 matrix evaluations.
Thread/process fan-out adds on multi-core hosts.

Writes ``benchmarks/results/BENCH_parallel.json`` (one entry per
(benchmark, configuration): name, grid, workers, wall_seconds,
evaluations, speedup; the serial baseline row has ``workers: null`` and
``speedup: 1.0``). ``scripts/check_bench.py`` validates the schema and
gates on the 4-worker speedup.

Run with ``PYTHONPATH=src python scripts/bench_speedup.py [--smoke]``;
``--smoke`` shrinks the grids and the calibration corners for CI.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.calibration import CalibrationCache, CalibrationRunner  # noqa: E402
from repro.core import (  # noqa: E402
    OptimizerCostModel,
    VirtualizationDesignProblem,
    VirtualizationDesigner,
    WorkloadSpec,
)
from repro.parallel import EvaluationEngine  # noqa: E402
from repro.virt.machine import laboratory_machine  # noqa: E402
from repro.virt.resources import ResourceKind  # noqa: E402
from repro.virt.vm import MIN_GUEST_MEMORY_MIB  # noqa: E402
from repro.workloads import Workload, build_tpch_database, tpch_query  # noqa: E402

RESULT_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_parallel.json"

#: (name, algorithm, full grid, smoke grid) — the benchmark matrix.
BENCHMARKS = (
    ("exhaustive-fig5-grid", "exhaustive", 25, 13),
    ("greedy-fig3-grid", "greedy", 48, 16),
)

WORKER_COUNTS = (1, 2, 4)

#: Wall time is the min over this many runs per configuration —
#: single-shot timings on a busy host swing by 2x, the minimum is the
#: stable estimate of what the configuration actually costs.
REPETITIONS = 3


def build_problem() -> VirtualizationDesignProblem:
    """Three TPC-H workloads competing for CPU and memory."""
    db = build_tpch_database(scale_factor=0.002,
                             tables=["customer", "orders", "lineitem"])
    specs = [
        WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 3), db),
        WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 9), db),
        WorkloadSpec(Workload.repeat("line-scan", tpch_query("Q1"), 2), db),
    ]
    return VirtualizationDesignProblem(
        machine=laboratory_machine(), specs=specs,
        controlled_resources=(ResourceKind.CPU, ResourceKind.MEMORY),
    )


def share_bounds(problem, grid):
    """The [lo, hi] share each workload can receive per resource."""
    n = problem.n_workloads
    min_mem_share = MIN_GUEST_MEMORY_MIB / problem.machine.memory_mib
    min_mem_units = max(1, math.ceil(min_mem_share * grid - 1e-9))
    cpu = (1 / grid, (grid - (n - 1)) / grid)
    mem = (min_mem_units / grid, (grid - (n - 1) * min_mem_units) / grid)
    return cpu, mem


def warm_cache(problem, grids, smoke) -> CalibrationCache:
    """Calibrate the corner allocations every timed run interpolates from.

    One consistent lattice covering ALL benchmark grids: interpolation
    brackets per axis over every calibrated level and needs the full
    corner box present, so mixing per-grid corner sets would leave holes
    that trigger fresh (timed!) calibrations and perturb trajectories.
    """
    cache = CalibrationCache(CalibrationRunner(problem.machine),
                             interpolate=True)
    io_level = 1.0 / problem.n_workloads  # uncontrolled: fixed equal share
    bounds = [share_bounds(problem, grid) for grid in grids]
    cpu_lo = min(b[0][0] for b in bounds)
    cpu_hi = max(b[0][1] for b in bounds)
    mem_lo = min(b[1][0] for b in bounds)
    mem_hi = max(b[1][1] for b in bounds)
    cpu_levels = [cpu_lo, cpu_hi] if smoke else [cpu_lo, 0.5, cpu_hi]
    mem_levels = [mem_lo, mem_hi] if smoke else [mem_lo, 0.5, mem_hi]
    cache.calibrate_grid(cpu_levels, mem_levels, [io_level])
    return cache


def timed_run(problem, cache, algorithm, grid, engine):
    model = OptimizerCostModel(cache)
    designer = VirtualizationDesigner(problem, model)
    start = time.perf_counter()
    design = designer.design(algorithm, grid=grid, engine=engine)
    return time.perf_counter() - start, design


def best_of(problem, cache, algorithm, grid, engine, repetitions):
    """Min wall seconds over *repetitions* runs (fresh model each)."""
    seconds, design = timed_run(problem, cache, algorithm, grid, engine)
    for _rep in range(repetitions - 1):
        again, _design = timed_run(problem, cache, algorithm, grid, engine)
        seconds = min(seconds, again)
    return seconds, design


def run_benchmark(problem, cache, name, algorithm, grid, repetitions):
    print(f"[{name}] grid={grid} algorithm={algorithm}", file=sys.stderr)
    # Untimed warm-up so one-time costs (plan cache, interpolation of
    # first-touch corners) do not land on whichever run goes first.
    timed_run(problem, cache, algorithm, grid, engine=None)

    entries = []
    serial_seconds, serial_design = best_of(problem, cache, algorithm,
                                            grid, None, repetitions)
    entries.append({
        "name": name, "grid": grid, "workers": None,
        "wall_seconds": round(serial_seconds, 4),
        "evaluations": serial_design.evaluations,
        "speedup": 1.0,
    })
    print(f"  serial: {serial_seconds:.3f}s "
          f"({serial_design.evaluations} evaluations)", file=sys.stderr)
    for workers in WORKER_COUNTS:
        with EvaluationEngine(workers=workers, pool="thread") as engine:
            seconds, design = best_of(problem, cache, algorithm, grid,
                                      engine, repetitions)
        assert design.evaluations == serial_design.evaluations, (
            f"{name}: parallel run spent {design.evaluations} evaluations, "
            f"serial spent {serial_design.evaluations} — determinism broken")
        entries.append({
            "name": name, "grid": grid, "workers": workers,
            "wall_seconds": round(seconds, 4),
            "evaluations": design.evaluations,
            "speedup": round(serial_seconds / seconds, 3),
        })
        print(f"  workers={workers}: {seconds:.3f}s "
              f"(speedup {serial_seconds / seconds:.2f}x)", file=sys.stderr)
    return entries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small grids and fewer calibration corners "
                             "(CI-sized; minutes become seconds)")
    parser.add_argument("--output", default=str(RESULT_PATH),
                        help=f"result path (default {RESULT_PATH})")
    args = parser.parse_args(argv)

    problem = build_problem()
    grids = [smoke if args.smoke else full
             for _name, _algo, full, smoke in BENCHMARKS]
    print(f"Warming the calibration cache for grids {grids} ...",
          file=sys.stderr)
    cache = warm_cache(problem, grids, smoke=args.smoke)

    repetitions = 2 if args.smoke else REPETITIONS
    entries = []
    for (name, algorithm, full, smoke), grid in zip(BENCHMARKS, grids):
        entries.extend(run_benchmark(problem, cache, name, algorithm, grid,
                                     repetitions))

    payload = {
        "suite": "parallel-speedup",
        "smoke": bool(args.smoke),
        "host_cpus": os.cpu_count() or 1,
        "entries": entries,
    }
    output = pathlib.Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {len(entries)} entries to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
