#!/usr/bin/env python
"""Gate line coverage against a ratcheting floor.

CI's ``coverage`` job runs the tier-1 suite under ``pytest-cov`` and
hands the resulting ``coverage.json`` to this script (which only
*parses* that file — it needs neither ``coverage`` nor ``pytest-cov``
installed, so it also runs on bare developer machines against a report
produced elsewhere).

The contract is a **ratchet**: ``FLOOR`` may only ever go up.

* total line coverage below ``FLOOR`` fails the build;
* total line coverage more than ``RATCHET_SLACK`` points *above*
  ``FLOOR`` prints a loud notice asking for the floor to be raised in
  the same change — that is how the ratchet advances. The notice is
  advisory locally and enforced in CI via ``--strict``, so coverage
  improvements land together with the floor that locks them in.

Run with ``python scripts/check_coverage.py [coverage.json] [--strict]``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: Minimum total line coverage (percent) for src/repro under the tier-1
#: suite. Ratchet: raise it whenever coverage rises, never lower it.
#: The tier-1 suite measures ~90% line coverage; the floor sits five
#: points below so instrumentation differences (e.g. fork-pool
#: subprocesses that the tracer cannot follow) never flake the build.
FLOOR = 85.0

#: How far coverage may exceed FLOOR before the ratchet demands a bump.
#: Deliberately wide for now: the floor was calibrated with a local
#: line tracer, and pytest-cov may land a point or two away. Tighten
#: (and raise FLOOR) once CI has produced its first real number.
RATCHET_SLACK = 7.0

#: How many of the worst-covered files to list in the report.
WORST_FILES = 5


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default="coverage.json",
                        help="coverage JSON report (default coverage.json)")
    parser.add_argument("--floor", type=float, default=FLOOR,
                        help=f"override the committed floor ({FLOOR})")
    parser.add_argument("--strict", action="store_true",
                        help="fail (not just warn) when coverage exceeds "
                             "the floor by more than the ratchet slack")
    args = parser.parse_args(argv)

    path = pathlib.Path(args.path)
    if not path.exists():
        print(f"check_coverage: FAIL: {path} does not exist — run the "
              f"suite under pytest-cov with --cov-report=json first",
              file=sys.stderr)
        return 1
    try:
        report = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        print(f"check_coverage: FAIL: {path} is not valid JSON: {error}",
              file=sys.stderr)
        return 1

    totals = report.get("totals")
    if not isinstance(totals, dict) or "percent_covered" not in totals:
        print(f"check_coverage: FAIL: {path} has no totals.percent_covered "
              f"— is this a coverage.py JSON report?", file=sys.stderr)
        return 1
    percent = float(totals["percent_covered"])
    covered = totals.get("covered_lines", "?")
    statements = totals.get("num_statements", "?")

    files = report.get("files", {})
    ranked = sorted(
        ((info["summary"]["percent_covered"], name)
         for name, info in files.items()
         if isinstance(info, dict) and "summary" in info),
    )
    print(f"check_coverage: total {percent:.2f}% "
          f"({covered}/{statements} lines), floor {args.floor}%")
    for file_percent, name in ranked[:WORST_FILES]:
        print(f"check_coverage:   worst: {name} {file_percent:.1f}%")

    if percent < args.floor:
        print(f"check_coverage: FAIL: {percent:.2f}% is below the "
              f"{args.floor}% floor — add tests for the files above",
              file=sys.stderr)
        return 1
    if percent > args.floor + RATCHET_SLACK:
        message = (f"coverage is {percent:.2f}%, more than "
                   f"{RATCHET_SLACK} points above the {args.floor}% floor "
                   f"— raise FLOOR in scripts/check_coverage.py to "
                   f"{percent - RATCHET_SLACK:.1f} to lock it in")
        if args.strict:
            print(f"check_coverage: FAIL: {message}", file=sys.stderr)
            return 1
        print(f"check_coverage: NOTICE: {message}")
    print("check_coverage: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
