#!/usr/bin/env python
"""Benchmark: the hot-path fast layers against their scalar fallbacks.

PR 9's raw-speed pass attacked three profiled hot paths:

* the engine's per-tuple inner loops and the perf model's time
  integration (batched in :mod:`repro.engine.executor`, guarded by
  ``scalar_fallback()``);
* the calibration runner's execute-once/replay-many trace cache
  (``reuse_traces``), which shares buffer-pool warmup across the
  synthetic trials of every calibration landing on the same pool size;
* the what-if optimizer's optimize-once/re-cost-many cost programs
  (:mod:`repro.optimizer.recost`, guarded by
  ``full_planning_fallback()``), which bind a query's candidate plan
  shapes once and re-cost them under every new parameter set ``P``.

This benchmark times each layer against its fallback *in the same
process on the same host*, asserts the results are bit-identical both
ways, and relates the calibration rate to the committed
``BENCH_surrogate.json`` dense-grid baseline (measured before the fast
paths landed, on the same laboratory scenario).

Two timed sections:

* **calibration** — the synthetic calibration suite over a handful of
  allocations, single-threaded, once with every fast path on and once
  with the scalar executor and a cold trace cache. Identity: the
  calibrated :class:`OptimizerParameters` must match exactly.
* **exhaustive-grid** — the Figure 5-style allocation search over a
  pre-warmed interpolating calibration cache. The baseline row plans
  fully for every (query, allocation); the ``recost`` rows replay
  compiled cost programs, serially and at 1/2/4 engine workers.
  Identity: every configuration must land on the same allocation,
  predicted cost, and evaluation count.

Writes ``benchmarks/results/BENCH_hotpath.json`` (suite ``hotpath``);
``scripts/check_bench.py`` validates the schema, re-derives every
summary number, hard-fails on any identity break, and gates the
calibration speedup vs the surrogate baseline (``--min-calibration-
speedup``) and the 4-worker grid speedup on multi-core hosts
(``--min-grid-speedup``).

Run with ``PYTHONPATH=src python scripts/bench_hotpath.py [--smoke]``;
``--smoke`` shrinks the allocation list and the search grid for CI.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.calibration import CalibrationCache, CalibrationRunner  # noqa: E402
from repro.core import (  # noqa: E402
    OptimizerCostModel,
    VirtualizationDesignProblem,
    VirtualizationDesigner,
    WorkloadSpec,
)
from repro.engine import executor  # noqa: E402
from repro.optimizer import whatif  # noqa: E402
from repro.parallel import EvaluationEngine  # noqa: E402
from repro.virt.machine import laboratory_machine  # noqa: E402
from repro.virt.resources import ResourceKind, ResourceVector  # noqa: E402
from repro.virt.vm import MIN_GUEST_MEMORY_MIB  # noqa: E402
from repro.workloads import Workload, build_tpch_database, tpch_query  # noqa: E402

RESULT_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_hotpath.json"
BASELINE_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_surrogate.json"

#: Uniform shares calibrated by the single-threaded section.
CALIBRATION_SHARES = (0.25, 0.375, 0.5, 0.625, 0.75)
CALIBRATION_SHARES_SMOKE = (0.35, 0.65)

GRID = 13
GRID_SMOKE = 7
WORKER_COUNTS = (1, 2, 4)

#: Wall time is the min over this many runs per configuration — the
#: minimum is the stable estimate on a busy host (same policy as
#: scripts/bench_speedup.py).
REPETITIONS = 3


def read_baseline() -> dict:
    """The committed surrogate dense-grid run: the pre-fast-path rate."""
    payload = json.loads(BASELINE_PATH.read_text())
    dense = [e for e in payload["entries"] if e["name"] == "dense-grid"][0]
    return {
        "source": BASELINE_PATH.name,
        "calibrations": dense["calibrations"],
        "wall_seconds": dense["wall_seconds"],
        "seconds_per_calibration": round(
            dense["wall_seconds"] / dense["calibrations"], 6),
    }


# -- section 1: single-threaded calibration ----------------------------------


def run_calibrations(machine, shares, reuse_traces):
    """Calibrate every share on a fresh runner; returns (wall, params)."""
    runner = CalibrationRunner(machine, reuse_traces=reuse_traces)
    params = []
    start = time.perf_counter()
    for share in shares:
        allocation = ResourceVector.of(cpu=share, memory=share, io=share)
        params.append(runner.calibrate(allocation).parameters)
    return time.perf_counter() - start, params


def bench_calibration(shares, repetitions):
    machine = laboratory_machine()
    print(f"[calibration] {len(shares)} allocation(s), single-threaded",
          file=sys.stderr)

    fast_wall, fast_params = run_calibrations(machine, shares, True)
    for _rep in range(repetitions - 1):
        again, _params = run_calibrations(machine, shares, True)
        fast_wall = min(fast_wall, again)
    print(f"  fast:   {fast_wall:.3f}s "
          f"({fast_wall / len(shares):.4f}s per calibration)",
          file=sys.stderr)

    with executor.scalar_fallback():
        scalar_wall, scalar_params = run_calibrations(machine, shares, False)
    print(f"  scalar: {scalar_wall:.3f}s "
          f"({scalar_wall / len(shares):.4f}s per calibration)",
          file=sys.stderr)

    identical = fast_params == scalar_params
    entries = [
        {"name": "calibration", "mode": "fast",
         "calibrations": len(shares),
         "wall_seconds": round(fast_wall, 4),
         "seconds_per_calibration": round(fast_wall / len(shares), 6)},
        {"name": "calibration", "mode": "scalar",
         "calibrations": len(shares),
         "wall_seconds": round(scalar_wall, 4),
         "seconds_per_calibration": round(scalar_wall / len(shares), 6)},
    ]
    return entries, identical


# -- section 2: exhaustive-grid design search --------------------------------


def build_problem() -> VirtualizationDesignProblem:
    """Three TPC-H workloads competing for CPU and memory."""
    db = build_tpch_database(scale_factor=0.002,
                             tables=["customer", "orders", "lineitem"])
    specs = [
        WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 3), db),
        WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 9), db),
        WorkloadSpec(Workload.repeat("line-scan", tpch_query("Q1"), 2), db),
    ]
    return VirtualizationDesignProblem(
        machine=laboratory_machine(), specs=specs,
        controlled_resources=(ResourceKind.CPU, ResourceKind.MEMORY),
    )


def warm_cache(problem, grid, smoke) -> CalibrationCache:
    """Calibrate the corner allocations the timed runs interpolate from."""
    cache = CalibrationCache(CalibrationRunner(problem.machine),
                             interpolate=True)
    n = problem.n_workloads
    io_level = 1.0 / n  # uncontrolled: fixed equal share
    min_mem_share = MIN_GUEST_MEMORY_MIB / problem.machine.memory_mib
    min_mem_units = max(1, math.ceil(min_mem_share * grid - 1e-9))
    cpu_lo, cpu_hi = 1 / grid, (grid - (n - 1)) / grid
    mem_lo = min_mem_units / grid
    mem_hi = (grid - (n - 1) * min_mem_units) / grid
    cpu_levels = [cpu_lo, cpu_hi] if smoke else [cpu_lo, 0.5, cpu_hi]
    mem_levels = [mem_lo, mem_hi] if smoke else [mem_lo, 0.5, mem_hi]
    cache.calibrate_grid(cpu_levels, mem_levels, [io_level])
    return cache


def timed_design(problem, cache, grid, engine):
    model = OptimizerCostModel(cache)
    designer = VirtualizationDesigner(problem, model)
    start = time.perf_counter()
    design = designer.design("exhaustive", grid=grid, engine=engine)
    return time.perf_counter() - start, design


def best_of(problem, cache, grid, engine, repetitions):
    seconds, design = timed_design(problem, cache, grid, engine)
    for _rep in range(repetitions - 1):
        again, _design = timed_design(problem, cache, grid, engine)
        seconds = min(seconds, again)
    return seconds, design


def design_signature(design):
    return (design.evaluations, design.predicted_total_cost,
            [(name, design.allocation.vector_for(name).as_tuple())
             for name in design.allocation.workload_names()])


def bench_design(grid, repetitions, smoke):
    problem = build_problem()
    print(f"[exhaustive-grid] grid={grid}; warming the calibration cache ...",
          file=sys.stderr)
    cache = warm_cache(problem, grid, smoke)
    # Untimed warm-up so one-time costs (interpolation of first-touch
    # corners) do not land on whichever timed run goes first.
    timed_design(problem, cache, grid, engine=None)

    with whatif.full_planning_fallback():
        base_wall, base_design = best_of(problem, cache, grid, None,
                                         repetitions)
    print(f"  full-planning serial: {base_wall:.3f}s "
          f"({base_design.evaluations} evaluations)", file=sys.stderr)
    entries = [{
        "name": "exhaustive-grid", "mode": "full-planning", "grid": grid,
        "workers": None, "wall_seconds": round(base_wall, 4),
        "evaluations": base_design.evaluations, "speedup": 1.0,
    }]

    identical = True
    serial_wall, serial_design = best_of(problem, cache, grid, None,
                                         repetitions)
    identical &= design_signature(serial_design) == design_signature(
        base_design)
    entries.append({
        "name": "exhaustive-grid", "mode": "recost", "grid": grid,
        "workers": None, "wall_seconds": round(serial_wall, 4),
        "evaluations": serial_design.evaluations,
        "speedup": round(base_wall / serial_wall, 3),
    })
    print(f"  recost serial: {serial_wall:.3f}s "
          f"(speedup {base_wall / serial_wall:.2f}x)", file=sys.stderr)

    for workers in WORKER_COUNTS:
        with EvaluationEngine(workers=workers, pool="thread") as engine:
            seconds, design = best_of(problem, cache, grid, engine,
                                      repetitions)
        identical &= design_signature(design) == design_signature(base_design)
        entries.append({
            "name": "exhaustive-grid", "mode": "recost", "grid": grid,
            "workers": workers, "wall_seconds": round(seconds, 4),
            "evaluations": design.evaluations,
            "speedup": round(base_wall / seconds, 3),
        })
        print(f"  recost workers={workers}: {seconds:.3f}s "
              f"(speedup {base_wall / seconds:.2f}x)", file=sys.stderr)
    return entries, identical


# -- driver ------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fewer allocations and a smaller grid "
                             "(CI-sized; minutes become seconds)")
    parser.add_argument("--output", default=str(RESULT_PATH),
                        help=f"result path (default {RESULT_PATH})")
    args = parser.parse_args(argv)

    baseline = read_baseline()
    shares = CALIBRATION_SHARES_SMOKE if args.smoke else CALIBRATION_SHARES
    grid = GRID_SMOKE if args.smoke else GRID
    repetitions = 2 if args.smoke else REPETITIONS

    cal_entries, cal_identical = bench_calibration(shares, repetitions)
    design_entries, design_identical = bench_design(grid, repetitions,
                                                    args.smoke)

    fast = cal_entries[0]
    scalar = cal_entries[1]
    four = [e for e in design_entries
            if e["mode"] == "recost" and e["workers"] == 4][0]
    serial = [e for e in design_entries
              if e["mode"] == "recost" and e["workers"] is None][0]
    payload = {
        "suite": "hotpath",
        "smoke": bool(args.smoke),
        "host_cpus": os.cpu_count() or 1,
        "baseline": baseline,
        "entries": cal_entries + design_entries,
        "identity": {
            "calibration_identical": bool(cal_identical),
            "design_identical": bool(design_identical),
        },
        "summary": {
            "calibration_speedup": round(
                scalar["wall_seconds"] / fast["wall_seconds"], 3),
            "calibration_speedup_vs_baseline": round(
                baseline["seconds_per_calibration"]
                / fast["seconds_per_calibration"], 3),
            "recost_speedup": serial["speedup"],
            "grid_speedup_4_workers": four["speedup"],
        },
    }
    output = pathlib.Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {len(payload['entries'])} entries to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
