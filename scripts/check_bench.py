#!/usr/bin/env python
"""Validate every ``BENCH_*.json`` result file and gate on regressions.

Two jobs, both CI-facing:

1. **Schema**: each file must carry the payload its benchmark script
   writes. ``suite: "parallel-speedup"`` files
   (``scripts/bench_speedup.py``) are checked entry by entry — name /
   grid / workers / wall_seconds / evaluations / speedup, exactly one
   serial baseline per benchmark, identical evaluation counts across
   worker counts (the determinism contract, as recorded data).
   ``suite: "surrogate"`` files (``scripts/bench_surrogate.py``) must
   carry one ``dense-grid`` and one ``surrogate`` entry plus a
   ``summary`` whose ratios match the entries. ``suite: "fleet"``
   files (``scripts/bench_fleet.py``) must carry one ``round-robin``
   and one ``fleet`` entry, a monotonically non-increasing cost
   trajectory, and a ``summary`` consistent with the entries.
   ``suite: "drift"`` files (``scripts/bench_drift.py``) must carry
   one ``open-loop``, one ``closed-loop``, and one ``oracle`` entry,
   a monotone degradation trajectory, and a ``summary`` consistent
   with the entries. ``suite: "serve"`` files
   (``scripts/bench_serve.py``) must carry one ``rated`` and one
   ``overload`` entry whose counts conserve
   (answered + degraded + rejected = requests), record zero untyped
   errors and zero deadline violations, shed under the overload burst,
   and report a bit-identical kill/resume probe. ``suite: "hotpath"``
   files (``scripts/bench_hotpath.py``) must carry fast and scalar
   calibration rows, a full-planning design baseline plus recost rows
   at 1/2/4 workers with equal evaluation counts, a ``baseline`` block
   matching the committed ``BENCH_surrogate.json`` dense-grid run, and
   a ``summary`` re-derivable from the entries; both identity flags
   (fast-vs-scalar calibration, recost-vs-full-planning design) are
   hard requirements. ``suite: "codesign"`` files
   (``scripts/bench_codesign.py``) must carry one ``allocation-only``
   and one ``codesign`` entry, a monotonically non-increasing
   half-step trajectory, per-VM page spending within the storage
   budget, and a ``summary`` consistent with the entries.
   Any ``BENCH_*.json`` under
   ``benchmarks/results/`` with an unregistered suite fails the run
   outright — even when explicit paths were given — and every
   registered suite must name the CI workflow job that regenerates
   its committed result file; the job must exist in the named
   workflow (an orphan benchmark nobody re-runs is a silent gap in
   coverage).
2. **Regression gates**: the parallel suite's exhaustive benchmark must
   reach ``--min-speedup`` at 4 workers; the surrogate suite must avoid
   ``--min-calibration-ratio`` times the dense calibrations *and* match
   or beat the dense answer's cost (``cost_margin >= 0``); the fleet
   suite must beat round-robin placement (``improvement > 0``, always)
   and recover at least ``--min-reassignment-gain`` of its initial
   cost through the reroute loop; the drift suite's closed loop must
   beat the open loop (``closed_loop_gain > 0``, always, with at least
   one alarm and one refit) and land within ``--max-reconvergence-gap``
   of the full-knowledge oracle; the serve suite's rated session must
   stay under ``--max-serve-p99`` latency, ``--max-shed-rate``, and
   ``--max-degraded-fraction`` (its liveness, typed-outcome, and
   resume-identical requirements are hard checks, not gates); the
   hotpath suite's single-threaded calibration rate must beat the
   committed surrogate dense-grid baseline by
   ``--min-calibration-speedup``, and on hosts recording at least
   4 CPUs its 4-worker grid search must beat the full-planning serial
   baseline by ``--min-grid-speedup`` (identity flags and
   fast-not-slower-than-scalar are hard checks); the codesign suite
   must beat the best allocation-only design (``improvement > 0``,
   always) by at least ``--min-codesign-improvement``, with its
   monotone trajectory and bit-identical kill/resume probe as hard
   checks.

Every violation across every file is collected and reported — the run
never stops at the first problem. Exit code 0 when everything holds,
1 with the full diagnostic list otherwise.

Run with ``python scripts/check_bench.py [PATH ...]``; with no paths it
validates every ``benchmarks/results/BENCH_*.json`` in the repository.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"
WORKFLOWS_DIR = REPO_ROOT / ".github" / "workflows"

#: The parallel-suite benchmark the speedup gate applies to (its batched
#: strategy is where PR 4 claims its win); other entries are
#: schema-checked only, since e.g. greedy's tiny frontiers need a
#: multi-core host to beat per-call dispatch.
GATED_BENCHMARK = "exhaustive-fig5-grid"
GATED_WORKERS = 4

PARALLEL_ENTRY_FIELDS = {
    "name": str,
    "grid": int,
    "workers": (int, type(None)),
    "wall_seconds": (int, float),
    "evaluations": int,
    "speedup": (int, float),
}

#: Fields every surrogate-suite entry carries; the ``surrogate`` entry
#: adds fit/polish bookkeeping on top (checked separately).
SURROGATE_ENTRY_FIELDS = {
    "name": str,
    "calibrations": int,
    "cost": (int, float),
    "evaluations": int,
    "allocation": dict,
    "wall_seconds": (int, float),
}
SURROGATE_EXTRA_FIELDS = {
    "predicted_cost": (int, float),
    "knots": int,
    "fit_refinements": int,
    "polish_rounds": int,
    "converged": bool,
}


def _typename(kinds) -> str:
    if isinstance(kinds, tuple):
        return "/".join(k.__name__ for k in kinds)
    return kinds.__name__


def check_fields(prefix: str, entry: dict, fields: dict) -> list:
    """Type-check *fields* of *entry*; one problem string per violation."""
    problems = []
    for field, kinds in fields.items():
        want_bool = kinds is bool or (isinstance(kinds, tuple)
                                      and bool in kinds)
        if field not in entry:
            problems.append(f"{prefix} missing field {field!r}")
        elif not isinstance(entry[field], kinds) or (
                isinstance(entry[field], bool) and not want_bool):
            problems.append(
                f"{prefix}.{field} has type "
                f"{type(entry[field]).__name__}, "
                f"expected {_typename(kinds)}")
    return problems


# -- suite: parallel-speedup -------------------------------------------------

def check_parallel_entry(i: int, entry) -> list:
    if not isinstance(entry, dict):
        return [f"entries[{i}] is not an object"]
    prefix = f"entries[{i}]"
    problems = check_fields(prefix, entry, PARALLEL_ENTRY_FIELDS)
    extra = set(entry) - set(PARALLEL_ENTRY_FIELDS)
    if extra:
        problems.append(f"{prefix} has unknown fields {sorted(extra)}")
    if problems:
        return problems
    if entry["wall_seconds"] <= 0:
        problems.append(f"{prefix}.wall_seconds must be positive")
    if entry["evaluations"] <= 0:
        problems.append(f"{prefix}.evaluations must be positive")
    if entry["speedup"] <= 0:
        problems.append(f"{prefix}.speedup must be positive")
    if entry["workers"] is not None and entry["workers"] < 1:
        problems.append(f"{prefix}.workers must be >= 1 or null")
    if entry["workers"] is None and entry["speedup"] != 1.0:
        problems.append(
            f"{prefix} is a serial baseline but speedup is "
            f"{entry['speedup']}, not 1.0")
    return problems


def check_parallel(payload: dict, min_speedup: float) -> list:
    entries = payload["entries"]
    problems = []
    for i, entry in enumerate(entries):
        problems.extend(check_parallel_entry(i, entry))
    if problems:
        return problems

    by_name = {}
    for entry in entries:
        by_name.setdefault(entry["name"], []).append(entry)
    for name, rows in sorted(by_name.items()):
        baselines = [r for r in rows if r["workers"] is None]
        if len(baselines) != 1:
            problems.append(
                f"benchmark {name!r} needs exactly one serial baseline "
                f"row, found {len(baselines)}")
            continue
        expected = baselines[0]["evaluations"]
        for row in rows:
            if row["evaluations"] != expected:
                problems.append(
                    f"benchmark {name!r} at workers={row['workers']} spent "
                    f"{row['evaluations']} evaluations, the serial baseline "
                    f"spent {expected} — parallel determinism regressed")

    gated = [r for r in by_name.get(GATED_BENCHMARK, [])
             if r["workers"] == GATED_WORKERS]
    if not gated:
        problems.append(f"no workers={GATED_WORKERS} row for the gated "
                        f"benchmark {GATED_BENCHMARK!r}")
    elif gated[0]["speedup"] < min_speedup:
        problems.append(
            f"{GATED_BENCHMARK} at {GATED_WORKERS} workers reached only "
            f"{gated[0]['speedup']}x, below the {min_speedup}x gate — the "
            f"parallel engine regressed")
    return problems


def summarize_parallel(payload: dict) -> str:
    entries = payload["entries"]
    names = {entry["name"] for entry in entries}
    gated = [r for r in entries if r["name"] == GATED_BENCHMARK
             and r["workers"] == GATED_WORKERS]
    return (f"{len(entries)} entries across {len(names)} benchmark(s); "
            f"{GATED_BENCHMARK} at {GATED_WORKERS} workers = "
            f"{gated[0]['speedup']}x")


# -- suite: surrogate --------------------------------------------------------

def check_surrogate(payload: dict, min_ratio: float) -> list:
    problems = []
    for field in ("scenario", "algorithm", "grid", "fine_factor",
                  "tolerance", "budget", "summary"):
        if field not in payload:
            problems.append(f"top level missing field {field!r}")
    entries = payload["entries"]
    by_name = {}
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            problems.append(f"entries[{i}] is not an object")
            continue
        prefix = f"entries[{i}]"
        fields = dict(SURROGATE_ENTRY_FIELDS)
        if entry.get("name") == "surrogate":
            fields.update(SURROGATE_EXTRA_FIELDS)
        problems.extend(check_fields(prefix, entry, fields))
        extra = set(entry) - set(fields)
        if extra:
            problems.append(f"{prefix} has unknown fields {sorted(extra)}")
        if isinstance(entry.get("name"), str):
            by_name.setdefault(entry["name"], []).append((i, entry))
        for field in ("calibrations", "cost", "evaluations",
                      "wall_seconds"):
            value = entry.get(field)
            if isinstance(value, (int, float)) and not isinstance(
                    value, bool) and value <= 0:
                problems.append(f"{prefix}.{field} must be positive")
    for name in ("dense-grid", "surrogate"):
        if len(by_name.get(name, [])) != 1:
            problems.append(
                f"suite needs exactly one {name!r} entry, found "
                f"{len(by_name.get(name, []))}")
    if problems:
        return problems

    dense = by_name["dense-grid"][0][1]
    surrogate = by_name["surrogate"][0][1]
    summary = payload["summary"]
    if not isinstance(summary, dict):
        return ["summary is not an object"]
    problems.extend(check_fields("summary", summary, {
        "calibration_ratio": (int, float),
        "calibrations_avoided": int,
        "cost_margin": (int, float),
    }))
    if problems:
        return problems

    ratio = dense["calibrations"] / surrogate["calibrations"]
    if abs(summary["calibration_ratio"] - ratio) > 1e-3:
        problems.append(
            f"summary.calibration_ratio is {summary['calibration_ratio']} "
            f"but the entries give {ratio:.4f}")
    margin = dense["cost"] - surrogate["cost"]
    if abs(summary["cost_margin"] - margin) > 1e-6:
        problems.append(
            f"summary.cost_margin is {summary['cost_margin']} but the "
            f"entries give {margin:.9f}")
    if ratio < min_ratio:
        problems.append(
            f"surrogate spent {surrogate['calibrations']} calibration "
            f"requests vs {dense['calibrations']} dense — only "
            f"{ratio:.2f}x avoided, below the {min_ratio}x gate")
    if margin < -1e-9:
        problems.append(
            f"surrogate answer costs {surrogate['cost']:.6f}, worse than "
            f"the dense-grid best {dense['cost']:.6f} — search quality "
            f"regressed")
    return problems


def summarize_surrogate(payload: dict) -> str:
    summary = payload["summary"]
    return (f"calibration ratio {summary['calibration_ratio']}x, "
            f"cost margin {summary['cost_margin']:+.6f}")


# -- suite: fleet ------------------------------------------------------------

FLEET_BASE_FIELDS = {
    "name": str,
    "cost": (int, float),
    "hosts": int,
    "workloads": int,
    "wall_seconds": (int, float),
}
FLEET_EXTRA_FIELDS = {
    "initial_cost": (int, float),
    "rounds": int,
    "moves": int,
    "clusters": int,
    "converged": bool,
    "trajectory": list,
}


def check_fleet(payload: dict, min_gain: float) -> list:
    problems = []
    for field in ("scenario", "algorithm", "max_rounds", "summary"):
        if field not in payload:
            problems.append(f"top level missing field {field!r}")
    by_name = {}
    for i, entry in enumerate(payload["entries"]):
        if not isinstance(entry, dict):
            problems.append(f"entries[{i}] is not an object")
            continue
        prefix = f"entries[{i}]"
        fields = dict(FLEET_BASE_FIELDS)
        if entry.get("name") == "fleet":
            fields.update(FLEET_EXTRA_FIELDS)
        problems.extend(check_fields(prefix, entry, fields))
        extra = set(entry) - set(fields)
        if extra:
            problems.append(f"{prefix} has unknown fields {sorted(extra)}")
        if isinstance(entry.get("name"), str):
            by_name.setdefault(entry["name"], []).append(entry)
        for field in ("cost", "wall_seconds", "hosts", "workloads"):
            value = entry.get(field)
            if isinstance(value, (int, float)) and not isinstance(
                    value, bool) and value <= 0:
                problems.append(f"{prefix}.{field} must be positive")
    for name in ("round-robin", "fleet"):
        if len(by_name.get(name, [])) != 1:
            problems.append(
                f"suite needs exactly one {name!r} entry, found "
                f"{len(by_name.get(name, []))}")
    if problems:
        return problems

    rr = by_name["round-robin"][0]
    fleet = by_name["fleet"][0]
    summary = payload["summary"]
    if not isinstance(summary, dict):
        return ["summary is not an object"]
    problems.extend(check_fields("summary", summary, {
        "improvement": (int, float),
        "reassignment_gain": (int, float),
        "monotone": bool,
    }))
    if problems:
        return problems

    trajectory = fleet["trajectory"]
    if len(trajectory) < 2:
        problems.append("fleet trajectory needs at least 2 points "
                        "(initial placement + one round)")
        return problems
    if any(not isinstance(v, (int, float)) or isinstance(v, bool)
           for v in trajectory):
        problems.append("fleet trajectory must be numeric")
        return problems
    for a, b in zip(trajectory, trajectory[1:]):
        if b > a + 1e-9:
            problems.append(
                f"fleet trajectory increased ({a:.6f} -> {b:.6f}) — the "
                f"reroute loop accepted a worsening move")
            break
    if abs(trajectory[0] - fleet["initial_cost"]) > 1e-6:
        problems.append(
            f"fleet.initial_cost is {fleet['initial_cost']} but the "
            f"trajectory starts at {trajectory[0]}")
    if abs(trajectory[-1] - fleet["cost"]) > 1e-6:
        problems.append(
            f"fleet.cost is {fleet['cost']} but the trajectory ends at "
            f"{trajectory[-1]}")
    improvement = 1.0 - fleet["cost"] / rr["cost"]
    if abs(summary["improvement"] - improvement) > 1e-4:
        problems.append(
            f"summary.improvement is {summary['improvement']} but the "
            f"entries give {improvement:.6f}")
    gain = 1.0 - fleet["cost"] / fleet["initial_cost"]
    if abs(summary["reassignment_gain"] - gain) > 1e-4:
        problems.append(
            f"summary.reassignment_gain is "
            f"{summary['reassignment_gain']} but the entries give "
            f"{gain:.6f}")
    if not summary["monotone"]:
        problems.append("summary.monotone is false — the recorded run "
                        "violated the convergence contract")
    # Beating round-robin is a hard check, not a tunable gate: a fleet
    # placer that loses to cyclic dealing has no reason to exist.
    if improvement <= 0:
        problems.append(
            f"fleet placement costs {fleet['cost']:.4f}, not better than "
            f"round-robin's {rr['cost']:.4f} — placement quality "
            f"regressed")
    if gain < min_gain:
        problems.append(
            f"reassignment recovered only {gain:.1%} of the initial "
            f"cost, below the {min_gain:.1%} gate — the reroute loop "
            f"regressed")
    return problems


def summarize_fleet(payload: dict) -> str:
    summary = payload["summary"]
    fleet = [e for e in payload["entries"] if e["name"] == "fleet"][0]
    return (f"{summary['improvement']:.1%} vs round-robin, "
            f"{summary['reassignment_gain']:.1%} from reassignment in "
            f"{fleet['rounds']} round(s)")


# -- suite: drift ------------------------------------------------------------

DRIFT_BASE_FIELDS = {
    "name": str,
    "cost": (int, float),
    "allocation": dict,
    "wall_seconds": (int, float),
}
DRIFT_CLOSED_FIELDS = {
    "drift_events": int,
    "recalibrations": int,
    "redesigns": int,
    "budget_spent": int,
    "budget_remaining": int,
    "trajectory": list,
}
DRIFT_ORACLE_FIELDS = {
    "winner": str,
    "candidate_costs": dict,
    "calibrations": int,
}


def check_drift(payload: dict, max_gap: float) -> list:
    problems = []
    for field in ("scenario", "plan", "epochs", "final_capacity",
                  "drift_threshold", "recal_budget", "surrogate_budget",
                  "algorithm", "grid", "fine_factor", "summary"):
        if field not in payload:
            problems.append(f"top level missing field {field!r}")
    by_name = {}
    for i, entry in enumerate(payload["entries"]):
        if not isinstance(entry, dict):
            problems.append(f"entries[{i}] is not an object")
            continue
        prefix = f"entries[{i}]"
        fields = dict(DRIFT_BASE_FIELDS)
        if entry.get("name") == "open-loop":
            fields["calibrations"] = int
        elif entry.get("name") == "closed-loop":
            fields.update(DRIFT_CLOSED_FIELDS)
        elif entry.get("name") == "oracle":
            fields.update(DRIFT_ORACLE_FIELDS)
        problems.extend(check_fields(prefix, entry, fields))
        extra = set(entry) - set(fields)
        if extra:
            problems.append(f"{prefix} has unknown fields {sorted(extra)}")
        if isinstance(entry.get("name"), str):
            by_name.setdefault(entry["name"], []).append(entry)
        for field in ("cost", "wall_seconds"):
            value = entry.get(field)
            if isinstance(value, (int, float)) and not isinstance(
                    value, bool) and value <= 0:
                problems.append(f"{prefix}.{field} must be positive")
    for name in ("open-loop", "closed-loop", "oracle"):
        if len(by_name.get(name, [])) != 1:
            problems.append(
                f"suite needs exactly one {name!r} entry, found "
                f"{len(by_name.get(name, []))}")
    if problems:
        return problems

    open_loop = by_name["open-loop"][0]
    closed = by_name["closed-loop"][0]
    oracle = by_name["oracle"][0]
    summary = payload["summary"]
    if not isinstance(summary, dict):
        return ["summary is not an object"]
    problems.extend(check_fields("summary", summary, {
        "closed_loop_gain": (int, float),
        "reconvergence_gap": (int, float),
        "drift_events": int,
        "recalibrations": int,
        "budget_spent": int,
    }))
    if problems:
        return problems

    trajectory = closed["trajectory"]
    if len(trajectory) != payload["epochs"]:
        problems.append(
            f"closed-loop trajectory has {len(trajectory)} point(s) for "
            f"{payload['epochs']} epoch(s)")
        return problems
    capacities = [point.get("capacity") for point in trajectory]
    if any(not isinstance(v, (int, float)) or isinstance(v, bool)
           for v in capacities):
        problems.append("closed-loop trajectory capacities must be numeric")
        return problems
    for a, b in zip(capacities, capacities[1:]):
        if b > a + 1e-9:
            problems.append(
                f"closed-loop capacity increased ({a:.4f} -> {b:.4f}) — "
                f"the degradation trajectory is not monotone")
            break
    if capacities[-1] >= 1.0:
        problems.append("the host never degraded (final capacity "
                        f"{capacities[-1]}) — the plan injected nothing")
    gain = 1.0 - closed["cost"] / open_loop["cost"]
    if abs(summary["closed_loop_gain"] - gain) > 1e-4:
        problems.append(
            f"summary.closed_loop_gain is {summary['closed_loop_gain']} "
            f"but the entries give {gain:.6f}")
    gap = closed["cost"] / oracle["cost"] - 1.0
    if abs(summary["reconvergence_gap"] - gap) > 1e-4:
        problems.append(
            f"summary.reconvergence_gap is {summary['reconvergence_gap']} "
            f"but the entries give {gap:.6f}")
    if summary["drift_events"] != closed["drift_events"]:
        problems.append(
            f"summary.drift_events is {summary['drift_events']} but the "
            f"closed-loop entry saw {closed['drift_events']}")
    if closed["drift_events"] < 1:
        problems.append("the monitor never alarmed under a degrading "
                        "host — detection regressed")
    if closed["recalibrations"] < 1:
        problems.append("no knot was recalibrated after detection — "
                        "repair regressed")
    spent = closed["budget_spent"] + closed["budget_remaining"]
    if spent != payload["recal_budget"]:
        problems.append(
            f"closed-loop spent+remaining is {spent}, not the declared "
            f"recal_budget {payload['recal_budget']}")
    # Beating the open loop is a hard check, not a tunable gate: a
    # closed loop that loses to never-recalibrating has no reason to
    # exist.
    if gain <= 0:
        problems.append(
            f"closed loop measured {closed['cost']:.6f}s, not better "
            f"than the open loop's {open_loop['cost']:.6f}s — the "
            f"repair loop regressed")
    if gap < -1e-9:
        problems.append(
            f"closed loop beat the full-knowledge oracle by {-gap:.2%} — "
            f"the oracle is no longer a bound; fix the benchmark")
    elif gap > max_gap:
        problems.append(
            f"closed loop is {gap:.1%} above the oracle, beyond the "
            f"{max_gap:.1%} gate — re-convergence regressed")
    return problems


def summarize_drift(payload: dict) -> str:
    summary = payload["summary"]
    return (f"closed-loop gain {summary['closed_loop_gain']:+.1%} vs "
            f"open loop, {summary['reconvergence_gap']:+.1%} to oracle, "
            f"{summary['drift_events']} alarm(s), "
            f"{summary['recalibrations']} refit(s)")


# -- suite: serve ------------------------------------------------------------

SERVE_ENTRY_FIELDS = {
    "name": str,
    "requests": int,
    "rate": (int, float),
    "answered": int,
    "degraded": int,
    "rejected": int,
    "shed": int,
    "shed_rate": (int, float),
    "degraded_fraction": (int, float),
    "p50_seconds": (int, float),
    "p99_seconds": (int, float),
    "deadline_violations": int,
    "untyped_errors": int,
    "design_commits": int,
    "breaker_trips": int,
    "wall_seconds": (int, float),
}


def check_serve(payload: dict, max_p99: float, max_shed: float,
                max_degraded: float) -> list:
    problems = []
    for field in ("scenario", "plan", "trace_seed", "requests",
                  "algorithm", "grid", "surrogate_budget", "summary"):
        if field not in payload:
            problems.append(f"top level missing field {field!r}")
    by_name = {}
    for i, entry in enumerate(payload["entries"]):
        if not isinstance(entry, dict):
            problems.append(f"entries[{i}] is not an object")
            continue
        prefix = f"entries[{i}]"
        problems.extend(check_fields(prefix, entry, SERVE_ENTRY_FIELDS))
        extra = set(entry) - set(SERVE_ENTRY_FIELDS)
        if extra:
            problems.append(f"{prefix} has unknown fields {sorted(extra)}")
        if isinstance(entry.get("name"), str):
            by_name.setdefault(entry["name"], []).append(entry)
    for name in ("rated", "overload"):
        if len(by_name.get(name, [])) != 1:
            problems.append(
                f"suite needs exactly one {name!r} entry, found "
                f"{len(by_name.get(name, []))}")
    if problems:
        return problems

    for name in ("rated", "overload"):
        entry = by_name[name][0]
        prefix = f"entry {name!r}"
        served = entry["answered"] + entry["degraded"]
        # The liveness contract, as recorded data: every request got a
        # typed outcome, nothing was silently dropped, nothing blew its
        # deadline, and something was actually served.
        if served + entry["rejected"] != entry["requests"]:
            problems.append(
                f"{prefix}: answered+degraded+rejected = "
                f"{served + entry['rejected']}, not the {entry['requests']} "
                f"requests offered — responses were dropped or "
                f"double-counted")
        if entry["untyped_errors"] != 0:
            problems.append(
                f"{prefix}: {entry['untyped_errors']} rejection(s) without "
                f"a typed error/reason — the typed-outcome contract "
                f"regressed")
        if entry["deadline_violations"] != 0:
            problems.append(
                f"{prefix}: {entry['deadline_violations']} response(s) "
                f"completed after their deadline — the deadline contract "
                f"regressed")
        if entry["answered"] < 1:
            problems.append(f"{prefix}: nothing was answered")
        if entry["shed"] > entry["rejected"]:
            problems.append(f"{prefix}: shed exceeds rejected")
        if entry["wall_seconds"] <= 0:
            problems.append(f"{prefix}.wall_seconds must be positive")
        if entry["p50_seconds"] > entry["p99_seconds"] + 1e-9:
            problems.append(f"{prefix}: p50 exceeds p99")
        for field, count in (("shed_rate", entry["shed"]),):
            expected = count / entry["requests"]
            if abs(entry[field] - expected) > 1e-4:
                problems.append(
                    f"{prefix}.{field} is {entry[field]} but the counts "
                    f"give {expected:.6f}")
        if served:
            expected = entry["degraded"] / served
            if abs(entry["degraded_fraction"] - expected) > 1e-4:
                problems.append(
                    f"{prefix}.degraded_fraction is "
                    f"{entry['degraded_fraction']} but the counts give "
                    f"{expected:.6f}")
    rated = by_name["rated"][0]
    overload = by_name["overload"][0]
    summary = payload["summary"]
    if not isinstance(summary, dict):
        return ["summary is not an object"]
    problems.extend(check_fields("summary", summary, {
        "p99_seconds": (int, float),
        "shed_rate": (int, float),
        "degraded_fraction": (int, float),
        "overload_shed_rate": (int, float),
        "resume_identical": bool,
        "resume_kill_after": int,
    }))
    if problems:
        return problems

    for key, value in (("p99_seconds", rated["p99_seconds"]),
                       ("shed_rate", rated["shed_rate"]),
                       ("degraded_fraction", rated["degraded_fraction"]),
                       ("overload_shed_rate", overload["shed_rate"])):
        if abs(summary[key] - value) > 1e-9:
            problems.append(
                f"summary.{key} is {summary[key]} but the entries give "
                f"{value}")
    # Hard checks: admission control must engage under the burst, and
    # the kill/resume probe must reproduce the uninterrupted session.
    if overload["shed_rate"] <= 0:
        problems.append(
            "the overload session shed nothing — admission control never "
            "engaged under a 10x burst")
    if not summary["resume_identical"]:
        problems.append(
            "the resumed session diverged from the uninterrupted one — "
            "crash recovery regressed")
    if summary["resume_kill_after"] < 1:
        problems.append("summary.resume_kill_after must be >= 1")
    # Tunable gates, all on the rated session.
    if rated["p99_seconds"] > max_p99:
        problems.append(
            f"rated p99 latency {rated['p99_seconds']:.3f}s is above the "
            f"{max_p99:.3f}s gate — serving latency regressed")
    if rated["shed_rate"] > max_shed:
        problems.append(
            f"rated shed rate {rated['shed_rate']:.1%} is above the "
            f"{max_shed:.1%} gate — the service sheds at its rated load")
    if rated["degraded_fraction"] > max_degraded:
        problems.append(
            f"rated degraded fraction {rated['degraded_fraction']:.1%} is "
            f"above the {max_degraded:.1%} gate — answer quality regressed")
    return problems


def summarize_serve(payload: dict) -> str:
    summary = payload["summary"]
    return (f"rated p99 {summary['p99_seconds'] * 1e3:.1f} ms, shed "
            f"{summary['shed_rate']:.1%} rated / "
            f"{summary['overload_shed_rate']:.1%} overloaded, resume "
            f"identical: {summary['resume_identical']}")


# -- suite: hotpath ----------------------------------------------------------

HOTPATH_CALIBRATION_FIELDS = {
    "name": str,
    "mode": str,
    "calibrations": int,
    "wall_seconds": (int, float),
    "seconds_per_calibration": (int, float),
}
HOTPATH_GRID_FIELDS = {
    "name": str,
    "mode": str,
    "grid": int,
    "workers": (int, type(None)),
    "wall_seconds": (int, float),
    "evaluations": int,
    "speedup": (int, float),
}
HOTPATH_BASELINE_FIELDS = {
    "source": str,
    "calibrations": int,
    "wall_seconds": (int, float),
    "seconds_per_calibration": (int, float),
}


def check_hotpath(payload: dict, min_calibration_speedup: float,
                  min_grid_speedup: float) -> list:
    problems = []
    for field in ("baseline", "identity", "summary"):
        if field not in payload or not isinstance(payload[field], dict):
            problems.append(f"top level missing object field {field!r}")
    if problems:
        return problems

    calibration = {}
    grid_rows = {}
    for i, entry in enumerate(payload["entries"]):
        if not isinstance(entry, dict):
            problems.append(f"entries[{i}] is not an object")
            continue
        prefix = f"entries[{i}]"
        name = entry.get("name")
        if name == "calibration":
            fields = HOTPATH_CALIBRATION_FIELDS
        elif name == "exhaustive-grid":
            fields = HOTPATH_GRID_FIELDS
        else:
            problems.append(f"{prefix} has unknown name {name!r}")
            continue
        row_problems = check_fields(prefix, entry, fields)
        extra = set(entry) - set(fields)
        if extra:
            row_problems.append(
                f"{prefix} has unknown fields {sorted(extra)}")
        problems.extend(row_problems)
        if row_problems:
            continue
        if entry["wall_seconds"] <= 0:
            problems.append(f"{prefix}.wall_seconds must be positive")
        if name == "calibration":
            if entry["calibrations"] <= 0:
                problems.append(f"{prefix}.calibrations must be positive")
            per = entry["wall_seconds"] / entry["calibrations"]
            if abs(entry["seconds_per_calibration"] - per) > 1e-3:
                problems.append(
                    f"{prefix}.seconds_per_calibration is "
                    f"{entry['seconds_per_calibration']} but "
                    f"wall/calibrations gives {per:.6f}")
            calibration.setdefault(entry["mode"], []).append(entry)
        else:
            if entry["evaluations"] <= 0:
                problems.append(f"{prefix}.evaluations must be positive")
            if entry["speedup"] <= 0:
                problems.append(f"{prefix}.speedup must be positive")
            grid_rows.setdefault((entry["mode"], entry["workers"]),
                                 []).append(entry)
    for mode in ("fast", "scalar"):
        if len(calibration.get(mode, [])) != 1:
            problems.append(
                f"suite needs exactly one {mode!r} calibration row, found "
                f"{len(calibration.get(mode, []))}")
    expected_rows = [("full-planning", None), ("recost", None),
                     ("recost", 1), ("recost", 2), ("recost", 4)]
    for key in expected_rows:
        if len(grid_rows.get(key, [])) != 1:
            problems.append(
                f"suite needs exactly one exhaustive-grid row for "
                f"(mode, workers) = {key!r}, found "
                f"{len(grid_rows.get(key, []))}")
    unexpected = set(grid_rows) - set(expected_rows)
    if unexpected:
        problems.append(
            f"unexpected exhaustive-grid rows {sorted(unexpected, key=str)}")
    if problems:
        return problems

    fast = calibration["fast"][0]
    scalar = calibration["scalar"][0]
    base = grid_rows[("full-planning", None)][0]
    if fast["calibrations"] != scalar["calibrations"]:
        problems.append(
            f"fast row calibrated {fast['calibrations']} allocation(s), "
            f"scalar calibrated {scalar['calibrations']} — not comparable")
    if base["speedup"] != 1.0:
        problems.append("the full-planning row is the baseline but its "
                        f"speedup is {base['speedup']}, not 1.0")
    for key in expected_rows[1:]:
        row = grid_rows[key][0]
        if row["evaluations"] != base["evaluations"]:
            problems.append(
                f"exhaustive-grid {key!r} spent {row['evaluations']} "
                f"evaluations, the full-planning baseline spent "
                f"{base['evaluations']} — search determinism regressed")
        if row["grid"] != base["grid"]:
            problems.append(f"exhaustive-grid {key!r} ran grid "
                            f"{row['grid']}, baseline ran {base['grid']}")
        ratio = base["wall_seconds"] / row["wall_seconds"]
        if abs(row["speedup"] - ratio) > 0.02 * ratio + 1e-3:
            problems.append(
                f"exhaustive-grid {key!r} records speedup "
                f"{row['speedup']} but the walls give {ratio:.3f}")

    baseline = payload["baseline"]
    problems.extend(check_fields("baseline", baseline,
                                 HOTPATH_BASELINE_FIELDS))
    identity = payload["identity"]
    problems.extend(check_fields("identity", identity, {
        "calibration_identical": bool,
        "design_identical": bool,
    }))
    summary = payload["summary"]
    problems.extend(check_fields("summary", summary, {
        "calibration_speedup": (int, float),
        "calibration_speedup_vs_baseline": (int, float),
        "recost_speedup": (int, float),
        "grid_speedup_4_workers": (int, float),
    }))
    if problems:
        return problems

    # The baseline block must be the committed surrogate dense-grid run,
    # not a number the benchmark made up.
    source = RESULTS_DIR / "BENCH_surrogate.json"
    if baseline["source"] != source.name:
        problems.append(f"baseline.source is {baseline['source']!r}, "
                        f"expected {source.name!r}")
    elif not source.exists():
        problems.append(f"baseline source {source.name} is not committed "
                        f"under {RESULTS_DIR.name}/")
    else:
        dense = [e for e in json.loads(source.read_text())["entries"]
                 if e.get("name") == "dense-grid"]
        if len(dense) != 1:
            problems.append(f"{source.name} carries {len(dense)} "
                            f"dense-grid entries, expected 1")
        else:
            for field in ("calibrations", "wall_seconds"):
                if baseline[field] != dense[0][field]:
                    problems.append(
                        f"baseline.{field} is {baseline[field]} but the "
                        f"committed {source.name} records "
                        f"{dense[0][field]}")
    per = baseline["wall_seconds"] / baseline["calibrations"]
    if abs(baseline["seconds_per_calibration"] - per) > 1e-3:
        problems.append(
            f"baseline.seconds_per_calibration is "
            f"{baseline['seconds_per_calibration']} but "
            f"wall/calibrations gives {per:.6f}")
    if problems:
        return problems

    checks = (
        ("calibration_speedup",
         scalar["wall_seconds"] / fast["wall_seconds"]),
        ("calibration_speedup_vs_baseline",
         baseline["seconds_per_calibration"]
         / fast["seconds_per_calibration"]),
        ("recost_speedup", grid_rows[("recost", None)][0]["speedup"]),
        ("grid_speedup_4_workers", grid_rows[("recost", 4)][0]["speedup"]),
    )
    for key, value in checks:
        if abs(summary[key] - value) > 0.02 * abs(value) + 1e-3:
            problems.append(
                f"summary.{key} is {summary[key]} but the entries give "
                f"{value:.3f}")

    # Hard checks: the fast paths must be bit-identical to their scalar
    # fallbacks, and never slower than them.
    if not identity["calibration_identical"]:
        problems.append(
            "fast-path calibration parameters diverged from the scalar "
            "fallback — vectorization identity regressed")
    if not identity["design_identical"]:
        problems.append(
            "recost design search diverged from full planning — the "
            "plan-shape cache replayed a wrong cost")
    if summary["calibration_speedup"] < 1.0:
        problems.append(
            f"the fast calibration path is {summary['calibration_speedup']}"
            f"x the scalar fallback — slower than the code it replaced")
    # Tunable gates.
    if summary["calibration_speedup_vs_baseline"] < min_calibration_speedup:
        problems.append(
            f"single-threaded calibration is only "
            f"{summary['calibration_speedup_vs_baseline']}x the committed "
            f"surrogate dense-grid rate, below the "
            f"{min_calibration_speedup}x gate — the hot-path work "
            f"regressed")
    if payload["host_cpus"] >= 4 and \
            summary["grid_speedup_4_workers"] < min_grid_speedup:
        problems.append(
            f"the 4-worker grid search is only "
            f"{summary['grid_speedup_4_workers']}x the full-planning "
            f"serial baseline, below the {min_grid_speedup}x gate on a "
            f"{payload['host_cpus']}-CPU host")
    return problems


def summarize_hotpath(payload: dict) -> str:
    summary = payload["summary"]
    return (f"calibration {summary['calibration_speedup_vs_baseline']}x vs "
            f"baseline ({summary['calibration_speedup']}x vs scalar), "
            f"recost {summary['recost_speedup']}x, 4-worker grid "
            f"{summary['grid_speedup_4_workers']}x, identity ok")


# -- suite: codesign ---------------------------------------------------------

CODESIGN_BASE_FIELDS = {
    "name": str,
    "cost": (int, float),
    "allocation": dict,
    "wall_seconds": (int, float),
}
CODESIGN_EXTRA_FIELDS = {
    "initial_cost": (int, float),
    "indexes": dict,
    "pages_used": dict,
    "storage_budget": int,
    "rounds": int,
    "converged": bool,
    "trajectory": list,
    "candidates_evaluated": int,
}


def check_codesign(payload: dict, min_improvement: float) -> list:
    problems = []
    for field in ("scenario", "algorithm", "grid", "storage_budget",
                  "max_rounds", "summary"):
        if field not in payload:
            problems.append(f"top level missing field {field!r}")
    by_name = {}
    for i, entry in enumerate(payload["entries"]):
        if not isinstance(entry, dict):
            problems.append(f"entries[{i}] is not an object")
            continue
        prefix = f"entries[{i}]"
        fields = dict(CODESIGN_BASE_FIELDS)
        if entry.get("name") == "codesign":
            fields.update(CODESIGN_EXTRA_FIELDS)
        problems.extend(check_fields(prefix, entry, fields))
        extra = set(entry) - set(fields)
        if extra:
            problems.append(f"{prefix} has unknown fields {sorted(extra)}")
        if isinstance(entry.get("name"), str):
            by_name.setdefault(entry["name"], []).append(entry)
        for field in ("cost", "wall_seconds"):
            value = entry.get(field)
            if isinstance(value, (int, float)) and not isinstance(
                    value, bool) and value <= 0:
                problems.append(f"{prefix}.{field} must be positive")
    for name in ("allocation-only", "codesign"):
        if len(by_name.get(name, [])) != 1:
            problems.append(
                f"suite needs exactly one {name!r} entry, found "
                f"{len(by_name.get(name, []))}")
    if problems:
        return problems

    alloc_only = by_name["allocation-only"][0]
    codesign = by_name["codesign"][0]
    summary = payload["summary"]
    if not isinstance(summary, dict):
        return ["summary is not an object"]
    problems.extend(check_fields("summary", summary, {
        "improvement": (int, float),
        "monotone": bool,
        "indexes_selected": int,
        "resume_identical": bool,
        "resume_kill_after": int,
    }))
    if problems:
        return problems

    trajectory = codesign["trajectory"]
    if len(trajectory) < 3:
        problems.append("codesign trajectory needs at least 3 points "
                        "(initial + one round's two half-steps)")
        return problems
    if any(not isinstance(v, (int, float)) or isinstance(v, bool)
           for v in trajectory):
        problems.append("codesign trajectory must be numeric")
        return problems
    # The monotone contract, as recorded data: every half-step either
    # improved the total or left it unchanged.
    for a, b in zip(trajectory, trajectory[1:]):
        if b > a + 1e-9:
            problems.append(
                f"codesign trajectory increased ({a:.6f} -> {b:.6f}) — a "
                f"half-step accepted a worsening design")
            break
    if abs(trajectory[0] - codesign["initial_cost"]) > 1e-6:
        problems.append(
            f"codesign.initial_cost is {codesign['initial_cost']} but the "
            f"trajectory starts at {trajectory[0]}")
    if abs(trajectory[-1] - codesign["cost"]) > 1e-6:
        problems.append(
            f"codesign.cost is {codesign['cost']} but the trajectory ends "
            f"at {trajectory[-1]}")
    n_indexes = sum(len(v) for v in codesign["indexes"].values())
    if summary["indexes_selected"] != n_indexes:
        problems.append(
            f"summary.indexes_selected is {summary['indexes_selected']} "
            f"but the codesign entry carries {n_indexes} index(es)")
    for name, pages in sorted(codesign["pages_used"].items()):
        if not isinstance(pages, int) or isinstance(pages, bool):
            problems.append(f"codesign.pages_used[{name!r}] must be an int")
            continue
        if pages > codesign["storage_budget"]:
            problems.append(
                f"codesign spent {pages} page(s) on {name!r}, over the "
                f"{codesign['storage_budget']}-page budget — the selection "
                f"loop overspent")
        chosen = codesign["indexes"].get(name, [])
        chosen_pages = sum(int(c.get("pages", 0)) for c in chosen)
        if chosen_pages != pages:
            problems.append(
                f"codesign.pages_used[{name!r}] is {pages} but its chosen "
                f"indexes sum to {chosen_pages}")
    improvement = 1.0 - codesign["cost"] / alloc_only["cost"]
    if abs(summary["improvement"] - improvement) > 1e-4:
        problems.append(
            f"summary.improvement is {summary['improvement']} but the "
            f"entries give {improvement:.6f}")
    if not summary["monotone"]:
        problems.append("summary.monotone is false — the recorded run "
                        "violated the monotone-trajectory contract")
    # Hard checks: beating the best allocation-only design is why the
    # codesign layer exists, and the kill/resume probe must reproduce
    # the uninterrupted run bit for bit.
    if improvement <= 0:
        problems.append(
            f"codesign costs {codesign['cost']:.6f}, not better than the "
            f"best allocation-only design's {alloc_only['cost']:.6f} — "
            f"joint tuning regressed")
    if not summary["resume_identical"]:
        problems.append(
            "the resumed co-tuning run diverged from the uninterrupted "
            "one — crash recovery regressed")
    if summary["resume_kill_after"] < 1:
        problems.append("summary.resume_kill_after must be >= 1")
    # Tunable gate on how much the second axis must earn.
    if improvement < min_improvement:
        problems.append(
            f"co-design is only {improvement:.1%} cheaper than "
            f"allocation-only, below the {min_improvement:.1%} gate — the "
            f"index-selection pass regressed")
    return problems


def summarize_codesign(payload: dict) -> str:
    summary = payload["summary"]
    codesign = [e for e in payload["entries"] if e["name"] == "codesign"][0]
    return (f"{summary['improvement']:.1%} vs allocation-only, "
            f"{summary['indexes_selected']} index(es) in "
            f"{codesign['rounds']} round(s), resume identical: "
            f"{summary['resume_identical']}")


# -- driver ------------------------------------------------------------------

#: suite -> (checker, summarizer, gate keys, regen job). Checkers are
#: called as ``checker(payload, *gates)`` with gate values in the
#: declared order. The regen job is ``(workflow file, job name)`` — the
#: CI job that regenerates the suite's committed result file; the audit
#: fails when the named job does not exist, so no benchmark can go
#: orphan (committed results nobody re-runs drift silently).
SUITES = {
    "parallel-speedup": (check_parallel, summarize_parallel,
                         ("min_speedup",), ("nightly.yml", "bench-full")),
    "surrogate": (check_surrogate, summarize_surrogate,
                  ("min_calibration_ratio",),
                  ("nightly.yml", "bench-full")),
    "fleet": (check_fleet, summarize_fleet, ("min_reassignment_gain",),
              ("nightly.yml", "bench-full")),
    "drift": (check_drift, summarize_drift, ("max_reconvergence_gap",),
              ("nightly.yml", "bench-full")),
    "serve": (check_serve, summarize_serve,
              ("max_serve_p99", "max_shed_rate", "max_degraded_fraction"),
              ("nightly.yml", "bench-full")),
    "hotpath": (check_hotpath, summarize_hotpath,
                ("min_calibration_speedup", "min_grid_speedup"),
                ("nightly.yml", "bench-full")),
    "codesign": (check_codesign, summarize_codesign,
                 ("min_codesign_improvement",),
                 ("nightly.yml", "bench-full")),
}


def workflow_jobs(filename: str):
    """Job names defined in ``.github/workflows/<filename>``, or None.

    A two-space-indented ``name:`` line inside the top-level ``jobs:``
    block is a job definition — that is all of YAML this audit needs.
    """
    path = WORKFLOWS_DIR / filename
    if not path.exists():
        return None
    jobs = []
    in_jobs = False
    for line in path.read_text().splitlines():
        if line.rstrip() == "jobs:":
            in_jobs = True
            continue
        if in_jobs:
            if line and not line.startswith(" ") and not line.startswith("#"):
                break
            match = re.match(r"^  ([A-Za-z0-9_-]+):\s*$", line)
            if match:
                jobs.append(match.group(1))
    return jobs


def audit_regen_jobs() -> list:
    """Every registered suite must name a real CI job that regenerates
    its committed result file — renaming or deleting the job without
    updating the registry fails the build immediately.
    """
    problems = []
    for suite, (_checker, _summarizer, _gates, regen) in sorted(
            SUITES.items()):
        workflow, job = regen
        jobs = workflow_jobs(workflow)
        if jobs is None:
            problems.append(
                f"suite {suite!r}: regen workflow {workflow!r} does not "
                f"exist under {WORKFLOWS_DIR.relative_to(REPO_ROOT)}/")
        elif job not in jobs:
            problems.append(
                f"suite {suite!r}: regen job {job!r} not found in "
                f"{workflow} (jobs: {jobs}) — the registry must name the "
                f"workflow job that regenerates the committed result")
    return problems


def audit_results_dir(checked) -> list:
    """Every ``BENCH_*.json`` under the results directory must carry a
    registered suite — even when the caller passed explicit paths. A
    benchmark that writes a result no suite validates is a silent gap
    in CI coverage, which is exactly what this script exists to close.
    """
    problems = []
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        if path.resolve() in checked:
            continue
        try:
            payload = json.loads(path.read_text())
            suite = payload.get("suite") if isinstance(payload, dict) \
                else None
        except json.JSONDecodeError:
            suite = None
        if suite not in SUITES:
            problems.append(
                f"{path.name}: carries unregistered suite {suite!r} — "
                f"every result file under {RESULTS_DIR.name}/ needs a "
                f"registered checker (known: {sorted(SUITES)})")
    return problems


def check_file(path: pathlib.Path, gates: dict) -> tuple:
    """Returns (problems, ok_summary_or_None) for one result file."""
    if not path.exists():
        return ([f"{path} does not exist (run the benchmark script)"], None)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        return ([f"{path} is not valid JSON: {error}"], None)
    if not isinstance(payload, dict):
        return (["top level must be an object"], None)
    problems = []
    for field in ("suite", "smoke", "host_cpus", "entries"):
        if field not in payload:
            problems.append(f"top level missing field {field!r}")
    if problems:
        return (problems, None)
    if not isinstance(payload["entries"], list) or not payload["entries"]:
        return (["entries must be a non-empty list"], None)
    suite = payload["suite"]
    if suite not in SUITES:
        return ([f"unknown suite {suite!r} (expected one of "
                 f"{sorted(SUITES)})"], None)
    checker, summarizer, gate_keys, _regen = SUITES[suite]
    problems = checker(payload, *(gates[key] for key in gate_keys))
    if problems:
        return (problems, None)
    return ([], f"suite {suite}: {summarizer(payload)}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="result files (default: every "
                             "benchmarks/results/BENCH_*.json)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="gate: minimum 4-worker speedup on the "
                             "exhaustive parallel benchmark (default 1.0)")
    parser.add_argument("--min-calibration-ratio", type=float, default=5.0,
                        help="gate: minimum dense-to-surrogate calibration "
                             "ratio (default 5.0)")
    parser.add_argument("--min-reassignment-gain", type=float, default=0.0,
                        help="gate: minimum fraction of initial fleet cost "
                             "the reassignment loop must recover "
                             "(default 0.0)")
    parser.add_argument("--max-reconvergence-gap", type=float, default=0.25,
                        help="gate: how far above the full-knowledge "
                             "oracle the drift suite's closed loop may "
                             "land (default 0.25)")
    parser.add_argument("--max-serve-p99", type=float, default=2.0,
                        help="gate: ceiling on the serve suite's rated "
                             "p99 latency, simulated seconds (default 2.0)")
    parser.add_argument("--max-shed-rate", type=float, default=0.05,
                        help="gate: ceiling on the serve suite's shed "
                             "rate at its rated load (default 0.05)")
    parser.add_argument("--max-degraded-fraction", type=float, default=0.10,
                        help="gate: ceiling on the serve suite's degraded "
                             "fraction at its rated load (default 0.10)")
    parser.add_argument("--min-calibration-speedup", type=float, default=1.0,
                        help="gate: minimum single-threaded calibration "
                             "speedup vs the committed surrogate "
                             "dense-grid baseline (default 1.0)")
    parser.add_argument("--min-grid-speedup", type=float, default=1.0,
                        help="gate: minimum 4-worker exhaustive-grid "
                             "speedup vs the full-planning serial "
                             "baseline; applies only when the recorded "
                             "host has >= 4 CPUs (default 1.0)")
    parser.add_argument("--min-codesign-improvement", type=float,
                        default=0.0,
                        help="gate: minimum fraction by which co-design "
                             "must beat the best allocation-only design "
                             "(beating it at all is a hard check; "
                             "default 0.0)")
    args = parser.parse_args(argv)

    if args.paths:
        paths = [pathlib.Path(p) for p in args.paths]
    else:
        paths = sorted(RESULTS_DIR.glob("BENCH_*.json"))
        if not paths:
            print(f"check_bench: FAIL: no BENCH_*.json files under "
                  f"{RESULTS_DIR}", file=sys.stderr)
            return 1

    gates = {"min_speedup": args.min_speedup,
             "min_calibration_ratio": args.min_calibration_ratio,
             "min_reassignment_gain": args.min_reassignment_gain,
             "max_reconvergence_gap": args.max_reconvergence_gap,
             "max_serve_p99": args.max_serve_p99,
             "max_shed_rate": args.max_shed_rate,
             "max_degraded_fraction": args.max_degraded_fraction,
             "min_calibration_speedup": args.min_calibration_speedup,
             "min_grid_speedup": args.min_grid_speedup,
             "min_codesign_improvement": args.min_codesign_improvement}
    all_problems = []
    for path in paths:
        problems, ok = check_file(path, gates)
        for problem in problems:
            all_problems.append(f"{path.name}: {problem}")
        if ok:
            print(f"check_bench: OK: {path.name}: {ok}")
    all_problems.extend(
        audit_results_dir({path.resolve() for path in paths}))
    all_problems.extend(audit_regen_jobs())
    if all_problems:
        for problem in all_problems:
            print(f"check_bench: {problem}", file=sys.stderr)
        print(f"check_bench: FAIL: {len(all_problems)} problem(s) across "
              f"{len(paths)} file(s)", file=sys.stderr)
        return 1
    print(f"check_bench: all {len(paths)} result file(s) pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
