#!/usr/bin/env python
"""Validate ``BENCH_parallel.json`` and gate on the parallel speedup.

Two jobs, both CI-facing:

1. **Schema**: the file is the object ``scripts/bench_speedup.py``
   writes — ``suite``/``smoke``/``host_cpus`` plus ``entries``, each
   entry carrying exactly ``name`` (str), ``grid`` (int), ``workers``
   (int or null for the serial baseline), ``wall_seconds`` (positive
   number), ``evaluations`` (positive int) and ``speedup`` (positive
   number). Every benchmark name must have a serial baseline row
   (``workers: null``, ``speedup: 1.0``) and its parallel rows must
   report the same evaluation count as the baseline — the determinism
   contract, as recorded data.
2. **Regression gate**: the exhaustive benchmark's 4-worker row must
   reach the threshold (default 1.0x, i.e. "parallel must never lose
   to serial"; the committed full-mode results are held to 1.5x by the
   repository's own run).

Exit code 0 when everything holds, 1 with a diagnostic otherwise.

Run with ``python scripts/check_bench.py [PATH] [--min-speedup X]``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_parallel.json"

#: The benchmark the speedup gate applies to (its batched strategy is
#: where the tentpole claims its win); other entries are schema-checked
#: only, since e.g. greedy's tiny frontiers need a multi-core host to
#: beat per-call dispatch.
GATED_BENCHMARK = "exhaustive-fig5-grid"
GATED_WORKERS = 4

ENTRY_FIELDS = {
    "name": str,
    "grid": int,
    "workers": (int, type(None)),
    "wall_seconds": (int, float),
    "evaluations": int,
    "speedup": (int, float),
}


def fail(message: str) -> int:
    print(f"check_bench: FAIL: {message}", file=sys.stderr)
    return 1


def check_entry(i: int, entry) -> list:
    problems = []
    if not isinstance(entry, dict):
        return [f"entries[{i}] is not an object"]
    for field, kinds in ENTRY_FIELDS.items():
        if field not in entry:
            problems.append(f"entries[{i}] missing field {field!r}")
        elif not isinstance(entry[field], kinds) or isinstance(
                entry[field], bool):
            problems.append(
                f"entries[{i}].{field} has type "
                f"{type(entry[field]).__name__}, expected {kinds}")
    extra = set(entry) - set(ENTRY_FIELDS)
    if extra:
        problems.append(f"entries[{i}] has unknown fields {sorted(extra)}")
    if problems:
        return problems
    if entry["wall_seconds"] <= 0:
        problems.append(f"entries[{i}].wall_seconds must be positive")
    if entry["evaluations"] <= 0:
        problems.append(f"entries[{i}].evaluations must be positive")
    if entry["speedup"] <= 0:
        problems.append(f"entries[{i}].speedup must be positive")
    if entry["workers"] is not None and entry["workers"] < 1:
        problems.append(f"entries[{i}].workers must be >= 1 or null")
    if entry["workers"] is None and entry["speedup"] != 1.0:
        problems.append(
            f"entries[{i}] is a serial baseline but speedup is "
            f"{entry['speedup']}, not 1.0")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default=str(DEFAULT_PATH),
                        help=f"result file (default {DEFAULT_PATH})")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="gate: minimum 4-worker speedup on the "
                             "exhaustive benchmark (default 1.0)")
    args = parser.parse_args(argv)

    path = pathlib.Path(args.path)
    if not path.exists():
        return fail(f"{path} does not exist (run scripts/bench_speedup.py)")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        return fail(f"{path} is not valid JSON: {error}")

    if not isinstance(payload, dict):
        return fail("top level must be an object")
    for field in ("suite", "smoke", "host_cpus", "entries"):
        if field not in payload:
            return fail(f"top level missing field {field!r}")
    entries = payload["entries"]
    if not isinstance(entries, list) or not entries:
        return fail("entries must be a non-empty list")

    problems = []
    for i, entry in enumerate(entries):
        problems.extend(check_entry(i, entry))
    if problems:
        for problem in problems:
            print(f"check_bench: {problem}", file=sys.stderr)
        return fail(f"{len(problems)} schema problem(s) in {path}")

    by_name = {}
    for entry in entries:
        by_name.setdefault(entry["name"], []).append(entry)
    for name, rows in sorted(by_name.items()):
        baselines = [r for r in rows if r["workers"] is None]
        if len(baselines) != 1:
            return fail(f"benchmark {name!r} needs exactly one serial "
                        f"baseline row, found {len(baselines)}")
        expected = baselines[0]["evaluations"]
        for row in rows:
            if row["evaluations"] != expected:
                return fail(
                    f"benchmark {name!r} at workers={row['workers']} spent "
                    f"{row['evaluations']} evaluations, the serial baseline "
                    f"spent {expected} — parallel determinism regressed")

    gated = [r for r in by_name.get(GATED_BENCHMARK, [])
             if r["workers"] == GATED_WORKERS]
    if not gated:
        return fail(f"no workers={GATED_WORKERS} row for the gated "
                    f"benchmark {GATED_BENCHMARK!r}")
    speedup = gated[0]["speedup"]
    if speedup < args.min_speedup:
        return fail(
            f"{GATED_BENCHMARK} at {GATED_WORKERS} workers reached only "
            f"{speedup}x, below the {args.min_speedup}x gate — the "
            f"parallel engine regressed")

    print(f"check_bench: OK: {len(entries)} entries across "
          f"{len(by_name)} benchmark(s); {GATED_BENCHMARK} at "
          f"{GATED_WORKERS} workers = {speedup}x "
          f"(gate {args.min_speedup}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
