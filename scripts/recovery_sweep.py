#!/usr/bin/env python
"""Ext: supervised design runs under operational-failure plans.

Sweeps fault plans from benign to hostile over the Figure-4-style
design problem, but — unlike ``chaos_sweep.py``, which stresses the
*measurement* pipeline — every run here goes through the full
crash-recoverable stack: a :class:`repro.recovery.RunSupervisor`
journaling every unit of work, and a post-deployment
:class:`repro.virt.health.HealthMonitor` watchdog absorbing VM
crashes, host degradation, and migration failures.

Records, per plan: whether the chosen design survived (identical to
the fault-free run), and the watchdog's recovery actions by type.
Then the acceptance demo: the hostile-plan run is killed after 4
units, resumed from its journal, and checked **bit-identical** —
same calibrated parameters, same design, same recovery actions —
to its uninterrupted twin.

Writes ``benchmarks/results/ext_recovery.txt`` (standard two-line
header, see EXPERIMENTS.md) and prints the table.

Run with ``PYTHONPATH=src python scripts/recovery_sweep.py``.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro.core.problem import (  # noqa: E402
    VirtualizationDesignProblem,
    WorkloadSpec,
)
from repro.faults import FaultPlan  # noqa: E402
from repro.recovery import RunJournal, RunSupervisor  # noqa: E402
from repro.util.tables import format_table  # noqa: E402
from repro.virt.machine import laboratory_machine  # noqa: E402
from repro.virt.resources import ResourceKind  # noqa: E402
from repro.workloads import build_tpch_database, tpch_query  # noqa: E402
from repro.workloads.workload import Workload  # noqa: E402

RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "ext_recovery.txt"
SCALE_FACTOR = 0.002
GRID = 4
WATCHDOG_PROBES = 8
KILL_AFTER_UNITS = 4

#: The sweep, mildest first. ``turbulent`` is the named operational
#: regime; ``hostile-ops`` piles every channel on at once.
PLANS = (
    FaultPlan(name="none"),
    FaultPlan(name="crashy", vm_crash_rate=0.25),
    FaultPlan.named("turbulent"),
    FaultPlan(name="hostile-ops", transient_rate=0.2, vm_crash_rate=0.3,
              host_degrade_rate=0.15, migration_failure_rate=0.4),
)

RECOVERY_ACTIONS = ("restart", "migrate", "evict", "readmit", "degrade")


def make_problem() -> VirtualizationDesignProblem:
    db = build_tpch_database(scale_factor=SCALE_FACTOR,
                             tables=["customer", "orders", "lineitem"])
    specs = [
        WorkloadSpec(Workload.repeat("q4", tpch_query("Q4"), 3), db),
        WorkloadSpec(Workload.repeat("q13", tpch_query("Q13"), 9), db),
    ]
    return VirtualizationDesignProblem(
        machine=laboratory_machine(), specs=specs,
        controlled_resources=(ResourceKind.CPU,),
    )


def run_supervised(plan, journal_path, max_units=None, resume=False):
    """One supervised run (or resume); returns (run, summary)."""
    obs.reset()
    supervisor = RunSupervisor(
        make_problem(), journal_path, plan=plan, algorithm="greedy",
        grid=GRID, watchdog_probes=WATCHDOG_PROBES, max_units=max_units)
    run = supervisor.run(resume=resume)
    report = obs.RunReport.capture(label=f"recovery/{plan.name}")
    return run, report.summary


def design_key(design):
    """The design as comparable plain data."""
    return {
        name: design.allocation.vector_for(name).as_tuple()
        for name in design.allocation.workload_names()
    }


def journal_fingerprint(path):
    """Every committed record, by kind — the bit-identity witness."""
    journal = RunJournal.open(path)
    return {
        kind: [r.data for r in journal.records_of(kind)]
        for kind in ("calibration", "evaluation", "result")
    }


def action_counts(run):
    counts = {name: 0 for name in RECOVERY_ACTIONS}
    for action in run.actions:
        counts[action.action] = counts.get(action.action, 0) + 1
    return counts


def main() -> int:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="recovery_sweep_"))
    results = []
    for plan in PLANS:
        run, summary = run_supervised(plan, workdir / f"{plan.name}.journal")
        assert run.completed
        results.append({"plan": plan, "run": run, "summary": summary,
                        "design": design_key(run.design)})
    baseline = results[0]

    rows = []
    for result in results:
        plan, run = result["plan"], result["run"]
        counts = action_counts(run)
        survived = result["design"] == baseline["design"]
        rows.append([
            plan.name,
            f"{plan.vm_crash_rate:.0%}",
            f"{plan.host_degrade_rate:.0%}",
            f"{plan.migration_failure_rate:.0%}",
            " ".join(f"{name}={shares[0]:.2f}"
                     for name, shares in sorted(result["design"].items())),
            "yes" if survived else "NO",
            *(f"{counts[name]:d}" for name in RECOVERY_ACTIONS),
        ])

    table = format_table(
        ["plan", "crash", "degrade", "mig-fail", "chosen CPU shares",
         "survived", *RECOVERY_ACTIONS],
        rows,
        title="Ext: supervised design runs under operational faults "
              f"(greedy, CPU controlled, grid {GRID}, "
              f"{WATCHDOG_PROBES} watchdog probes)",
    )

    # The kill/resume acceptance demo, on the most hostile plan.
    hostile = PLANS[-1]
    twin_path = workdir / "hostile-twin.journal"
    killed_path = workdir / "hostile-killed.journal"
    twin, _ = run_supervised(hostile, twin_path)
    killed, _ = run_supervised(hostile, killed_path,
                               max_units=KILL_AFTER_UNITS)
    assert not killed.completed
    resumed, _ = run_supervised(hostile, killed_path, resume=True)
    assert resumed.completed
    identical = journal_fingerprint(twin_path) == \
        journal_fingerprint(killed_path)
    footer = (
        f"Acceptance: the {hostile.name!r} run killed after "
        f"{KILL_AFTER_UNITS} of {twin.new_units} units and resumed "
        f"({resumed.replayed_units} replayed, {resumed.new_units} fresh) "
        f"is {'bit-identical' if identical else 'DIVERGENT'} to the "
        f"uninterrupted run — calibrations, evaluations, design, and "
        f"recovery actions all compare equal."
    )

    def across(key):
        return sum(r["summary"].get(key, 0) for r in results)

    recoveries = sum(sum(action_counts(r["run"]).values()) for r in results)
    counted = (
        f"# Counted work: calibration experiments="
        f"{across('calibration_experiments'):.0f} | cost-model evals="
        f"{across('cost_model_evaluations'):.0f} | faults "
        f"{across('faults_injected'):.0f}, retries {across('retries'):.0f} "
        f"| watchdog recoveries {recoveries} across "
        f"{len(PLANS)} plans x {WATCHDOG_PROBES} probes"
    )
    header = "\n".join([
        "# Regenerate with: PYTHONPATH=src python scripts/recovery_sweep.py",
        counted,
    ])
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(header + "\n\n" + table + "\n\n" + footer + "\n")

    print(table)
    print()
    print(footer)
    if not identical:
        print("FAIL: resumed run diverged from the uninterrupted run",
              file=sys.stderr)
        return 1
    if not all(row[5] == "yes" for row in rows):
        print("FAIL: a fault plan changed the chosen design",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
