#!/usr/bin/env python
"""Ext: the Figure 4 design run under escalating fault rates.

Sweeps the fault-injection plans from benign to hostile over the same
two-workload (Q4 + Q13) CPU-share design the Figure 4 benchmark uses,
and records (a) that the resilient calibration pipeline keeps producing
the *same* design, and (b) what surviving the environment cost in
retries, rejected trials, and fallbacks.

The headline claim: under 20% transient faults + 5% outliers the
calibrated parameters stay within 1% of the fault-free run (retries and
MAD rejection absorb everything), so the chosen allocation is
unchanged.

Writes ``benchmarks/results/ext_chaos.txt`` (standard two-line header,
see EXPERIMENTS.md) and prints the table.

Run with ``PYTHONPATH=src python scripts/chaos_sweep.py``.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro.calibration import CalibrationCache, CalibrationRunner  # noqa: E402
from repro.core.cost_model import OptimizerCostModel  # noqa: E402
from repro.core.designer import VirtualizationDesigner  # noqa: E402
from repro.core.problem import (  # noqa: E402
    VirtualizationDesignProblem,
    WorkloadSpec,
)
from repro.faults import FaultInjector, FaultPlan, RetryPolicy  # noqa: E402
from repro.util.tables import format_table  # noqa: E402
from repro.virt.machine import laboratory_machine  # noqa: E402
from repro.virt.resources import ResourceKind, ResourceVector  # noqa: E402
from repro.workloads import build_tpch_database, tpch_query  # noqa: E402
from repro.workloads.workload import Workload  # noqa: E402

RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "ext_chaos.txt"
SCALE_FACTOR = 0.002

#: The sweep, mildest first. The 20%/5% point is the acceptance regime.
PLANS = (
    FaultPlan(name="none"),
    FaultPlan(name="mild", transient_rate=0.05),
    FaultPlan(name="flaky", transient_rate=0.10, outlier_rate=0.02),
    FaultPlan(name="noisy", transient_rate=0.20, outlier_rate=0.05,
              outlier_magnitude=8.0),
    FaultPlan(name="harsh", transient_rate=0.30, outlier_rate=0.08,
              hang_rate=0.02, boot_failure_rate=0.05),
)

REFERENCE_ALLOCATION = ResourceVector.of(cpu=0.5, memory=0.5, io=0.5)


def run_design(plan):
    """One full design run under *plan*; returns the observed row data."""
    obs.reset()
    machine = laboratory_machine()
    db = build_tpch_database(scale_factor=SCALE_FACTOR,
                             tables=["customer", "orders", "lineitem"])
    # Asymmetric intensities (one Q13-heavy tenant) so the optimum is
    # away from equal shares and a poisoned calibration would move it.
    specs = [
        WorkloadSpec(Workload.repeat("q4", tpch_query("Q4"), 3), db),
        WorkloadSpec(Workload.repeat("q13", tpch_query("Q13"), 9), db),
    ]
    injector = None if plan.is_benign else FaultInjector(plan)
    runner = CalibrationRunner(machine, injector=injector,
                               retry_policy=RetryPolicy.resilient())
    cache = CalibrationCache(runner)
    problem = VirtualizationDesignProblem(
        machine=machine, specs=specs,
        controlled_resources=(ResourceKind.CPU,),
    )
    designer = VirtualizationDesigner(problem, OptimizerCostModel(cache))
    design = designer.design("greedy", grid=4)

    reference_params = cache.params_for(REFERENCE_ALLOCATION)
    report = obs.RunReport.capture(label=f"chaos/{plan.name}")
    return {
        "plan": plan,
        "cpu_shares": {name: design.allocation.vector_for(name).cpu
                       for name in design.allocation.workload_names()},
        "predicted_total": design.predicted_total_cost,
        "params": reference_params.as_dict(),
        "summary": report.summary,
        "fallbacks": len(cache.fallback_log),
    }


def max_param_deviation(params, baseline):
    """Largest relative parameter difference vs the fault-free run."""
    worst = 0.0
    for name, value in params.items():
        base = baseline[name]
        if base:
            worst = max(worst, abs(value - base) / abs(base))
    return worst


def main() -> int:
    results = [run_design(plan) for plan in PLANS]
    baseline = results[0]

    rows = []
    for result in results:
        plan = result["plan"]
        summary = result["summary"]
        deviation = max_param_deviation(result["params"], baseline["params"])
        rows.append([
            plan.name,
            f"{plan.transient_rate:.0%}",
            f"{plan.outlier_rate:.0%}",
            f"q4={result['cpu_shares']['q4']:.2f} "
            f"q13={result['cpu_shares']['q13']:.2f}",
            f"{result['predicted_total']:.3f}",
            f"{deviation:.2%}",
            f"{summary['faults_injected']:.0f}",
            f"{summary['retries']:.0f}",
            f"{summary['outliers_rejected']:.0f}",
            f"{result['fallbacks']:.0f}",
        ])

    table = format_table(
        ["plan", "transient", "outlier", "chosen CPU shares",
         "pred. total (s)", "max P dev.", "faults", "retries",
         "rejected", "fallbacks"],
        rows,
        title="Ext: Figure 4 design under escalating fault rates "
              "(greedy, CPU controlled, grid 4)",
    )

    noisy = next(r for r in results if r["plan"].name == "noisy")
    noisy_dev = max_param_deviation(noisy["params"], baseline["params"])
    same_design = all(
        r["cpu_shares"] == baseline["cpu_shares"] for r in results
    )
    footer = (
        f"Acceptance: at 20% transient + 5% outliers the calibrated "
        f"parameters deviate {noisy_dev:.2%} (< 1%) from fault-free and "
        f"the chosen design is "
        f"{'unchanged' if same_design else 'CHANGED'} across the sweep."
    )

    def across(key):
        return sum(r["summary"][key] for r in results)

    counted = (
        f"# Counted work: cost-model evals="
        f"{across('cost_model_evaluations'):.0f} "
        f"(memo {across('cost_model_memo_hits'):.0f}) | "
        f"calibration: {across('calibration_experiments'):.0f} "
        f"experiments, {across('calibration_exact_hits'):.0f} exact / "
        f"{across('calibration_interpolated'):.0f} interpolated "
        f"lookups | faults {across('faults_injected'):.0f}, "
        f"retries {across('retries'):.0f}, "
        f"rejected {across('outliers_rejected'):.0f}"
    )
    header = "\n".join([
        "# Regenerate with: PYTHONPATH=src python scripts/chaos_sweep.py",
        counted,
    ])
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(header + "\n\n" + table + "\n\n" + footer + "\n")

    print(table)
    print()
    print(footer)
    if noisy_dev >= 0.01:
        print("FAIL: noisy-plan parameter deviation exceeds 1%",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
