#!/usr/bin/env python
"""Benchmark E9: closed-loop drift repair vs an open-loop stale model.

The question the drift subsystem exists to answer: when the host
quietly degrades under a fitted cost model, does the closed loop
(detect → targeted recalibration → warm-started redesign,
``docs/drift.md``) actually recover the performance an open loop
loses? Three contenders share one degradation trajectory — the
``turbulent`` plan's host-degrade channel slowing the CPU over
``EPOCHS`` epochs — and are judged by *measured* workload seconds on
the final, most-degraded machine:

* **open-loop**: fit once on the healthy host, then trust the model
  forever — the paper's offline posture. Keeps the initial allocation
  and plans queries with the stale parameters.
* **closed-loop**: :class:`repro.drift.OnlineSupervisor` — same
  initial fit, then the online loop under a
  ``RECAL_BUDGET``-request repair budget.
* **oracle**: full knowledge of the final machine — a fresh fit with
  the full initial budget on the degraded host, scoring a from-scratch
  redesign *and* every other contender's allocation, keeping the best.
  The (unrealistically expensive) bound the closed loop tries to
  approach.

Writes ``benchmarks/results/BENCH_drift.json``: one entry per
contender plus a ``summary`` with ``closed_loop_gain``
(1 - closed/open measured cost; > 0 means the loop beat going stale)
and ``reconvergence_gap`` (closed/oracle - 1; >= 0, smaller is
better). ``scripts/check_bench.py`` validates the schema and gates on
``closed_loop_gain > 0`` and ``0 <= reconvergence_gap <=
--max-reconvergence-gap``.

Run with ``PYTHONPATH=src python scripts/bench_drift.py [--smoke]``;
``--smoke`` shrinks the TPC-H scale factor (the degradation
trajectory, budgets, and thresholds — the gated mechanics — are
scale-independent).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.calibration import CalibrationCache, CalibrationRunner  # noqa: E402
from repro.core import (  # noqa: E402
    MeasuredCostModel,
    VirtualizationDesignProblem,
    WorkloadSpec,
)
from repro.drift import DegradingWorld, OnlineSupervisor  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.surrogate import design_continuous  # noqa: E402
from repro.virt.machine import laboratory_machine  # noqa: E402
from repro.virt.resources import ResourceKind  # noqa: E402
from repro.workloads import Workload, build_tpch_database, tpch_query  # noqa: E402

RESULT_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_drift.json"

#: One configuration for all three contenders. The plan is the named
#: ``turbulent`` regime with its host-degrade channel turned up so the
#: CPU reliably loses ~30-50% of its capacity within the run.
GRID = 4
FINE_FACTOR = 8
EPOCHS = 8
DRIFT_THRESHOLD = 0.05
RECAL_BUDGET = 12
SURROGATE_BUDGET = 24
TOLERANCE = 0.05
ALGORITHM = "greedy"
PLAN = FaultPlan.named("turbulent").with_overrides(
    host_degrade_rate=0.35, host_degrade_factor=0.8)


def build_specs(scale: float):
    db = build_tpch_database(scale_factor=scale,
                             tables=["customer", "orders", "lineitem"])
    return [
        WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 3), db),
        WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 9), db),
    ]


def build_problem(specs, machine) -> VirtualizationDesignProblem:
    return VirtualizationDesignProblem(
        machine=machine, specs=specs,
        controlled_resources=(ResourceKind.CPU,),
    )


def final_machine():
    """The host after the full degradation trajectory (deterministic:
    a pure function of the plan, re-derived exactly as a resumed online
    loop would)."""
    world = DegradingWorld(laboratory_machine(), PLAN)
    for _ in range(EPOCHS):
        world.advance()
    return world.machine, world.capacity


def measured_total(problem, machine, allocation, params_source) -> float:
    """Measured workload seconds on *machine*, planning queries with
    each contender's own parameter source — stale models pay for their
    misplans, repaired ones profit from theirs."""
    measured = MeasuredCostModel(machine, calibration=params_source)
    return sum(
        measured.cost(problem.spec(name), allocation.vector_for(name))
        for name in sorted(allocation.workload_names()))


def allocation_dict(allocation) -> dict:
    return {
        name: [round(v, 6) for v in
               allocation.vector_for(name).as_tuple()]
        for name in allocation.workload_names()
    }


def run_open_loop(problem, machine_final):
    """Fit on the healthy host, never look again."""
    cache = CalibrationCache(CalibrationRunner(problem.machine))
    started = time.perf_counter()
    outcome = design_continuous(
        problem, cache, algorithm=ALGORITHM, grid=GRID,
        fine_factor=FINE_FACTOR, tolerance=TOLERANCE,
        max_calibrations=SURROGATE_BUDGET)
    cost = measured_total(problem, machine_final,
                          outcome.design.allocation, outcome.surface)
    return {
        "name": "open-loop",
        "cost": cost,
        "allocation": allocation_dict(outcome.design.allocation),
        "calibrations": outcome.calibrations,
        "wall_seconds": round(time.perf_counter() - started, 3),
    }, outcome


def run_closed_loop(problem, machine_final, workdir):
    """The online supervisor, journaled like any production run."""
    started = time.perf_counter()
    supervisor = OnlineSupervisor(
        problem, workdir / "closed-loop.journal", plan=PLAN,
        epochs=EPOCHS, drift_threshold=DRIFT_THRESHOLD,
        recal_budget=RECAL_BUDGET, algorithm=ALGORITHM, grid=GRID,
        fine_factor=FINE_FACTOR, surrogate_tol=TOLERANCE,
        surrogate_budget=SURROGATE_BUDGET)
    run = supervisor.run()
    assert run.completed
    cost = measured_total(problem, machine_final,
                          run.design.allocation, run.surface)
    return {
        "name": "closed-loop",
        "cost": cost,
        "allocation": allocation_dict(run.design.allocation),
        "drift_events": len(run.events),
        "recalibrations": run.recalibrations,
        "redesigns": run.redesigns,
        "budget_spent": run.budget_spent,
        "budget_remaining": run.budget_remaining,
        "trajectory": [
            {"epoch": point["epoch"],
             "capacity": round(point["capacity"], 6),
             "observed_seconds": round(point["observed_seconds"], 6),
             "drift_events": point["drift_events"],
             "refits": point["refits"]}
            for point in run.trajectory
        ],
        "wall_seconds": round(time.perf_counter() - started, 3),
    }, run


def run_oracle(specs, machine_final, candidates):
    """Full knowledge: a fresh fit on the degraded host, scoring a
    from-scratch redesign plus every *candidates* allocation under it
    and keeping the best. This makes the oracle a true bound — greedy
    from the default start can land in a worse basin than a
    warm-started incumbent, so the redesign alone is not one."""
    problem = build_problem(specs, machine_final)
    cache = CalibrationCache(CalibrationRunner(machine_final))
    started = time.perf_counter()
    outcome = design_continuous(
        problem, cache, algorithm=ALGORITHM, grid=GRID,
        fine_factor=FINE_FACTOR, tolerance=TOLERANCE,
        max_calibrations=SURROGATE_BUDGET)
    scored = {"redesign": outcome.design.allocation, **candidates}
    costs = {
        name: measured_total(problem, machine_final, allocation,
                             outcome.surface)
        for name, allocation in scored.items()
    }
    winner = min(sorted(costs), key=costs.get)
    return {
        "name": "oracle",
        "cost": costs[winner],
        "winner": winner,
        "candidate_costs": {name: round(value, 9)
                            for name, value in sorted(costs.items())},
        "allocation": allocation_dict(scored[winner]),
        "calibrations": outcome.calibrations,
        "wall_seconds": round(time.perf_counter() - started, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller TPC-H scale for CI (same trajectory, "
                             "budgets, and thresholds)")
    parser.add_argument("--output", default=str(RESULT_PATH),
                        help=f"result file (default {RESULT_PATH})")
    args = parser.parse_args(argv)

    scale = 0.001 if args.smoke else 0.002
    print(f"Building the Figure-5 problem (scale {scale}) ...",
          file=sys.stderr)
    specs = build_specs(scale)
    problem = build_problem(specs, laboratory_machine())
    machine_final, capacity = final_machine()
    print(f"Degradation trajectory: {EPOCHS} epoch(s) under plan "
          f"{PLAN.name!r} -> final CPU capacity {capacity:.0%}",
          file=sys.stderr)

    print("Open loop: fit once, trust forever ...", file=sys.stderr)
    open_entry, _open_outcome = run_open_loop(problem, machine_final)
    print(f"  measured {open_entry['cost']:.6f}s on the degraded host "
          f"({open_entry['wall_seconds']}s)", file=sys.stderr)

    print(f"Closed loop: threshold {DRIFT_THRESHOLD}, repair budget "
          f"{RECAL_BUDGET} ...", file=sys.stderr)
    with tempfile.TemporaryDirectory(prefix="bench-drift-") as scratch:
        closed_entry, run = run_closed_loop(
            problem, machine_final, pathlib.Path(scratch))
    print(f"  measured {closed_entry['cost']:.6f}s, "
          f"{closed_entry['drift_events']} drift event(s), "
          f"{closed_entry['recalibrations']} refit(s) "
          f"({closed_entry['wall_seconds']}s)", file=sys.stderr)

    print("Oracle: full refit on the degraded host ...", file=sys.stderr)
    oracle_entry = run_oracle(specs, machine_final, {
        "open-loop": _open_outcome.design.allocation,
        "closed-loop": run.design.allocation,
    })
    print(f"  measured {oracle_entry['cost']:.6f}s "
          f"({oracle_entry['wall_seconds']}s)", file=sys.stderr)

    gain = 1.0 - closed_entry["cost"] / open_entry["cost"]
    gap = closed_entry["cost"] / oracle_entry["cost"] - 1.0
    payload = {
        "suite": "drift",
        "smoke": args.smoke,
        "host_cpus": os.cpu_count(),
        "scenario": "fig5-degrading",
        "plan": PLAN.name,
        "epochs": EPOCHS,
        "final_capacity": round(capacity, 6),
        "drift_threshold": DRIFT_THRESHOLD,
        "recal_budget": RECAL_BUDGET,
        "surrogate_budget": SURROGATE_BUDGET,
        "algorithm": ALGORITHM,
        "grid": GRID,
        "fine_factor": FINE_FACTOR,
        "entries": [open_entry, closed_entry, oracle_entry],
        "summary": {
            "closed_loop_gain": round(gain, 6),
            "reconvergence_gap": round(gap, 6),
            "drift_events": closed_entry["drift_events"],
            "recalibrations": closed_entry["recalibrations"],
            "budget_spent": closed_entry["budget_spent"],
        },
    }
    output = pathlib.Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {output}: closed-loop gain {gain:+.1%}, "
          f"re-convergence gap {gap:+.1%}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
