#!/usr/bin/env python
"""Benchmark: joint index + allocation co-tuning vs allocation-only.

The question the codesign layer exists to answer: on the paper's
Figure 5 scenario, does tuning *both* axes — per-VM index
configurations and the resource allocation — beat the best design the
allocation-only search can reach at equal total memory? This script
measures both:

* **allocation-only baseline**: the exhaustive allocation search (the
  true grid optimum) over the same per-VM cost models, no index
  changes, its allocation re-evaluated through the cost model;
* **codesign**: :class:`repro.codesign.CodesignDesigner` — Extend-style
  greedy index selection (best what-if benefit per storage page, under
  a per-VM page budget) alternating with the same allocation search to
  a fixed point.

Both sides see the same machine, the same workloads (Q4x3 order-audit,
Q13x9 cust-report), the same memory share (0.5 per VM — equal total
memory), and databases with **no** secondary indexes: physical design
is the axis under test. Calibration runs on the synthetic workbench,
whose measured machine calibrates ``random_page_cost`` to ~1 (an
SSD-like profile) — the regime where index paths can win and physical
design matters. On the simulated spinning-disk laboratory machine the
calibrated ``random_page_cost`` is ~100 and the optimizer correctly
never picks an index scan at these scales; that is a faithful cost
model, not a useful benchmark.

A kill/resume probe re-runs the same co-tuning through
:class:`repro.codesign.CodesignSupervisor` journaled, kills it halfway
through its units, resumes, and requires the resumed journal to be
bit-identical to the uninterrupted one.

Writes ``benchmarks/results/BENCH_codesign.json``: one
``allocation-only`` and one ``codesign`` entry plus a ``summary`` with
``improvement`` (1 - codesign/allocation-only; > 0 is a hard check —
co-tuning that cannot beat single-axis tuning has no reason to exist),
``monotone`` (the half-step trajectory never increases), and
``resume_identical``. ``scripts/check_bench.py`` re-derives and gates
all of it.

Run with ``PYTHONPATH=src python scripts/bench_codesign.py [--smoke]``;
the full run uses TPC-H scale 0.01, ``--smoke`` shrinks to 0.002 for
CI.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.calibration import CalibrationCache, CalibrationRunner  # noqa: E402
from repro.calibration.synthetic import (  # noqa: E402
    HUGE_TABLE,
    SMALL_TABLE,
    CalibrationWorkbench,
)
from repro.codesign import CodesignDesigner, CodesignSupervisor  # noqa: E402
from repro.core import (  # noqa: E402
    OptimizerCostModel,
    VirtualizationDesigner,
    VirtualizationDesignProblem,
    WorkloadSpec,
)
from repro.recovery.journal import RunJournal  # noqa: E402
from repro.virt.machine import laboratory_machine  # noqa: E402
from repro.virt.resources import ResourceKind  # noqa: E402
from repro.workloads import (  # noqa: E402
    Workload,
    build_tpch_database,
    tpch_query,
)

RESULT_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_codesign.json"

FULL_SCALE, SMOKE_SCALE = 0.01, 0.002
STORAGE_BUDGET = 64
GRID = 4
ALGORITHM = "exhaustive"
MAX_ROUNDS = 6


def build_workbench() -> CalibrationWorkbench:
    """The deterministic synthetic calibration bench (SSD-like)."""
    return CalibrationWorkbench(rows={
        SMALL_TABLE: 200, "cal_scan_a": 1000, "cal_scan_b": 2000,
        "cal_scan_c": 3000, HUGE_TABLE: 4000,
    })


def build_problem(scale: float) -> VirtualizationDesignProblem:
    """The Figure 5 co-tuning scenario.

    Each spec gets its **own** database (index selection mutates the
    spec's catalog) and **no** baked-in secondary indexes (physical
    design is the axis being tuned).
    """
    def make_db(name: str):
        return build_tpch_database(
            scale_factor=scale, tables=["customer", "orders", "lineitem"],
            with_indexes=False, name=name)

    specs = [
        WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 3),
                     make_db("tpch-order-audit")),
        WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 9),
                     make_db("tpch-cust-report")),
    ]
    return VirtualizationDesignProblem(
        machine=laboratory_machine(), specs=specs,
        controlled_resources=(ResourceKind.CPU,))


def make_cost_model(problem, config_aware: bool) -> OptimizerCostModel:
    runner = CalibrationRunner(problem.machine, workbench=build_workbench())
    return OptimizerCostModel(CalibrationCache(runner),
                              config_aware=config_aware)


def run_allocation_only(scale: float) -> dict:
    problem = build_problem(scale)
    cost_model = make_cost_model(problem, config_aware=False)
    started = time.perf_counter()
    design = VirtualizationDesigner(problem, cost_model).design(
        ALGORITHM, grid=GRID)
    wall = time.perf_counter() - started
    return {
        "name": "allocation-only",
        "cost": design.predicted_total_cost,
        "allocation": {
            name: list(design.allocation.vector_for(name).as_tuple())
            for name in design.allocation.workload_names()},
        "wall_seconds": round(wall, 3),
    }


def run_codesign(scale: float) -> dict:
    problem = build_problem(scale)
    cost_model = make_cost_model(problem, config_aware=True)
    started = time.perf_counter()
    design = CodesignDesigner(
        problem, cost_model, storage_budget=STORAGE_BUDGET,
        algorithm=ALGORITHM, grid=GRID, max_rounds=MAX_ROUNDS).design()
    wall = time.perf_counter() - started
    return {
        "name": "codesign",
        "cost": design.total_cost,
        "initial_cost": design.initial_total_cost,
        "allocation": {
            name: list(design.allocation.vector_for(name).as_tuple())
            for name in design.allocation.workload_names()},
        "indexes": {name: [choice.as_dict() for choice in choices]
                    for name, choices in sorted(design.indexes.items())},
        "pages_used": dict(sorted(design.pages_used.items())),
        "storage_budget": design.storage_budget,
        "rounds": design.rounds,
        "converged": design.converged,
        "trajectory": list(design.trajectory),
        "candidates_evaluated": design.candidates_evaluated,
        "wall_seconds": round(wall, 3),
    }


def journal_fingerprint(path) -> tuple:
    journal = RunJournal.open(path)
    return tuple(
        (record.kind, tuple(sorted((k, repr(v))
                                   for k, v in record.data.items())))
        for record in journal.records)


def resume_probe(scale: float) -> dict:
    """Kill a journaled co-tuning run halfway, resume, compare journals."""
    def supervisor(path, max_units=None):
        return CodesignSupervisor(
            build_problem(scale), path, storage_budget=STORAGE_BUDGET,
            algorithm=ALGORITHM, grid=GRID, max_rounds=MAX_ROUNDS,
            max_units=max_units, workbench=build_workbench())

    with tempfile.TemporaryDirectory(prefix="bench-codesign-") as scratch:
        full_path = os.path.join(scratch, "full.journal")
        full_run = supervisor(full_path).run()
        assert full_run.completed, "the uninterrupted run did not finish"
        kill_after = max(1, full_run.new_units // 2)
        killed_path = os.path.join(scratch, "killed.journal")
        killed = supervisor(killed_path, max_units=kill_after).run()
        assert not killed.completed, "the kill probe was not killed"
        resumed = supervisor(killed_path).run(resume=True)
        assert resumed.completed, "the resumed run did not finish"
        identical = (journal_fingerprint(killed_path)
                     == journal_fingerprint(full_path))
    return {"resume_identical": identical, "resume_kill_after": kill_after}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"TPC-H scale {SMOKE_SCALE} for CI instead of "
                             f"the full {FULL_SCALE}")
    parser.add_argument("--output", default=str(RESULT_PATH),
                        help=f"result file (default {RESULT_PATH})")
    args = parser.parse_args(argv)

    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    print(f"Allocation-only baseline ({ALGORITHM}, grid {GRID}, "
          f"scale {scale}) ...", file=sys.stderr)
    alloc_entry = run_allocation_only(scale)
    print(f"  cost {alloc_entry['cost']:.6f} "
          f"({alloc_entry['wall_seconds']}s)", file=sys.stderr)

    print(f"Codesign ({ALGORITHM}, storage budget {STORAGE_BUDGET} "
          f"page(s)/VM) ...", file=sys.stderr)
    codesign_entry = run_codesign(scale)
    n_indexes = sum(len(v) for v in codesign_entry["indexes"].values())
    print(f"  cost {codesign_entry['cost']:.6f} after "
          f"{codesign_entry['rounds']} round(s), {n_indexes} index(es) "
          f"({codesign_entry['wall_seconds']}s)", file=sys.stderr)

    print("Kill/resume probe ...", file=sys.stderr)
    probe = resume_probe(scale)
    print(f"  killed after {probe['resume_kill_after']} unit(s), "
          f"identical: {probe['resume_identical']}", file=sys.stderr)

    trajectory = codesign_entry["trajectory"]
    improvement = 1.0 - codesign_entry["cost"] / alloc_entry["cost"]
    monotone = all(b <= a + 1e-9 for a, b in zip(trajectory, trajectory[1:]))
    payload = {
        "suite": "codesign",
        "smoke": args.smoke,
        "host_cpus": os.cpu_count(),
        "scenario": {"scale": scale, "workloads": ["order-audit",
                                                   "cust-report"]},
        "algorithm": ALGORITHM,
        "grid": GRID,
        "storage_budget": STORAGE_BUDGET,
        "max_rounds": MAX_ROUNDS,
        "entries": [alloc_entry, codesign_entry],
        "summary": {
            "improvement": round(improvement, 6),
            "monotone": monotone,
            "indexes_selected": n_indexes,
            "resume_identical": probe["resume_identical"],
            "resume_kill_after": probe["resume_kill_after"],
        },
    }
    output = pathlib.Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {output}: co-design {improvement:.1%} cheaper than the "
          f"best allocation-only design, {n_indexes} index(es) selected",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
