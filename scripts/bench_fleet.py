#!/usr/bin/env python
"""Benchmark: fleet placement vs round-robin on a synthetic datacenter.

The question the fleet layer exists to answer: does cluster → tune →
reroute actually beat naive placement, and does the reassignment loop
earn its keep? This script measures both on the standard synthetic
scenario (heterogeneous host speeds, capacity-discounted hosts, and
workloads spanning CPU-bound to I/O-bound cost-curve shapes):

* **round-robin baseline**: workloads dealt to hosts cyclically —
  placement-unaware — then every host tuned with the same per-host
  allocation search the fleet designer uses, so the comparison
  isolates *placement* quality, not search quality.
* **fleet**: :class:`repro.fleet.FleetDesigner` — cluster by curve
  shape, assign clusters to hosts by demand, tune, and reroute
  worst-fit workloads until total cost converges.

Writes ``benchmarks/results/BENCH_fleet.json``: one ``round-robin``
and one ``fleet`` entry plus a ``summary`` with ``improvement``
(1 - fleet/round-robin; > 0 means the fleet design wins, a hard check)
and ``reassignment_gain`` (1 - final/initial; what the reroute loop
recovered beyond the initial clustered placement, gated by
``check_bench.py --min-reassignment-gain``). The recorded trajectory
must be monotonically non-increasing — the designer only accepts
strictly improving moves.

Run with ``PYTHONPATH=src python scripts/bench_fleet.py [--smoke]``;
the full run places 1000 workloads on 100 hosts (the ISSUE's
acceptance scenario), ``--smoke`` shrinks to 60 on 12 for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fleet import (  # noqa: E402
    FleetDesigner,
    round_robin_assignment,
    synthetic_fleet,
)

RESULT_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_fleet.json"

#: The acceptance scenario: 1000 workloads across 100 heterogeneous
#: hosts. Smoke keeps the same seed and grid so curve shapes match.
FULL_HOSTS, FULL_WORKLOADS = 100, 1000
SMOKE_HOSTS, SMOKE_WORKLOADS = 12, 60
SEED = 7
GRID = 16
ALGORITHM = "greedy"
MAX_ROUNDS = 24


def run_round_robin(problem) -> dict:
    started = time.perf_counter()
    cost, designs = FleetDesigner(problem, algorithm=ALGORITHM) \
        .evaluate_assignment(round_robin_assignment(problem))
    wall = time.perf_counter() - started
    return {
        "name": "round-robin",
        "cost": cost,
        "hosts": len(designs),
        "workloads": len(problem.profiles),
        "wall_seconds": round(wall, 3),
    }


def run_fleet(problem) -> dict:
    started = time.perf_counter()
    design = FleetDesigner(problem, algorithm=ALGORITHM,
                           max_rounds=MAX_ROUNDS).design()
    wall = time.perf_counter() - started
    return {
        "name": "fleet",
        "cost": design.total_cost,
        "initial_cost": design.cost_trajectory[0],
        "rounds": design.rounds,
        "moves": design.moves,
        "clusters": design.n_clusters,
        "converged": design.converged,
        "trajectory": list(design.cost_trajectory),
        "hosts": len(design.host_designs),
        "workloads": len(design.assignment),
        "wall_seconds": round(wall, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="12 hosts / 60 workloads for CI instead of "
                             "the full 100 / 1000 acceptance scenario")
    parser.add_argument("--output", default=str(RESULT_PATH),
                        help=f"result file (default {RESULT_PATH})")
    args = parser.parse_args(argv)

    hosts = SMOKE_HOSTS if args.smoke else FULL_HOSTS
    workloads = SMOKE_WORKLOADS if args.smoke else FULL_WORKLOADS
    print(f"Building the synthetic fleet ({hosts} hosts, "
          f"{workloads} workloads, seed {SEED}) ...", file=sys.stderr)
    problem = synthetic_fleet(hosts, workloads, seed=SEED, grid=GRID)

    print("Round-robin baseline (tuned per host) ...", file=sys.stderr)
    rr_entry = run_round_robin(problem)
    print(f"  cost {rr_entry['cost']:.4f} "
          f"({rr_entry['wall_seconds']}s)", file=sys.stderr)

    print(f"Fleet designer ({ALGORITHM}, max {MAX_ROUNDS} rounds) ...",
          file=sys.stderr)
    fleet_entry = run_fleet(problem)
    print(f"  cost {fleet_entry['cost']:.4f} after "
          f"{fleet_entry['rounds']} round(s), {fleet_entry['moves']} "
          f"move(s) ({fleet_entry['wall_seconds']}s)", file=sys.stderr)

    trajectory = fleet_entry["trajectory"]
    improvement = 1.0 - fleet_entry["cost"] / rr_entry["cost"]
    gain = 1.0 - fleet_entry["cost"] / fleet_entry["initial_cost"]
    monotone = all(b <= a + 1e-9 for a, b in zip(trajectory, trajectory[1:]))
    payload = {
        "suite": "fleet",
        "smoke": args.smoke,
        "host_cpus": os.cpu_count(),
        "scenario": {"n_hosts": hosts, "n_workloads": workloads,
                     "seed": SEED, "grid": GRID},
        "algorithm": ALGORITHM,
        "max_rounds": MAX_ROUNDS,
        "entries": [rr_entry, fleet_entry],
        "summary": {
            "improvement": round(improvement, 6),
            "reassignment_gain": round(gain, 6),
            "monotone": monotone,
        },
    }
    output = pathlib.Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {output}: {improvement:.1%} cheaper than round-robin, "
          f"{gain:.1%} recovered by reassignment", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
