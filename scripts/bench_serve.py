#!/usr/bin/env python
"""Benchmark E10: the always-on design service under load and faults.

The question the serve subsystem exists to answer: when concurrent
what-if and design requests arrive faster than the backend cooperates,
does the service stay *responsive* (bounded latency), *honest* (every
request answered, degraded, or typed-rejected within its deadline —
never an untyped error, never a silent drop), and *recoverable* (a
killed session resumes bit-identically)? Two sessions share one
fault-injected calibration backend (the ``flaky`` plan):

* **rated**: offered load the service is provisioned for — generous
  quotas, moderate rate. The latency/shed/degradation gates apply
  here: a healthy service at its rated load should shed (almost)
  nothing and answer fast.
* **overload**: a burst at ~10x the rated arrival rate against tight
  quotas and a short queue. No gates on quality — the point is that
  admission control *engages* (shed rate must be positive) while
  every response stays typed and inside its deadline.

A third, journaled run of the rated scenario is killed halfway through
its units and resumed; the resumed response stream must be
bit-identical to the uninterrupted one (``summary.resume_identical``).

Writes ``benchmarks/results/BENCH_serve.json``; ``scripts/check_bench.py``
validates the schema, enforces the hard checks above, and gates on
``--max-serve-p99``, ``--max-shed-rate``, and
``--max-degraded-fraction``.

Run with ``PYTHONPATH=src python scripts/bench_serve.py [--smoke]``;
``--smoke`` shrinks the TPC-H scale and the trace length (admission,
deadlines, and the ladder — the gated mechanics — are scale-free).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import VirtualizationDesignProblem, WorkloadSpec  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.serve import ServeConfig, ServeScenario, ServeSupervisor  # noqa: E402
from repro.virt.machine import laboratory_machine  # noqa: E402
from repro.virt.resources import ResourceKind  # noqa: E402
from repro.workloads import Workload, build_tpch_database, tpch_query  # noqa: E402

RESULT_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_serve.json"

GRID = 3
FINE_FACTOR = 8
SURROGATE_BUDGET = 12
ALGORITHM = "greedy"
TRACE_SEED = 7
PLAN = FaultPlan.named("flaky")

#: Provisioned load: quotas sized so a well-behaved tenant mix at this
#: rate is almost never shed.
RATED_RATE = 20.0
RATED_CONFIG = dict(quota_capacity=30.0, quota_refill_rate=20.0)
#: The burst: ~10x the arrival rate against tight quotas and a short
#: queue, so admission control must do the work.
OVERLOAD_RATE = 200.0
OVERLOAD_CONFIG = dict(quota_capacity=8.0, quota_refill_rate=4.0,
                       max_queue=16)


def build_problem(scale: float) -> VirtualizationDesignProblem:
    db = build_tpch_database(scale_factor=scale,
                             tables=["customer", "orders", "lineitem"])
    return VirtualizationDesignProblem(
        machine=laboratory_machine(),
        specs=[
            WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 1),
                         db),
            WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 2),
                         db),
        ],
        controlled_resources=(ResourceKind.CPU,),
    )


def run_session(problem, workdir, name, scenario, config, max_units=None,
                resume_path=None):
    """One supervised session; returns (entry_dict, run)."""
    path = resume_path or (workdir / f"{name}.journal")
    started = time.perf_counter()
    supervisor = ServeSupervisor(
        problem, path, plan=PLAN, scenario=scenario, config=config,
        algorithm=ALGORITHM, grid=GRID, fine_factor=FINE_FACTOR,
        surrogate_budget=SURROGATE_BUDGET, max_units=max_units)
    run = supervisor.run(resume=resume_path is not None)
    wall = round(time.perf_counter() - started, 3)
    if not run.completed:
        return None, run
    stats = run.stats
    untyped = sum(1 for r in run.responses
                  if r.status == "rejected"
                  and (r.error is None or r.reason is None))
    violations = sum(1 for r in run.responses
                     if r.completed_at > r.request.deadline_at + 1e-12)
    entry = {
        "name": name,
        "requests": stats.requests,
        "rate": scenario.rate,
        "answered": stats.answered,
        "degraded": stats.degraded,
        "rejected": stats.rejected,
        "shed": stats.shed,
        "shed_rate": round(stats.shed_rate, 6),
        "degraded_fraction": round(stats.degraded_fraction, 6),
        "p50_seconds": round(stats.p50_seconds, 6),
        "p99_seconds": round(stats.p99_seconds, 6),
        "deadline_violations": violations,
        "untyped_errors": untyped,
        "design_commits": run.design_seq,
        "breaker_trips": run.breaker_trips,
        "wall_seconds": wall,
    }
    return entry, run


def stream(run) -> list:
    """The comparable response stream: everything a client observes."""
    return [(type(r.request).__name__, r.request.tenant, r.status, r.tier,
             r.error, r.reason, r.cost, r.completed_at)
            for r in run.responses]


def resume_probe(problem, workdir, scenario, config, baseline_run) -> dict:
    """Kill a fresh journaled run of the rated scenario halfway through
    its units, resume it, and compare against the uninterrupted run."""
    kill_after = max(1, baseline_run.new_units // 2)
    path = workdir / "resume-probe.journal"
    supervisor = ServeSupervisor(
        problem, path, plan=PLAN, scenario=scenario, config=config,
        algorithm=ALGORITHM, grid=GRID, fine_factor=FINE_FACTOR,
        surrogate_budget=SURROGATE_BUDGET, max_units=kill_after)
    partial = supervisor.run()
    assert not partial.completed, "the probe kill never triggered"
    _entry, resumed = run_session(problem, workdir, "resume-probe",
                                  scenario, config, resume_path=path)
    identical = (resumed.completed
                 and resumed.replayed_units == kill_after
                 and stream(resumed) == stream(baseline_run))
    return {"resume_identical": bool(identical),
            "resume_kill_after": kill_after}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller TPC-H scale and trace for CI (same "
                             "rates, quotas, and deadlines)")
    parser.add_argument("--output", default=str(RESULT_PATH),
                        help=f"result file (default {RESULT_PATH})")
    args = parser.parse_args(argv)

    scale = 0.001 if args.smoke else 0.002
    requests = 60 if args.smoke else 120
    rated = ServeScenario(seed=TRACE_SEED, requests=requests,
                          rate=RATED_RATE, design_every=25)
    overload = ServeScenario(seed=TRACE_SEED, requests=requests,
                             rate=OVERLOAD_RATE, design_every=25)
    rated_config = ServeConfig(**RATED_CONFIG)
    overload_config = ServeConfig(**OVERLOAD_CONFIG)

    print(f"Building the two-workload problem (scale {scale}) ...",
          file=sys.stderr)
    problem = build_problem(scale)

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as scratch:
        workdir = pathlib.Path(scratch)
        print(f"Rated load: {requests} requests at {RATED_RATE:.0f}/s "
              f"under plan {PLAN.name!r} ...", file=sys.stderr)
        rated_entry, rated_run = run_session(
            problem, workdir, "rated", rated, rated_config)
        print(f"  p50 {rated_entry['p50_seconds'] * 1e3:.1f} ms, "
              f"p99 {rated_entry['p99_seconds'] * 1e3:.1f} ms, "
              f"shed {rated_entry['shed_rate']:.1%} "
              f"({rated_entry['wall_seconds']}s)", file=sys.stderr)

        print(f"Overload: {requests} requests at {OVERLOAD_RATE:.0f}/s, "
              f"tight quotas ...", file=sys.stderr)
        overload_entry, _ = run_session(
            problem, workdir, "overload", overload, overload_config)
        print(f"  shed {overload_entry['shed_rate']:.1%}, "
              f"{overload_entry['untyped_errors']} untyped error(s), "
              f"{overload_entry['deadline_violations']} deadline "
              f"violation(s)", file=sys.stderr)

        print("Resume probe: kill the rated session halfway, resume, "
              "compare ...", file=sys.stderr)
        probe = resume_probe(problem, workdir, rated, rated_config,
                             rated_run)
        print(f"  kill after {probe['resume_kill_after']} unit(s): "
              f"identical={probe['resume_identical']}", file=sys.stderr)

    payload = {
        "suite": "serve",
        "smoke": args.smoke,
        "host_cpus": os.cpu_count(),
        "scenario": "two-workload-whatif-design-mix",
        "plan": PLAN.name,
        "trace_seed": TRACE_SEED,
        "requests": requests,
        "algorithm": ALGORITHM,
        "grid": GRID,
        "surrogate_budget": SURROGATE_BUDGET,
        "entries": [rated_entry, overload_entry],
        "summary": {
            "p99_seconds": rated_entry["p99_seconds"],
            "shed_rate": rated_entry["shed_rate"],
            "degraded_fraction": rated_entry["degraded_fraction"],
            "overload_shed_rate": overload_entry["shed_rate"],
            **probe,
        },
    }
    output = pathlib.Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {output}: rated p99 "
          f"{payload['summary']['p99_seconds'] * 1e3:.1f} ms, shed "
          f"{payload['summary']['shed_rate']:.1%}, resume identical: "
          f"{probe['resume_identical']}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
