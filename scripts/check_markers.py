#!/usr/bin/env python
"""Audit pytest markers across the test tree and the CI workflows.

An unregistered marker silently selects nothing with ``-m``, and a
registered-but-unused one makes a CI job green while running zero
tests — either way an entire suite can vanish from CI without a
failure. Three checks keep that honest:

* every ``pytest.mark.<name>`` used under ``tests/`` is registered in
  ``[tool.pytest.ini_options] markers`` in pyproject.toml (built-in
  marks like ``parametrize`` are exempt);
* every marker named in a ``pytest ... -m "<expr>"`` expression in any
  ``.github/workflows/*.yml`` file is registered — a workflow cannot
  select on a marker pytest does not know about;
* every such workflow-selected marker actually marks at least one test,
  so the selection is non-empty.

Stdlib only (``re`` + ``tomllib``), so the CI lint job can run it with
no test dependencies installed. Run with
``python scripts/check_markers.py``; exits non-zero and prints one line
per problem when anything is broken.
"""

from __future__ import annotations

import pathlib
import re
import sys
import tomllib
from typing import Dict, List, Set

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Marks pytest ships with; using them unregistered is fine.
BUILTIN_MARKS = {
    "parametrize", "skip", "skipif", "xfail", "filterwarnings",
    "usefixtures",
}

_MARK_USE = re.compile(r"pytest\.mark\.([A-Za-z_][A-Za-z0-9_]*)")
#: A ``-m <expr>`` selection in a workflow run line; the expression is
#: either quoted (may contain ``or``/``and``/``not``) or a bare word.
_WORKFLOW_SELECT = re.compile(
    r"(?:python\s+-m\s+)?pytest\s[^\n]*?-m\s+(?:\"([^\"]+)\"|'([^']+)'"
    r"|([A-Za-z_][A-Za-z0-9_]*))")
_MARKER_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_EXPR_KEYWORDS = {"or", "and", "not"}


def registered_markers() -> Set[str]:
    payload = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
    entries = payload["tool"]["pytest"]["ini_options"]["markers"]
    return {entry.split(":", 1)[0].strip() for entry in entries}


def used_markers() -> Dict[str, List[str]]:
    """marker name -> list of 'path:line' uses across tests/."""
    uses: Dict[str, List[str]] = {}
    for path in sorted((REPO_ROOT / "tests").rglob("*.py")):
        for number, line in enumerate(path.read_text().splitlines(), 1):
            for name in _MARK_USE.findall(line):
                uses.setdefault(name, []).append(
                    f"{path.relative_to(REPO_ROOT)}:{number}")
    return uses


def workflow_selections() -> Dict[str, List[str]]:
    """marker name -> list of 'workflow:line' ``-m`` selections."""
    selections: Dict[str, List[str]] = {}
    workflows = sorted((REPO_ROOT / ".github" / "workflows").glob("*.yml"))
    for path in workflows:
        for number, line in enumerate(path.read_text().splitlines(), 1):
            for match in _WORKFLOW_SELECT.finditer(line):
                expr = next(g for g in match.groups() if g)
                for word in _MARKER_WORD.findall(expr):
                    if word in _EXPR_KEYWORDS:
                        continue
                    selections.setdefault(word, []).append(
                        f"{path.relative_to(REPO_ROOT)}:{number}")
    return selections


def audit() -> List[str]:
    errors: List[str] = []
    registered = registered_markers()
    uses = used_markers()
    selections = workflow_selections()

    for name, sites in sorted(uses.items()):
        if name in BUILTIN_MARKS or name in registered:
            continue
        errors.append(
            f"{sites[0]}: marker {name!r} is not registered in "
            f"[tool.pytest.ini_options] markers (pyproject.toml)")

    for name, sites in sorted(selections.items()):
        if name not in registered:
            errors.append(
                f"{sites[0]}: workflow selects -m on {name!r}, which is "
                f"not registered in pyproject.toml")
        if not uses.get(name):
            errors.append(
                f"{sites[0]}: workflow selects -m on {name!r}, but no "
                f"test in tests/ carries that marker — the job would "
                f"run zero tests")
    return errors


def main() -> int:
    errors = audit()
    for error in errors:
        print(error, file=sys.stderr)
    uses = used_markers()
    selected = workflow_selections()
    if not errors:
        print(f"check_markers: OK — {len(uses)} marker(s) in tests/, "
              f"{len(selected)} selected by workflows, all registered "
              f"and non-empty")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
