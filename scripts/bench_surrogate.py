#!/usr/bin/env python
"""Benchmark: surrogate-guided continuous search vs the dense grid.

The question the surrogate exists to answer: how many exact
calibrations does it save, and does the answer get worse? This script
measures both on the Figure-5 scenario (two TPC-H workloads —
``order-audit`` Q4x3 and ``cust-report`` Q13x9 — competing for CPU on
the laboratory machine):

* **dense-grid baseline**: an exhaustive search on the fully calibrated
  fine grid (``grid * fine_factor`` units), paying one exact
  calibration per distinct share level — the old way to get a fine
  answer.
* **surrogate**: :func:`repro.surrogate.design_continuous` — fit a
  coarse parameter surface, then search-in-the-loop polish — under a
  calibration-request budget, searching the *same* fine lattice.

The surrogate's chosen allocation is then re-costed under the dense
baseline's exact cache (its shares land on the fine lattice, so this
pays zero extra calibrations — asserted) for an apples-to-apples
quality comparison.

Writes ``benchmarks/results/BENCH_surrogate.json``: one ``dense-grid``
and one ``surrogate`` entry plus a ``summary`` with
``calibration_ratio`` (dense calibrations / surrogate requests) and
``cost_margin`` (dense best cost - surrogate exact cost; >= 0 means the
surrogate matched or beat the dense answer).
``scripts/check_bench.py`` validates the schema and gates on
``calibration_ratio >= 5`` and ``cost_margin >= 0``.

Run with ``PYTHONPATH=src python scripts/bench_surrogate.py [--smoke]``;
``--smoke`` shrinks the TPC-H scale factor (calibration counts, the
gated quantities, are scale-independent).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.calibration import CalibrationCache, CalibrationRunner  # noqa: E402
from repro.core import (  # noqa: E402
    OptimizerCostModel,
    VirtualizationDesignProblem,
    VirtualizationDesigner,
    WorkloadSpec,
)
from repro.surrogate import design_continuous  # noqa: E402
from repro.virt.machine import laboratory_machine  # noqa: E402
from repro.virt.resources import ResourceKind  # noqa: E402
from repro.workloads import Workload, build_tpch_database, tpch_query  # noqa: E402

RESULT_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_surrogate.json"

#: The search configuration both contenders share. The dense baseline
#: searches a grid of ``GRID * FINE_FACTOR`` units; the surrogate
#: searches the same lattice continuously with at most ``BUDGET``
#: calibration requests. 63 dense calibrations vs 12 requests = a
#: 5.25x ratio when the budget is fully spent.
GRID = 4
FINE_FACTOR = 16
BUDGET = 12
TOLERANCE = 0.3
ALGORITHM = "exhaustive"


def build_problem(scale: float) -> VirtualizationDesignProblem:
    """The Figure-5 scenario: two workloads competing for CPU."""
    db = build_tpch_database(scale_factor=scale,
                             tables=["customer", "orders", "lineitem"])
    specs = [
        WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 3), db),
        WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 9), db),
    ]
    return VirtualizationDesignProblem(
        machine=laboratory_machine(), specs=specs,
        controlled_resources=(ResourceKind.CPU,),
    )


def allocation_dict(design) -> dict:
    return {
        name: [round(v, 6) for v in
               design.allocation.vector_for(name).as_tuple()]
        for name in design.allocation.workload_names()
    }


def run_dense(problem) -> tuple:
    """Exhaustive search on the fully calibrated fine grid."""
    cache = CalibrationCache(CalibrationRunner(problem.machine))
    designer = VirtualizationDesigner(problem, OptimizerCostModel(cache))
    started = time.perf_counter()
    design = designer.design(ALGORITHM, grid=GRID * FINE_FACTOR)
    wall = time.perf_counter() - started
    entry = {
        "name": "dense-grid",
        "calibrations": cache.n_calibrations,
        "cost": design.predicted_total_cost,
        "evaluations": design.evaluations,
        "allocation": allocation_dict(design),
        "wall_seconds": round(wall, 3),
    }
    return entry, design, cache


def run_surrogate(problem, dense_cache) -> dict:
    """Fit + polish + continuous search, then re-cost exactly."""
    cache = CalibrationCache(CalibrationRunner(problem.machine))
    started = time.perf_counter()
    outcome = design_continuous(
        problem, cache, algorithm=ALGORITHM, grid=GRID,
        fine_factor=FINE_FACTOR, tolerance=TOLERANCE,
        max_calibrations=BUDGET)
    wall = time.perf_counter() - started
    # Exact quality of the surrogate's answer, costed with the dense
    # cache. The continuous search only proposes fine-lattice shares,
    # all of which the dense baseline already calibrated — re-costing
    # must not pay for a single new experiment.
    exact_model = OptimizerCostModel(dense_cache)
    before = dense_cache.n_calibrations
    exact_cost = sum(
        VirtualizationDesigner(problem, exact_model)
        .evaluate(outcome.design.allocation).values())
    assert dense_cache.n_calibrations == before, (
        "re-costing the surrogate answer paid fresh calibrations — its "
        "allocation left the dense fine lattice")
    return {
        "name": "surrogate",
        "calibrations": outcome.calibrations,
        "cost": exact_cost,
        "predicted_cost": outcome.design.predicted_total_cost,
        "evaluations": outcome.design.evaluations,
        "allocation": allocation_dict(outcome.design),
        "wall_seconds": round(wall, 3),
        "knots": outcome.surface.n_knots,
        "fit_refinements": outcome.fit.refinements,
        "polish_rounds": outcome.polish_iterations,
        "converged": outcome.converged,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller TPC-H scale for CI (same grids and "
                             "budget, so the gated ratios are unchanged)")
    parser.add_argument("--output", default=str(RESULT_PATH),
                        help=f"result file (default {RESULT_PATH})")
    args = parser.parse_args(argv)

    scale = 0.001 if args.smoke else 0.002
    print(f"Building the Figure-5 problem (scale {scale}) ...",
          file=sys.stderr)
    problem = build_problem(scale)

    fine = GRID * FINE_FACTOR
    print(f"Dense baseline: {ALGORITHM} at grid {fine} "
          f"(expect {fine - 1} calibrations) ...", file=sys.stderr)
    dense_entry, _dense_design, dense_cache = run_dense(problem)
    print(f"  {dense_entry['calibrations']} calibrations, "
          f"cost {dense_entry['cost']:.6f} "
          f"({dense_entry['wall_seconds']}s)", file=sys.stderr)

    print(f"Surrogate: budget {BUDGET}, tolerance {TOLERANCE}, "
          f"fine lattice {fine} ...", file=sys.stderr)
    surrogate_entry = run_surrogate(problem, dense_cache)
    print(f"  {surrogate_entry['calibrations']} calibration requests, "
          f"exact cost {surrogate_entry['cost']:.6f} "
          f"({surrogate_entry['wall_seconds']}s)", file=sys.stderr)

    ratio = dense_entry["calibrations"] / surrogate_entry["calibrations"]
    margin = dense_entry["cost"] - surrogate_entry["cost"]
    payload = {
        "suite": "surrogate",
        "smoke": args.smoke,
        "host_cpus": os.cpu_count(),
        "scenario": "fig5",
        "algorithm": ALGORITHM,
        "grid": GRID,
        "fine_factor": FINE_FACTOR,
        "tolerance": TOLERANCE,
        "budget": BUDGET,
        "entries": [dense_entry, surrogate_entry],
        "summary": {
            "calibration_ratio": round(ratio, 4),
            "calibrations_avoided": (dense_entry["calibrations"]
                                     - surrogate_entry["calibrations"]),
            "cost_margin": round(margin, 9),
        },
    }
    output = pathlib.Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {output}: calibration ratio {ratio:.2f}x, "
          f"cost margin {margin:+.6f}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
