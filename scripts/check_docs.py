#!/usr/bin/env python
"""Lint the repository's documentation.

Checks, over README.md, DESIGN.md, EXPERIMENTS.md, and docs/*.md:

* every relative markdown link ``[text](path)`` points at a file that
  exists (resolved against the linking file's directory; external
  ``http(s)://`` / ``mailto:`` targets and pure ``#anchor`` links are
  skipped, trailing anchors are stripped);
* every wiki-style ``[[page]]`` link resolves to a markdown file in the
  repo root or ``docs/`` (with or without the ``.md`` suffix);
* every backticked dotted module name (`` `repro.x.y` ``) mentioned in
  ``docs/architecture.md`` or ``docs/parallelism.md`` exists under
  ``src/`` as a module or package, so those pages cannot drift from
  the tree;
* every backticked result file (`` `ext_foo.txt` ``,
  `` `BENCH_foo.json` `` or ``benchmarks/results/...``) and every
  backticked ``scripts/*.py`` mentioned in ``EXPERIMENTS.md`` or
  ``docs/*.md`` exists, so the experiments page cannot cite artifacts
  that were never generated (``*`` globs must match at least one
  file).

Run directly (``python scripts/check_docs.py``) or through the test
suite (``tests/docs/test_docs_lint.py``); exits non-zero and prints one
line per problem when anything is broken.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md")

#: ``[text](target)`` — excludes images' ``!`` prefix intentionally?
#: No: images are checked too (the ``!`` simply precedes the match).
_MD_LINK = re.compile(r"\[(?:[^\]]*)\]\(([^)\s]+)\)")
_WIKI_LINK = re.compile(r"\[\[([^\]|#]+)(?:#[^\]]*)?\]\]")
_MODULE_REF = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z_0-9]*)+)`")
#: `` `name.txt` `` or `` `benchmarks/results/name.txt` `` — a claimed
#: benchmark artifact; `` `scripts/name.py` `` — a claimed script.
_RESULT_REF = re.compile(
    r"`(?:benchmarks/results/)?([A-Za-z0-9_*]+\.(?:txt|json))`")
_SCRIPT_REF = re.compile(r"`(scripts/[A-Za-z0-9_]+\.py)`")
_EXTERNAL = ("http://", "https://", "mailto:")


def _doc_paths() -> List[pathlib.Path]:
    paths = [REPO_ROOT / name for name in DOC_FILES
             if (REPO_ROOT / name).exists()]
    paths.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return paths


def _check_md_links(path: pathlib.Path, text: str, errors: List[str]) -> None:
    for match in _MD_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: broken link "
                          f"({target})")


def _check_wiki_links(path: pathlib.Path, text: str,
                      errors: List[str]) -> None:
    for match in _WIKI_LINK.finditer(text):
        name = match.group(1).strip()
        candidates = [
            path.parent / name, path.parent / f"{name}.md",
            REPO_ROOT / name, REPO_ROOT / f"{name}.md",
            REPO_ROOT / "docs" / name, REPO_ROOT / "docs" / f"{name}.md",
        ]
        if not any(c.exists() for c in candidates):
            errors.append(f"{path.relative_to(REPO_ROOT)}: unresolved "
                          f"wiki link [[{name}]]")


def _check_artifact_refs(path: pathlib.Path, text: str,
                         errors: List[str]) -> None:
    results_dir = REPO_ROOT / "benchmarks" / "results"
    for match in _RESULT_REF.finditer(text):
        name = match.group(1)
        if "*" in name:
            if not sorted(results_dir.glob(name)):
                errors.append(f"{path.relative_to(REPO_ROOT)}: no result "
                              f"file matches `{name}`")
        elif not (results_dir / name).exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: missing result "
                          f"file benchmarks/results/{name}")
    for match in _SCRIPT_REF.finditer(text):
        rel = match.group(1)
        if not (REPO_ROOT / rel).exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: missing "
                          f"script {rel}")


#: Pages whose dotted `repro.*` mentions must exist under src/.
_MODULE_CHECKED_PAGES = ("architecture.md", "parallelism.md",
                         "surrogate.md", "fleet.md", "benchmarks.md",
                         "drift.md", "serve.md", "profiling.md",
                         "codesign.md")


def _check_module_refs(errors: List[str]) -> None:
    src = REPO_ROOT / "src"
    for page in _MODULE_CHECKED_PAGES:
        doc = REPO_ROOT / "docs" / page
        if not doc.exists():
            # Absence is caught by the markdown link check (every page
            # here is linked from another doc); skipping keeps the
            # checker usable against partial trees in tests.
            continue
        for match in _MODULE_REF.finditer(doc.read_text()):
            dotted = match.group(1)
            parts = dotted.split(".")
            # A trailing CamelCase segment is a class reference; the
            # module check applies to the dotted prefix.
            while parts and not parts[-1].islower():
                parts.pop()
            rel = pathlib.Path(*parts)
            if not ((src / rel).is_dir()
                    and (src / rel / "__init__.py").exists()
                    or (src / rel.with_suffix(".py")).exists()):
                errors.append(f"docs/{page}: module `{dotted}` "
                              f"not found under src/")


def main() -> int:
    errors: List[str] = []
    for path in _doc_paths():
        text = path.read_text()
        _check_md_links(path, text, errors)
        _check_wiki_links(path, text, errors)
        _check_artifact_refs(path, text, errors)
    _check_module_refs(errors)
    for line in errors:
        print(line)
    if not errors:
        print(f"docs OK ({len(_doc_paths())} files checked)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
