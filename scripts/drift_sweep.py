#!/usr/bin/env python
"""Ext E9: online recalibration sweep across detection and budget knobs.

Sweeps the drift-aware online loop (``docs/drift.md``) across
Page–Hinkley thresholds and recalibration budgets while the
``turbulent`` plan's host-degrade channel slowly starves the CPU.
Every run is a full :class:`repro.drift.OnlineSupervisor` session:
initial fit, per-epoch observation, drift detection, budgeted refits,
warm-started redesigns — all journaled. Per configuration the table
records how many alarms fired, how much repair budget was spent, and
the *measured* workload seconds of the final incumbent on the final
(most-degraded) machine, so over- and under-sensitive settings are
directly comparable: a deaf threshold behaves like the open loop and
pays for it, an eager one burns budget early, the defaults land the
oracle-adjacent cost that ``BENCH_drift.json`` gates on.

Then the acceptance demo: the default-configuration run is killed
after a fixed number of journal units, resumed, and checked
**bit-identical** — calibrations, observations, drift events,
recalibrations, redesigns, and result all compare equal — to its
uninterrupted twin.

Writes ``benchmarks/results/ext_drift.txt`` (standard two-line
header, see EXPERIMENTS.md) and prints the table.

Run with ``PYTHONPATH=src python scripts/drift_sweep.py``.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro.core import MeasuredCostModel  # noqa: E402
from repro.core.problem import (  # noqa: E402
    VirtualizationDesignProblem,
    WorkloadSpec,
)
from repro.drift import DegradingWorld, OnlineSupervisor  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.recovery import RunJournal  # noqa: E402
from repro.util.tables import format_table  # noqa: E402
from repro.virt.machine import laboratory_machine  # noqa: E402
from repro.virt.resources import ResourceKind  # noqa: E402
from repro.workloads import build_tpch_database, tpch_query  # noqa: E402
from repro.workloads.workload import Workload  # noqa: E402

RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "ext_drift.txt"
SCALE_FACTOR = 0.002
GRID = 3
EPOCHS = 6
SURROGATE_BUDGET = 12
KILL_AFTER_UNITS = 9

#: The degradation regime every configuration faces.
PLAN = FaultPlan.named("turbulent").with_overrides(
    host_degrade_rate=0.35, host_degrade_factor=0.8)

#: The sweep: detection sensitivity first, then budget starvation.
#: ``deaf`` is the built-in open-loop control — its threshold is high
#: enough that the monitor never alarms.
CONFIGS = (
    ("eager", 0.02, 8),
    ("default", 0.05, 8),
    ("relaxed", 0.15, 8),
    ("deaf", 10.0, 8),
    ("starved", 0.05, 2),
)

JOURNAL_KINDS = ("calibration", "observation", "drift",
                 "recalibration", "redesign", "result")


def make_problem() -> VirtualizationDesignProblem:
    db = build_tpch_database(scale_factor=SCALE_FACTOR,
                             tables=["customer", "orders", "lineitem"])
    specs = [
        WorkloadSpec(Workload.repeat("q4", tpch_query("Q4"), 3), db),
        WorkloadSpec(Workload.repeat("q13", tpch_query("Q13"), 9), db),
    ]
    return VirtualizationDesignProblem(
        machine=laboratory_machine(), specs=specs,
        controlled_resources=(ResourceKind.CPU,),
    )


def final_machine():
    world = DegradingWorld(laboratory_machine(), PLAN)
    for _ in range(EPOCHS):
        world.advance()
    return world.machine


def run_online(threshold, budget, journal_path, max_units=None,
               resume=False):
    """One online session (or resume); returns (run, summary)."""
    obs.reset()
    supervisor = OnlineSupervisor(
        make_problem(), journal_path, plan=PLAN, epochs=EPOCHS,
        drift_threshold=threshold, recal_budget=budget,
        algorithm="greedy", grid=GRID,
        surrogate_budget=SURROGATE_BUDGET, max_units=max_units)
    run = supervisor.run(resume=resume)
    report = obs.RunReport.capture(label=f"drift/{threshold}")
    return run, report.summary


def measured_final_cost(problem, machine, run) -> float:
    """The incumbent's measured seconds on the final degraded host,
    planning with the run's own (possibly stale) surface."""
    measured = MeasuredCostModel(machine, calibration=run.surface)
    allocation = run.design.allocation
    return sum(
        measured.cost(problem.spec(name), allocation.vector_for(name))
        for name in sorted(allocation.workload_names()))


def journal_fingerprint(path):
    """Every committed record, by kind — the bit-identity witness."""
    journal = RunJournal.open(path)
    return {
        kind: [r.data for r in journal.records_of(kind)]
        for kind in JOURNAL_KINDS
    }


def main() -> int:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="drift_sweep_"))
    problem = make_problem()
    machine = final_machine()
    results = []
    for label, threshold, budget in CONFIGS:
        run, summary = run_online(threshold, budget,
                                  workdir / f"{label}.journal")
        assert run.completed
        results.append({
            "label": label, "threshold": threshold, "budget": budget,
            "run": run, "summary": summary,
            "final_cost": measured_final_cost(problem, machine, run),
        })

    rows = []
    for result in results:
        run = result["run"]
        rows.append([
            result["label"],
            f"{result['threshold']:g}",
            f"{result['budget']:d}",
            f"{len(run.events):d}",
            f"{run.recalibrations:d}",
            f"{run.redesigns:d}",
            f"{run.budget_spent}/{result['budget']}",
            f"{result['final_cost']:.6f}",
        ])
    table = format_table(
        ["config", "threshold", "budget", "alarms", "refits",
         "redesigns", "spent", "final cost (s)"],
        rows,
        title="Ext E9: online recalibration under host degradation "
              f"(greedy, CPU controlled, grid {GRID}, {EPOCHS} epochs, "
              f"plan {PLAN.name!r})",
    )

    # The kill/resume acceptance demo, on the default configuration.
    _label, threshold, budget = CONFIGS[1]
    twin_path = workdir / "default-twin.journal"
    killed_path = workdir / "default-killed.journal"
    twin, _ = run_online(threshold, budget, twin_path)
    killed, _ = run_online(threshold, budget, killed_path,
                           max_units=KILL_AFTER_UNITS)
    assert not killed.completed
    resumed, _ = run_online(threshold, budget, killed_path, resume=True)
    assert resumed.completed
    identical = journal_fingerprint(twin_path) == \
        journal_fingerprint(killed_path)
    footer = (
        f"Acceptance: the default run (threshold {threshold}, budget "
        f"{budget}) killed after {KILL_AFTER_UNITS} of {twin.new_units} "
        f"units and resumed ({resumed.replayed_units} replayed, "
        f"{resumed.new_units} fresh) is "
        f"{'bit-identical' if identical else 'DIVERGENT'} to the "
        f"uninterrupted run — calibrations, observations, drift events, "
        f"recalibrations, redesigns, and result all compare equal."
    )

    def across(key):
        return sum(r["summary"].get(key, 0) for r in results)

    alarms = sum(len(r["run"].events) for r in results)
    refits = sum(r["run"].recalibrations for r in results)
    counted = (
        f"# Counted work: calibration experiments="
        f"{across('calibration_experiments'):.0f} | cost-model evals="
        f"{across('cost_model_evaluations'):.0f} | drift alarms {alarms}, "
        f"refits {refits} across {len(CONFIGS)} configs x {EPOCHS} epochs"
    )
    header = "\n".join([
        "# Regenerate with: PYTHONPATH=src python scripts/drift_sweep.py",
        counted,
    ])
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(header + "\n\n" + table + "\n\n" + footer + "\n")

    print(table)
    print()
    print(footer)
    if not identical:
        print("FAIL: resumed run diverged from the uninterrupted run",
              file=sys.stderr)
        return 1
    deaf = next(r for r in results if r["label"] == "deaf")
    default = next(r for r in results if r["label"] == "default")
    if deaf["run"].events and deaf["run"].recalibrations:
        print("FAIL: the 'deaf' control was supposed to sleep through "
              "the degradation", file=sys.stderr)
        return 1
    if default["final_cost"] > deaf["final_cost"] + 1e-12:
        print("FAIL: the default closed loop lost to the deaf "
              "(open-loop) control", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
