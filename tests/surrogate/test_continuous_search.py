"""Continuous-allocation design: quality, determinism, crash recovery.

Three layers:

* the polish primitives (neighbour generation, anchoring, budget
  prefixes) behave deterministically in isolation;
* :func:`repro.surrogate.design_continuous` finds an allocation at
  least as good as the coarse dense grid while spending a bounded
  number of calibration requests, and its result is bit-identical
  whatever evaluation engine (worker count, pool kind) drives the
  search;
* a supervised continuous run killed at *every* journal-unit boundary
  and resumed produces the baseline journal bit for bit (the PR-3
  recovery contract, extended to surrogate fitting and polish).
"""

from __future__ import annotations

import pytest

from repro.core import OptimizerCostModel, VirtualizationDesigner
from repro.parallel import EvaluationEngine
from repro.recovery import RunJournal, RunSupervisor
from repro.surrogate import SurrogateBuilder, design_continuous, design_levels
from repro.surrogate.polish import (
    _affordable_prefix,
    _best_neighbor,
    _insertions,
)
from repro.virt.resources import ResourceKind

from tests.surrogate.conftest import (
    BUDGET,
    FINE_FACTOR,
    GRID,
    fresh_cache,
    tiny_workbench,
)

TOLERANCE = 0.3


def allocation_tuples(design):
    return {name: design.allocation.vector_for(name).as_tuple()
            for name in design.allocation.workload_names()}


def exact_total_cost(problem, allocation) -> float:
    """Cost of *allocation* under a fresh exact (non-surrogate) model."""
    model = OptimizerCostModel(fresh_cache())
    return sum(
        VirtualizationDesigner(problem, model).evaluate(allocation).values())


# -- polish primitives -------------------------------------------------------


class _SlopedModel:
    """cust-report profits 2x more from CPU than order-audit loses."""

    def cost(self, spec, allocation):
        share = allocation.share(ResourceKind.CPU)
        return -share if spec.name == "cust-report" else 0.5 * share


class _FlatModel:
    def cost(self, spec, allocation):
        return 1.0


class TestBestNeighbor:
    def test_moves_one_fine_unit_toward_the_gradient(self, surrogate_problem):
        allocation = surrogate_problem.default_allocation()
        fine = GRID * FINE_FACTOR
        step = 1.0 / fine
        moved = _best_neighbor(surrogate_problem, allocation,
                               _SlopedModel(), fine)
        assert moved is not None
        assert moved["cust-report"].share(ResourceKind.CPU) \
            == pytest.approx(0.5 + step)
        assert moved["order-audit"].share(ResourceKind.CPU) \
            == pytest.approx(0.5 - step)

    def test_ties_break_lexicographically(self, surrogate_problem):
        """Under a flat cost every transfer ties; the winner must be
        the lexicographically first (resource, donor, recipient)."""
        allocation = surrogate_problem.default_allocation()
        fine = GRID * FINE_FACTOR
        moved = _best_neighbor(surrogate_problem, allocation,
                               _FlatModel(), fine)
        assert moved is not None
        # sorted names: cust-report donates to order-audit
        assert moved["cust-report"].share(ResourceKind.CPU) \
            < moved["order-audit"].share(ResourceKind.CPU)

    def test_infeasible_moves_are_skipped(self, surrogate_problem):
        fine = GRID * FINE_FACTOR
        step = 1.0 / fine
        allocation = surrogate_problem.default_allocation()
        names = sorted(allocation.workload_names())
        squeezed = allocation
        for name, cpu in zip(names, (step, 1.0 - step)):
            squeezed = squeezed.with_vector(
                name, squeezed.vector_for(name).with_share(
                    ResourceKind.CPU, cpu))
        moved = _best_neighbor(surrogate_problem, squeezed,
                               _SlopedModel(), fine)
        # cust-report already holds the feasibility cap; only the
        # reverse (cost-increasing) transfer remains.
        assert moved is None or (
            moved["cust-report"].share(ResourceKind.CPU) < 1.0 - step + 1e-9)


@pytest.fixture(scope="package")
def coarse_surface(surrogate_problem):
    levels = design_levels(surrogate_problem, GRID, FINE_FACTOR)
    builder = SurrogateBuilder(fresh_cache(), tolerance=10.0)
    return builder.build(levels[ResourceKind.CPU],
                         levels[ResourceKind.MEMORY],
                         levels[ResourceKind.IO]).surface


class TestInsertions:
    def test_anchors_come_before_midpoints(self, coarse_surface):
        fine = GRID * FINE_FACTOR
        inserts = _insertions(coarse_surface, [(0, 0.25)], fine)
        assert inserts == [(0, 0.25)]

    def test_anchored_targets_subdivide_their_brackets(self, coarse_surface):
        fine = GRID * FINE_FACTOR
        levels = coarse_surface.axis_levels(0)
        mid = levels[1]
        inserts = _insertions(coarse_surface, [(0, mid)], fine)
        expected = sorted([
            (0, round((levels[0] + mid) / 2, 4)),
            (0, round((mid + levels[2]) / 2, 4)),
        ])
        assert inserts == expected

    def test_fine_enough_brackets_need_nothing(self, surrogate_problem):
        levels = design_levels(surrogate_problem, GRID, FINE_FACTOR)
        builder = SurrogateBuilder(fresh_cache(), tolerance=10.0)
        # Brackets of exactly one fine-grid step (1/10) around the target.
        surface = builder.build((0.4, 0.5, 0.6),
                                levels[ResourceKind.MEMORY],
                                levels[ResourceKind.IO]).surface
        assert _insertions(surface, [(0, 0.5)], fine=10) == []


class TestAffordablePrefix:
    def test_exhausted_budget_affords_nothing(self, surrogate_problem):
        levels = design_levels(surrogate_problem, GRID, FINE_FACTOR)
        builder = SurrogateBuilder(fresh_cache(), tolerance=10.0,
                                   max_calibrations=3)
        surface = builder.build(levels[ResourceKind.CPU],
                                levels[ResourceKind.MEMORY],
                                levels[ResourceKind.IO]).surface
        assert builder.remaining == 0
        assert _affordable_prefix(builder, surface,
                                  [(0, 0.3), (0, 0.7)]) == []

    def test_partial_budget_takes_the_longest_prefix(self, surrogate_problem):
        levels = design_levels(surrogate_problem, GRID, FINE_FACTOR)
        builder = SurrogateBuilder(fresh_cache(), tolerance=10.0,
                                   max_calibrations=4)
        surface = builder.build(levels[ResourceKind.CPU],
                                levels[ResourceKind.MEMORY],
                                levels[ResourceKind.IO]).surface
        assert builder.remaining == 1
        assert _affordable_prefix(builder, surface,
                                  [(0, 0.3), (0, 0.7)]) == [(0, 0.3)]


# -- design_continuous -------------------------------------------------------


@pytest.fixture(scope="package")
def continuous(surrogate_problem):
    cache = fresh_cache()
    outcome = design_continuous(
        surrogate_problem, cache, algorithm="greedy", grid=GRID,
        fine_factor=FINE_FACTOR, tolerance=TOLERANCE,
        max_calibrations=BUDGET)
    return outcome, cache


class TestDesignContinuous:
    def test_budget_is_respected(self, continuous):
        outcome, cache = continuous
        assert outcome.calibrations <= BUDGET
        assert cache.n_calibrations <= BUDGET

    def test_final_surface_is_attached_to_the_cache(self, continuous):
        outcome, cache = continuous
        assert cache.surrogate is outcome.surface

    def test_allocation_lands_on_the_fine_lattice(self, continuous):
        outcome, _cache = continuous
        fine = GRID * FINE_FACTOR
        for name in outcome.design.allocation.workload_names():
            share = outcome.design.allocation.vector_for(name).share(
                ResourceKind.CPU)
            assert round(share * fine, 6) == pytest.approx(
                round(share * fine))

    def test_converged_incumbent_is_anchored_and_exactly_costed(
            self, continuous, surrogate_problem):
        outcome, _cache = continuous
        if not outcome.converged:
            pytest.skip("budget stopped polish before convergence")
        levels = [round(v, 4) for v in outcome.surface.axis_levels(0)]
        for name in outcome.design.allocation.workload_names():
            share = outcome.design.allocation.vector_for(name).share(
                ResourceKind.CPU)
            assert round(share, 4) in levels
        # Anchored shares are key-quantized to 4 decimals, so the knot's
        # calibration ran at a share within 1e-4 of the allocation's —
        # exact up to that quantization, not bit-exact.
        assert outcome.design.predicted_total_cost == pytest.approx(
            exact_total_cost(surrogate_problem, outcome.design.allocation),
            rel=1e-4)

    def test_matches_or_beats_the_coarse_grid(self, continuous,
                                              surrogate_problem):
        """The acceptance property at test scale: the continuous answer
        must cost no more (exactly evaluated) than the best the coarse
        dense grid can do."""
        outcome, _cache = continuous
        designer = VirtualizationDesigner(
            surrogate_problem, OptimizerCostModel(fresh_cache()))
        coarse = designer.design("exhaustive", grid=GRID)
        continuous_cost = exact_total_cost(surrogate_problem,
                                           outcome.design.allocation)
        assert continuous_cost <= coarse.predicted_total_cost + 1e-9


class TestEngineDeterminism:
    @pytest.mark.parametrize("workers,pool", [(2, "thread"), (2, "process"),
                                              (4, "thread")])
    def test_result_is_bit_identical_across_engines(
            self, surrogate_problem, continuous, workers, pool):
        baseline, _cache = continuous
        with EvaluationEngine(workers=workers, pool=pool) as engine:
            outcome = design_continuous(
                surrogate_problem, fresh_cache(), algorithm="greedy",
                grid=GRID, fine_factor=FINE_FACTOR, tolerance=TOLERANCE,
                max_calibrations=BUDGET, engine=engine)
        assert allocation_tuples(outcome.design) \
            == allocation_tuples(baseline.design)
        assert outcome.design.predicted_total_cost \
            == baseline.design.predicted_total_cost
        assert outcome.calibrations == baseline.calibrations
        assert outcome.converged == baseline.converged
        assert outcome.surface.knots == baseline.surface.knots


# -- supervised kill -> resume ----------------------------------------------


def make_continuous_supervisor(problem, path, **kwargs) -> RunSupervisor:
    kwargs.setdefault("workbench", tiny_workbench())
    return RunSupervisor(problem, path, algorithm="greedy", grid=GRID,
                         continuous=True, fine_factor=FINE_FACTOR,
                         surrogate_tol=TOLERANCE, surrogate_budget=BUDGET,
                         **kwargs)


def journal_fingerprint(journal):
    return {
        "calibrations": [r.data for r in journal.records_of("calibration")],
        "results": [r.data for r in journal.records_of("result")],
    }


@pytest.mark.recovery
class TestContinuousResumeEquivalence:
    def test_kill_at_every_unit_boundary_then_resume(
            self, surrogate_problem, tmp_path):
        baseline_path = tmp_path / "baseline.journal"
        baseline = make_continuous_supervisor(
            surrogate_problem, baseline_path).run()
        assert baseline.completed
        fingerprint = journal_fingerprint(RunJournal.open(baseline_path))
        total = baseline.new_units
        assert total >= 2

        for k in range(1, total):
            path = tmp_path / f"kill-at-{k}.journal"
            killed = make_continuous_supervisor(
                surrogate_problem, path, max_units=k).run()
            assert not killed.completed, f"kill at k={k} did not stop"

            resumed = make_continuous_supervisor(
                surrogate_problem, path).run(resume=True)
            assert resumed.completed, f"resume after k={k} did not finish"
            assert journal_fingerprint(RunJournal.open(path)) \
                == fingerprint, (
                    f"resumed journal diverged after a kill at unit {k}")
