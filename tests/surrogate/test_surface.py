"""The parameter surface: exactness, bounds, guards, persistence.

The contract under test (docs/surrogate.md):

* a lookup at a calibrated knot returns the *exact* calibrated
  parameters — the surrogate never degrades what it was fitted to;
* a lookup between knots is a monotonicity-clamped blend, so every
  ratio parameter stays inside the range its bracketing knots span;
* a lookup outside the hull is clamped onto it (never extrapolated)
  and counted as such;
* ``as_dict``/``from_dict`` round-trip bit-exactly, including through
  the calibration cache's v3 on-disk format.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.calibration.cache import _CACHE_FORMAT
from repro.obs import metrics
from repro.surrogate import (
    ParameterSurface,
    RATIO_NAMES,
    SurrogateBuilder,
    blend_corners,
    design_levels,
)
from repro.util.errors import SurrogateError
from repro.virt.resources import ResourceKind, ResourceVector

from tests.surrogate.conftest import FINE_FACTOR, GRID, fresh_cache


@pytest.fixture(scope="package")
def fitted(surrogate_problem):
    """A loosely-fitted surface (no refinement) plus its cache."""
    cache = fresh_cache()
    levels = design_levels(surrogate_problem, GRID, FINE_FACTOR)
    builder = SurrogateBuilder(cache, tolerance=10.0)
    report = builder.build(levels[ResourceKind.CPU],
                           levels[ResourceKind.MEMORY],
                           levels[ResourceKind.IO])
    return report.surface, cache


def vector(knot) -> ResourceVector:
    return ResourceVector.of(cpu=knot[0], memory=knot[1], io=knot[2])


class TestKnotExactness:
    def test_every_knot_returns_the_exact_calibration(self, fitted):
        surface, cache = fitted
        for knot in surface.knots:
            exact = cache.params_for(vector(knot), exact=True)
            assert surface.params_for(vector(knot)).as_dict() \
                == exact.as_dict()

    def test_knot_lookups_pay_no_calibration(self, fitted):
        surface, cache = fitted
        before = cache.n_calibrations
        for knot in surface.knots:
            surface.params_for(vector(knot))
        assert cache.n_calibrations == before

    def test_knot_lookups_count_as_hits(self, fitted):
        surface, _cache = fitted
        registry = metrics.get_registry()
        before = registry.value("surrogate.lookups", result="hit")
        surface.params_for(vector(surface.knots[0]))
        assert registry.value("surrogate.lookups", result="hit") \
            == before + 1


class TestInterpolationBounds:
    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_ratio_params_stay_inside_the_knot_envelope(self, fitted,
                                                        fraction):
        """Monotonicity clamp: no blended ratio parameter can leave the
        [min, max] range observed across the calibrated knots."""
        surface, _cache = fitted
        lo, hi = surface.axis_levels(0)[0], surface.axis_levels(0)[-1]
        cpu = lo + fraction * (hi - lo)
        knot = surface.knots[0]
        predicted = surface.params_for(
            ResourceVector.of(cpu=cpu, memory=knot[1], io=knot[2])).as_dict()
        observed = [surface.knot_params(k).as_dict() for k in surface.knots]
        for name in RATIO_NAMES + ("seconds_per_seq_page",):
            values = [p[name] for p in observed]
            assert min(values) - 1e-12 <= predicted[name] \
                <= max(values) + 1e-12, name

    def test_midpoint_matches_the_two_corner_blend(self, fitted):
        """params_for between two adjacent knots is exactly the
        documented two-corner time-domain blend."""
        surface, _cache = fitted
        levels = surface.axis_levels(0)
        lo, hi = levels[0], levels[1]
        knot = surface.knots[0]
        mid = round((lo + hi) / 2, 4)  # key-quantized, so not exactly 0.5
        fraction = (mid - lo) / (hi - lo)
        expected = blend_corners(
            [(surface.knot_params((lo, knot[1], knot[2])), 1.0 - fraction),
             (surface.knot_params((hi, knot[1], knot[2])), fraction)],
            clamp=True)
        predicted = surface.params_for(
            ResourceVector.of(cpu=mid, memory=knot[1], io=knot[2])).as_dict()
        for name in RATIO_NAMES + ("seconds_per_seq_page",):
            assert predicted[name] == pytest.approx(
                expected.as_dict()[name], rel=1e-9), name
        # The integer capacity fields truncate after the blend; the
        # 8-corner and 2-corner summation orders may land one apart.
        for name in ("effective_cache_size", "sort_mem_pages"):
            assert abs(predicted[name] - expected.as_dict()[name]) <= 1, name

    def test_interpolated_lookups_are_counted(self, fitted):
        surface, _cache = fitted
        levels = surface.axis_levels(0)
        mid = round((levels[0] + levels[1]) / 2, 4)
        knot = surface.knots[0]
        registry = metrics.get_registry()
        before = registry.value("surrogate.lookups", result="interpolated")
        surface.params_for(
            ResourceVector.of(cpu=mid, memory=knot[1], io=knot[2]))
        assert registry.value("surrogate.lookups",
                              result="interpolated") == before + 1


class TestExtrapolationGuards:
    def test_outside_the_hull_clamps_to_the_boundary(self, fitted):
        surface, _cache = fitted
        knot = surface.knots[0]
        lo = surface.axis_levels(0)[0]
        outside = ResourceVector.of(cpu=max(lo / 2, 1e-4),
                                    memory=knot[1], io=knot[2])
        on_boundary = ResourceVector.of(cpu=lo, memory=knot[1], io=knot[2])
        assert surface.params_for(outside).as_dict() \
            == surface.params_for(on_boundary).as_dict()

    def test_guard_firings_are_counted(self, fitted):
        surface, _cache = fitted
        knot = surface.knots[0]
        registry = metrics.get_registry()
        before = registry.value("surrogate.lookups", result="clamped")
        surface.params_for(
            ResourceVector.of(cpu=0.9999, memory=knot[1], io=knot[2]))
        assert registry.value("surrogate.lookups",
                              result="clamped") == before + 1

    def test_covers_reports_the_hull(self, fitted):
        surface, _cache = fitted
        knot = surface.knots[0]
        lo, hi = surface.axis_levels(0)[0], surface.axis_levels(0)[-1]
        inside = ResourceVector.of(cpu=(lo + hi) / 2, memory=knot[1],
                                   io=knot[2])
        outside = ResourceVector.of(cpu=0.9999, memory=knot[1], io=knot[2])
        assert surface.covers(inside)
        assert not surface.covers(outside)


class TestPersistence:
    def test_dict_round_trip_is_exact(self, fitted):
        surface, _cache = fitted
        clone = ParameterSurface.from_dict(surface.as_dict())
        assert clone.knots == surface.knots
        assert clone.tolerance == surface.tolerance
        for knot in surface.knots:
            assert clone.knot_params(knot).as_dict() \
                == surface.knot_params(knot).as_dict()

    def test_unknown_format_is_rejected(self, fitted):
        surface, _cache = fitted
        payload = surface.as_dict()
        payload["format"] = "repro-surrogate-fit/999"
        with pytest.raises(SurrogateError, match="format"):
            ParameterSurface.from_dict(payload)

    def test_incomplete_lattice_is_rejected(self, fitted):
        surface, _cache = fitted
        # Three corners of a 2x2 (cpu x memory) lattice: the axes imply
        # four knots, so the missing corner is a hole. (On a 1-D lattice
        # any subset is complete — a 2-D shape is the smallest that can
        # have one.)
        params = surface.knot_params(surface.knots[0])
        knots = {(0.3, 0.4, 0.5): params, (0.3, 0.6, 0.5): params,
                 (0.7, 0.4, 0.5): params}
        with pytest.raises(SurrogateError, match="incomplete"):
            ParameterSurface(knots)

    def test_cache_v3_round_trip_serves_the_same_surface(self, fitted,
                                                         tmp_path):
        surface, cache = fitted
        cache.attach_surrogate(surface)
        path = tmp_path / "calibration.json"
        cache.save(path)
        assert f'"{_CACHE_FORMAT}"' in path.read_text()

        loaded_cache = fresh_cache()
        loaded_cache.load(path)
        loaded = loaded_cache.surrogate
        assert loaded is not None
        assert loaded.knots == surface.knots
        probe = vector(surface.knots[0])
        assert loaded.params_for(probe).as_dict() \
            == surface.params_for(probe).as_dict()
