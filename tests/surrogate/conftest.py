"""Shared fixtures for the surrogate tests.

Same shape as the recovery suite's problem — two TPC-H workloads
competing for CPU on the laboratory machine — with the reduced
calibration workbench, so fitting a full surface costs milliseconds
per knot and the determinism tests can afford to re-run entire
continuous designs several times.
"""

from __future__ import annotations

import pytest

from repro.calibration import CalibrationCache, CalibrationRunner
from repro.calibration.synthetic import (
    HUGE_TABLE,
    SMALL_TABLE,
    CalibrationWorkbench,
)
from repro.core import VirtualizationDesignProblem, WorkloadSpec
from repro.virt.machine import laboratory_machine
from repro.virt.resources import ResourceKind
from repro.workloads import Workload, build_tpch_database, tpch_query

#: The continuous-design configuration used across these tests: a
#: 3-unit coarse grid searched at 12 fine units.
GRID = 3
FINE_FACTOR = 4
BUDGET = 12


def tiny_workbench() -> CalibrationWorkbench:
    return CalibrationWorkbench(rows={
        SMALL_TABLE: 200,
        "cal_scan_a": 1_000,
        "cal_scan_b": 2_000,
        "cal_scan_c": 3_000,
        HUGE_TABLE: 4_000,
    })


def fresh_cache() -> CalibrationCache:
    """A cold cache over its own reduced-workbench runner."""
    return CalibrationCache(
        CalibrationRunner(laboratory_machine(), workbench=tiny_workbench()))


@pytest.fixture(scope="package")
def surrogate_problem() -> VirtualizationDesignProblem:
    db = build_tpch_database(scale_factor=0.002,
                             tables=["customer", "orders", "lineitem"])
    specs = [
        WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 1), db),
        WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 2), db),
    ]
    return VirtualizationDesignProblem(
        machine=laboratory_machine(), specs=specs,
        controlled_resources=(ResourceKind.CPU,),
    )
