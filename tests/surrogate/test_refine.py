"""Adaptive refinement: error control, budgets, replay, extension.

The budget contract matters most here: the builder counts calibration
*requests* — a knot answered instantly from a warm cache still spends a
budget unit — so every stop decision is a pure function of the knot
sequence. That is what makes a journal-replayed (killed-and-resumed)
fit bit-identical to an uninterrupted one, tested below via the warm
cache that journal replay produces.
"""

from __future__ import annotations

import pytest

from repro.surrogate import SurrogateBuilder, design_levels
from repro.util.errors import SurrogateError
from repro.virt.resources import ResourceKind

from tests.surrogate.conftest import FINE_FACTOR, GRID, fresh_cache


@pytest.fixture(scope="package")
def axis_levels(surrogate_problem):
    levels = design_levels(surrogate_problem, GRID, FINE_FACTOR)
    return (levels[ResourceKind.CPU], levels[ResourceKind.MEMORY],
            levels[ResourceKind.IO])


def lattice_size(axis_levels) -> int:
    cpu, memory, io = axis_levels
    return len(cpu) * len(memory) * len(io)


class TestDesignLevels:
    def test_controlled_axis_spans_the_fine_search_range(
            self, surrogate_problem):
        levels = design_levels(surrogate_problem, GRID, FINE_FACTOR)
        cpu = levels[ResourceKind.CPU]
        fine = GRID * FINE_FACTOR
        assert len(cpu) == 3
        assert cpu[0] == round(1.0 / fine, 4)
        assert cpu[-1] == round(1.0 - 1.0 / fine, 4)

    def test_uncontrolled_axes_keep_their_fixed_shares(
            self, surrogate_problem):
        levels = design_levels(surrogate_problem, GRID, FINE_FACTOR)
        for kind in (ResourceKind.MEMORY, ResourceKind.IO):
            assert levels[kind] == (0.5,)


class TestBuild:
    def test_loose_tolerance_calibrates_only_the_lattice(self, axis_levels):
        builder = SurrogateBuilder(fresh_cache(), tolerance=10.0)
        report = builder.build(*axis_levels)
        assert report.refinements == 0
        assert not report.stopped
        assert report.calibrations == lattice_size(axis_levels)
        assert report.surface.n_knots == lattice_size(axis_levels)

    def test_tight_tolerance_refines_to_the_error_target(self, axis_levels):
        builder = SurrogateBuilder(fresh_cache(), tolerance=0.05,
                                   max_calibrations=40)
        report = builder.build(*axis_levels)
        assert report.refinements >= 1
        assert report.surface.n_knots > lattice_size(axis_levels)
        if not report.stopped:
            assert all(error <= 0.05
                       for _axis, _level, error in report.scores)
            assert report.worst_error <= 0.05

    def test_budget_stops_refinement_without_overshooting(self, axis_levels):
        budget = lattice_size(axis_levels) + 1
        builder = SurrogateBuilder(fresh_cache(), tolerance=1e-6,
                                   max_calibrations=budget)
        report = builder.build(*axis_levels)
        assert report.stopped
        assert report.calibrations <= budget
        assert builder.remaining >= 0

    def test_budget_below_the_lattice_is_an_error(self, axis_levels):
        builder = SurrogateBuilder(
            fresh_cache(), max_calibrations=lattice_size(axis_levels) - 1)
        with pytest.raises(SurrogateError, match="initial lattice"):
            builder.build(*axis_levels)


class TestReplayEquivalence:
    def test_warm_cache_rebuild_is_bit_identical(self, axis_levels):
        """A resumed fit replays its knots from the journal into the
        cache and re-runs the builder; the warm cache answers instantly
        but each request still spends budget, so the rebuilt surface
        and the stop decision match the original exactly."""
        cache = fresh_cache()
        first = SurrogateBuilder(cache, tolerance=0.05, max_calibrations=20)
        original = first.build(*axis_levels)
        experiments = cache.n_calibrations

        second = SurrogateBuilder(cache, tolerance=0.05, max_calibrations=20)
        rebuilt = second.build(*axis_levels)

        assert cache.n_calibrations == experiments  # replay pays nothing
        assert second.spent == first.spent          # but budget agrees
        assert rebuilt.stopped == original.stopped
        assert rebuilt.surface.knots == original.surface.knots
        for knot in original.surface.knots:
            assert rebuilt.surface.knot_params(knot).as_dict() \
                == original.surface.knot_params(knot).as_dict()


class TestReserveAndExtend:
    def test_reserve_is_held_back_from_refinement(self, axis_levels):
        budget = lattice_size(axis_levels) + 2
        builder = SurrogateBuilder(fresh_cache(), tolerance=1e-6,
                                   max_calibrations=budget)
        report = builder.build(*axis_levels, reserve=2)
        assert report.stopped
        assert builder.spent == lattice_size(axis_levels)
        assert builder.budget_allows(2)  # the reserve is released

    def test_negative_reserve_is_rejected(self, axis_levels):
        builder = SurrogateBuilder(fresh_cache())
        with pytest.raises(SurrogateError, match="reserve"):
            builder.build(*axis_levels, reserve=-1)

    def test_extension_cost_counts_each_new_plane_once(self, axis_levels):
        builder = SurrogateBuilder(fresh_cache(), tolerance=10.0)
        surface = builder.build(*axis_levels).surface
        # One new CPU level = one knot (memory and io are single-level);
        # duplicates and already-present levels are free.
        assert builder.extension_cost(surface, [(0, 0.3)]) == 1
        assert builder.extension_cost(surface, [(0, 0.3), (0, 0.3)]) == 1
        assert builder.extension_cost(
            surface, [(0, surface.axis_levels(0)[0])]) == 0
        assert builder.extension_cost(surface, [(0, 0.3), (0, 0.7)]) == 2

    def test_extend_calibrates_and_keeps_old_knots_exact(self, axis_levels):
        builder = SurrogateBuilder(fresh_cache(), tolerance=10.0)
        original = builder.build(*axis_levels).surface
        spent = builder.spent
        extended = builder.extend(original, [(0, 0.3)])
        assert builder.spent == spent + 1
        assert 0.3 in extended.axis_levels(0)
        for knot in original.knots:
            assert extended.knot_params(knot).as_dict() \
                == original.knot_params(knot).as_dict()

    def test_extend_with_known_levels_is_free(self, axis_levels):
        builder = SurrogateBuilder(fresh_cache(), tolerance=10.0)
        surface = builder.build(*axis_levels).surface
        spent = builder.spent
        assert builder.extend(
            surface, [(0, surface.axis_levels(0)[0])]) is surface
        assert builder.spent == spent

    def test_extend_past_the_budget_raises(self, axis_levels):
        budget = lattice_size(axis_levels) + 1
        builder = SurrogateBuilder(fresh_cache(), tolerance=10.0,
                                   max_calibrations=budget)
        surface = builder.build(*axis_levels).surface
        surface = builder.extend(surface, [(0, 0.3)])  # spends the budget
        assert not builder.budget_allows(1)
        with pytest.raises(SurrogateError, match="extension_cost"):
            builder.extend(surface, [(0, 0.7)])

    def test_extend_order_does_not_change_the_surface(self, axis_levels):
        a = SurrogateBuilder(fresh_cache(), tolerance=10.0)
        b = SurrogateBuilder(fresh_cache(), tolerance=10.0)
        surface_a = a.extend(a.build(*axis_levels).surface,
                             [(0, 0.7), (0, 0.3)])
        surface_b = b.extend(b.build(*axis_levels).surface,
                             [(0, 0.3), (0, 0.7)])
        assert surface_a.knots == surface_b.knots
        for knot in surface_a.knots:
            assert surface_a.knot_params(knot).as_dict() \
                == surface_b.knot_params(knot).as_dict()
