"""Tests for the deterministic random source."""

import pathlib
import subprocess
import sys

import pytest

from repro.util.rng import DeterministicRng

SRC_DIR = str(pathlib.Path(__file__).resolve().parent.parent.parent / "src")


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.randint(0, 100) for _ in range(20)] == \
            [b.randint(0, 100) for _ in range(20)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10_000) for _ in range(10)] != \
            [b.randint(0, 10_000) for _ in range(10)]

    def test_fork_is_deterministic(self):
        a = DeterministicRng(5).fork("child")
        b = DeterministicRng(5).fork("child")
        assert a.uniform(0, 1) == b.uniform(0, 1)

    def test_fork_labels_independent(self):
        root = DeterministicRng(5)
        assert root.fork("x").randint(0, 10**9) != root.fork("y").randint(0, 10**9)

    def test_fork_unaffected_by_parent_draws(self):
        a = DeterministicRng(5)
        a.randint(0, 100)  # consume parent state
        b = DeterministicRng(5)
        assert a.fork("c").uniform(0, 1) == b.fork("c").uniform(0, 1)

    def test_seed_property(self):
        assert DeterministicRng(123).seed == 123

    def test_fork_is_stable_across_processes(self):
        """fork() must not depend on PYTHONHASHSEED.

        Regression: forked seeds were once derived with ``hash()``,
        whose per-process string-hash randomization silently made every
        "deterministic" experiment vary run to run.
        """
        script = ("from repro.util.rng import DeterministicRng; "
                  "print(DeterministicRng(5).fork('child').seed)")
        seeds = set()
        for hashseed in ("1", "2"):
            out = subprocess.run(
                [sys.executable, "-c", script],
                env={"PYTHONHASHSEED": hashseed, "PYTHONPATH": SRC_DIR},
                capture_output=True, text=True, check=True,
            )
            seeds.add(int(out.stdout))
        assert len(seeds) == 1
        assert seeds == {DeterministicRng(5).fork("child").seed}


class TestHelpers:
    def test_randint_bounds(self):
        rng = DeterministicRng(0)
        values = [rng.randint(3, 5) for _ in range(200)]
        assert set(values) == {3, 4, 5}

    def test_uniform_bounds(self):
        rng = DeterministicRng(0)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value < 3.0

    def test_choice(self):
        rng = DeterministicRng(0)
        options = ("a", "b", "c")
        assert all(rng.choice(options) in options for _ in range(50))

    def test_sample_distinct(self):
        rng = DeterministicRng(0)
        sample = rng.sample(list(range(100)), 10)
        assert len(sample) == len(set(sample)) == 10

    def test_shuffle_permutes(self):
        rng = DeterministicRng(0)
        data = list(range(50))
        rng.shuffle(data)
        assert sorted(data) == list(range(50))

    def test_zipf_uniform_when_zero_skew(self):
        rng = DeterministicRng(0)
        values = [rng.zipf_index(5, 0.0) for _ in range(500)]
        assert set(values) == {0, 1, 2, 3, 4}

    def test_zipf_skews_to_head(self):
        rng = DeterministicRng(0)
        values = [rng.zipf_index(10, 2.0) for _ in range(1000)]
        head = sum(1 for v in values if v == 0)
        tail = sum(1 for v in values if v == 9)
        assert head > tail * 5

    def test_zipf_rejects_empty(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).zipf_index(0, 1.0)

    def test_noise_factor_centered(self):
        rng = DeterministicRng(0)
        values = [rng.noise_factor(0.05) for _ in range(500)]
        mean = sum(values) / len(values)
        assert 0.95 < mean < 1.05

    def test_noise_factor_floored(self):
        rng = DeterministicRng(0)
        assert all(rng.noise_factor(1.0) >= 0.5 for _ in range(200))

    def test_noise_factor_zero_sigma(self):
        assert DeterministicRng(0).noise_factor(0.0) == 1.0
