"""Marker hygiene: every pytest marker used in tests/ is registered.

An unregistered marker silently selects nothing with ``-m`` — the CI
chaos job would skip an entire suite without failing. This audit walks
the test tree for ``pytest.mark.<name>`` uses and checks each against
the ``[tool.pytest.ini_options] markers`` list in pyproject.toml.
"""

import re
import tomllib
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

#: Marks pytest ships with; using them unregistered is fine.
BUILTIN_MARKS = {
    "parametrize", "skip", "skipif", "xfail", "filterwarnings",
    "usefixtures",
}

_MARK_USE = re.compile(r"pytest\.mark\.([A-Za-z_][A-Za-z0-9_]*)")


def registered_markers() -> set:
    payload = tomllib.loads((REPO / "pyproject.toml").read_text())
    entries = payload["tool"]["pytest"]["ini_options"]["markers"]
    return {entry.split(":", 1)[0].strip() for entry in entries}


def used_markers() -> dict:
    """marker name -> list of 'path:line' uses across tests/."""
    uses = {}
    for path in sorted((REPO / "tests").rglob("*.py")):
        for number, line in enumerate(path.read_text().splitlines(), 1):
            for name in _MARK_USE.findall(line):
                uses.setdefault(name, []).append(
                    f"{path.relative_to(REPO)}:{number}")
    return uses


class TestMarkerRegistration:
    def test_every_used_marker_is_registered(self):
        registered = registered_markers()
        unknown = {
            name: sites for name, sites in used_markers().items()
            if name not in BUILTIN_MARKS and name not in registered
        }
        assert not unknown, (
            "unregistered pytest markers in the test tree (add them to "
            f"[tool.pytest.ini_options] markers in pyproject.toml): "
            f"{unknown}")

    def test_the_selectable_suites_are_in_use(self):
        """The markers CI selects on must actually mark something."""
        uses = used_markers()
        for name in ("chaos", "recovery", "drift", "serve"):
            assert uses.get(name), f"marker {name!r} is registered but unused"
