"""Tests for the report table formatter."""

import pytest

from repro.util.tables import format_table


def test_basic_alignment():
    text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "value" in lines[0]
    assert lines[1].startswith("----")
    assert lines[2].startswith("a")
    assert lines[3].startswith("bb")


def test_title_underlined():
    text = format_table(["x"], [[1]], title="My Table")
    lines = text.splitlines()
    assert lines[0] == "My Table"
    assert lines[1] == "=" * len("My Table")


def test_float_formatting():
    text = format_table(["v"], [[0.123456789]])
    assert "0.1235" in text


def test_wide_cells_extend_columns():
    text = format_table(["h"], [["a-very-long-cell-value"]])
    header, rule, row = text.splitlines()
    assert len(rule) >= len("a-very-long-cell-value")


def test_row_width_mismatch_raises():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_empty_rows_ok():
    text = format_table(["a"], [])
    assert "a" in text
