"""Tests for unit conversions."""

import pytest

from repro.util.units import (
    GIB,
    KIB,
    MIB,
    PAGE_SIZE,
    bytes_to_pages,
    mib_to_pages,
    pages_to_mib,
)


def test_constants_consistent():
    assert KIB == 1024
    assert MIB == 1024 * KIB
    assert GIB == 1024 * MIB
    assert PAGE_SIZE == 8 * KIB


def test_bytes_to_pages_rounds_up():
    assert bytes_to_pages(0) == 0
    assert bytes_to_pages(1) == 1
    assert bytes_to_pages(PAGE_SIZE) == 1
    assert bytes_to_pages(PAGE_SIZE + 1) == 2


def test_bytes_to_pages_rejects_negative():
    with pytest.raises(ValueError):
        bytes_to_pages(-1)


def test_mib_to_pages_floors():
    assert mib_to_pages(1) == MIB // PAGE_SIZE == 128
    assert mib_to_pages(0.5) == 64
    assert mib_to_pages(0) == 0


def test_mib_to_pages_rejects_negative():
    with pytest.raises(ValueError):
        mib_to_pages(-0.1)


def test_pages_to_mib_roundtrip():
    assert pages_to_mib(mib_to_pages(16)) == pytest.approx(16.0)


def test_pages_to_mib_rejects_negative():
    with pytest.raises(ValueError):
        pages_to_mib(-1)
