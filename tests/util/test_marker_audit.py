"""Tier-1 shim around scripts/check_markers.py.

Runs the marker audit (every marker used in tests/ registered, every
workflow ``-m`` selection registered AND non-empty) as part of the
regular suite so marker rot cannot slip past a local run. The script
stays independently runnable (``python scripts/check_markers.py``) and
is the version CI's lint job enforces.
"""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_markers.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_markers", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_marker_audit_passes(capsys):
    checker = _load_checker()
    code = checker.main()
    output = capsys.readouterr().err
    assert code == 0, f"marker audit failed:\n{output}"


def test_workflows_select_the_expected_suites():
    """The chaos job's four suites must all be seen by the audit."""
    checker = _load_checker()
    selections = checker.workflow_selections()
    assert {"chaos", "recovery", "drift", "serve"} <= set(selections)


def test_audit_detects_unregistered_workflow_marker(tmp_path, monkeypatch):
    """The audit must actually fail on a bad selection, not vacuously pass."""
    checker = _load_checker()
    workflows = tmp_path / ".github" / "workflows"
    workflows.mkdir(parents=True)
    (workflows / "ci.yml").write_text(
        "      - run: PYTHONPATH=src python -m pytest -q "
        '-m "chaos or no_such_suite"\n')
    tests = tmp_path / "tests"
    tests.mkdir()
    # Built by concatenation so this file's own source never contains
    # a scannable marker-use literal (the audit greps all of tests/).
    mark = "@pytest" + ".mark."
    (tests / "test_x.py").write_text(
        "import pytest\n\n"
        f"{mark}chaos\n"
        f"{mark}rogue\n"
        "def test_x():\n    pass\n")
    (tmp_path / "pyproject.toml").write_text(
        "[tool.pytest.ini_options]\n"
        'markers = ["chaos: x", "empty_suite: y"]\n')
    monkeypatch.setattr(checker, "REPO_ROOT", tmp_path)
    errors = "\n".join(checker.audit())
    # A test-tree marker missing from pyproject.toml.
    assert "'rogue' is not registered" in errors
    # A workflow selection on a marker pytest does not know about.
    assert "'no_such_suite', which is not registered" in errors
    # A registered selection that matches nothing must also fail.
    (workflows / "nightly.yml").write_text(
        "      - run: PYTHONPATH=src python -m pytest -q -m empty_suite\n")
    errors = "\n".join(checker.audit())
    assert "'empty_suite', but no test" in errors
    assert checker.main() == 1


def test_audit_parses_quoted_and_bare_expressions(tmp_path, monkeypatch):
    checker = _load_checker()
    workflows = tmp_path / ".github" / "workflows"
    workflows.mkdir(parents=True)
    (workflows / "ci.yml").write_text(
        "      - run: pytest -m 'drift and not serve'\n"
        "      - run: pytest -q -m chaos\n")
    (tmp_path / "tests").mkdir()
    (tmp_path / "pyproject.toml").write_text(
        "[tool.pytest.ini_options]\nmarkers = []\n")
    monkeypatch.setattr(checker, "REPO_ROOT", tmp_path)
    selections = checker.workflow_selections()
    # ``or``/``and``/``not`` are expression keywords, never markers.
    assert set(selections) == {"drift", "serve", "chaos"}
