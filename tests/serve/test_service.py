"""Tests for the design service core: batching, ladder, deadlines."""

from __future__ import annotations

import pytest

from repro.serve import CircuitBreaker, DesignRequest, ServeConfig, WhatIfRequest
from repro.serve.requests import (
    ANSWERED,
    DEGRADED,
    REJECTED,
    TIER_BATCHED,
    TIER_CLAMPED,
    TIER_FRESH,
    TIER_STALE,
    TIER_WARM,
)

from tests.serve.conftest import make_service


def whatif(share=0.5, workload="cust-report", tenant="t1", arrival=0.0,
           deadline=1.0):
    return WhatIfRequest(tenant=tenant, workload=workload,
                         allocation=(share, 0.5, 0.5), arrival=arrival,
                         deadline_seconds=deadline)


class TestWhatIfBatches:
    def test_batch_answers_all_members(self, serve_problem, booted):
        service = make_service(serve_problem, booted)
        batch = [whatif(0.25), whatif(0.5, workload="order-audit"),
                 whatif(0.75)]
        responses = service.process_batch(batch)
        assert [r.request for r in responses] == batch
        assert all(r.status == ANSWERED and r.tier == TIER_BATCHED
                   for r in responses)
        assert all(r.cost > 0 for r in responses)

    def test_duplicates_collapse_to_one_evaluation(self, serve_problem,
                                                   booted):
        config = ServeConfig()
        service = make_service(serve_problem, booted, config=config)
        batch = [whatif(0.5) for _ in range(6)]
        responses = service.process_batch(batch)
        costs = {r.cost for r in responses}
        assert len(costs) == 1
        # Simulated charge covers one fresh evaluation, not six.
        assert service.clock.now == pytest.approx(
            config.batch_overhead_seconds + config.eval_seconds)

    def test_unknown_workload_is_typed(self, serve_problem, booted):
        service = make_service(serve_problem, booted)
        [response] = service.process_batch([whatif(workload="nope")])
        assert response.status == REJECTED
        assert response.error == "ServeError"
        assert response.reason == "unknown-workload"

    def test_out_of_hull_is_degraded_clamped(self, serve_problem, booted):
        service = make_service(serve_problem, booted)
        [response] = service.process_batch([whatif(0.02)])
        assert response.status == DEGRADED
        assert response.tier == TIER_CLAMPED
        assert response.cost > 0

    def test_expired_while_queued_abandoned_at_deadline(self, serve_problem,
                                                        booted):
        service = make_service(serve_problem, booted)
        service.clock.advance(5.0)
        request = whatif(arrival=0.0, deadline=1.0)
        [response] = service.process_batch([request])
        assert response.status == REJECTED
        assert response.error == "DeadlineExceeded"
        assert response.completed_at == request.deadline_at

    def test_unguaranteeable_deadline_refused_before_running(
            self, serve_problem, booted):
        config = ServeConfig(eval_seconds=1.0, batch_overhead_seconds=1.0)
        service = make_service(serve_problem, booted, config=config)
        # Worst case is 2s of simulated work; a 1s budget cannot make it.
        [response] = service.process_batch([whatif(deadline=1.0)])
        assert response.status == REJECTED
        assert response.reason == "deadline"
        assert response.completed_at <= response.request.deadline_at


def design(tenant="t1", delta=None, prefer_fresh=False, arrival=0.0,
           deadline=30.0):
    return DesignRequest(tenant=tenant, delta=delta or {},
                         prefer_fresh=prefer_fresh, arrival=arrival,
                         deadline_seconds=deadline)


class TestDesignLadder:
    def test_warm_tier_is_the_default_answer(self, serve_problem, booted):
        service = make_service(serve_problem, booted)
        [response] = service.process_batch(
            [design(delta={"cust-report": 3})])
        assert response.tier == TIER_WARM
        assert response.ok
        assert service.design_seq == 1
        assert set(response.allocation) == {"cust-report", "order-audit"}
        # The answer became the incumbent.
        assert response.cost == service.incumbent.predicted_total_cost

    def test_fresh_tier_runs_when_preferred_and_affordable(
            self, serve_problem, booted):
        service = make_service(serve_problem, booted,
                               runner=booted["runner"])
        [response] = service.process_batch(
            [design(delta={"cust-report": 1}, prefer_fresh=True,
                    deadline=60.0)])
        assert response.tier == TIER_FRESH
        assert response.ok

    def test_open_breaker_degrades_to_warm(self, serve_problem, booted):
        breaker = CircuitBreaker(trip_after=1)
        breaker.record_failure(0.0, transient=True)
        service = make_service(serve_problem, booted,
                               runner=booted["runner"], breaker=breaker)
        [response] = service.process_batch(
            [design(delta={"cust-report": 1}, prefer_fresh=True,
                    deadline=60.0)])
        assert response.tier == TIER_WARM
        assert response.status == DEGRADED  # a rung below the preference

    def test_tight_budget_serves_stale(self, serve_problem, booted):
        config = ServeConfig()
        service = make_service(serve_problem, booted, config=config)
        # Enough for the stale evaluation, far below the warm floor.
        deadline = (config.batch_overhead_seconds
                    + 4 * config.eval_seconds)
        [response] = service.process_batch(
            [design(delta={"cust-report": 3}, deadline=deadline)])
        assert response.tier == TIER_STALE
        assert response.status == DEGRADED
        assert response.completed_at <= response.request.deadline_at

    def test_hopeless_budget_is_refused_in_deadline(self, serve_problem,
                                                    booted):
        service = make_service(serve_problem, booted)
        [response] = service.process_batch(
            [design(delta={"cust-report": 3}, deadline=1e-4)])
        assert response.status == REJECTED
        assert response.error == "DeadlineExceeded"
        assert response.reason == "refused"
        assert response.completed_at <= response.request.deadline_at
        # A refusal commits nothing.
        assert service.design_seq == 0

    def test_bad_delta_is_typed(self, serve_problem, booted):
        service = make_service(serve_problem, booted)
        for delta in ({"nope": 2}, {"cust-report": -1},
                      {"cust-report": 0, "order-audit": 0}):
            [response] = service.process_batch([design(delta=delta)])
            assert response.status == REJECTED
            assert response.reason in ("bad-delta",)
        assert service.design_seq == 0

    def test_delta_removes_and_projection_renormalizes(self, serve_problem,
                                                       booted):
        service = make_service(serve_problem, booted)
        [response] = service.process_batch(
            [design(delta={"order-audit": 0})])
        assert response.ok
        assert set(response.allocation) == {"cust-report"}
        # A later delta can resurrect the removed catalog workload.
        [back] = service.process_batch(
            [design(delta={"order-audit": 2}, arrival=service.clock.now)])
        assert back.ok
        assert set(back.allocation) == {"cust-report", "order-audit"}

    def test_every_response_is_typed_and_in_deadline(self, serve_problem,
                                                     booted):
        service = make_service(serve_problem, booted)
        batch = [
            whatif(0.25), whatif(0.98), whatif(workload="nope"),
            design(delta={"cust-report": 2}),
            design(delta={"bogus": 1}),
            design(deadline=1e-5),
        ]
        for response in service.process_batch(batch):
            assert response.status in (ANSWERED, DEGRADED, REJECTED)
            if response.status == REJECTED:
                assert response.error is not None
                assert response.reason is not None
            assert response.completed_at <= response.request.deadline_at
