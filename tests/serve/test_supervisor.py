"""Tests for the serve supervisor: journaling, stats, typed outcomes."""

from __future__ import annotations

import pytest

from repro import obs
from repro.faults import FaultPlan
from repro.recovery import RunJournal
from repro.serve import SessionStats
from repro.serve.requests import ANSWERED, DEGRADED, REJECTED, ServeResponse, WhatIfRequest
from repro.serve.supervisor import quantile
from repro.util.errors import RecoveryError

from tests.serve.conftest import CHAOS_SCENARIO, make_supervisor


class TestQuantile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert quantile(values, 0.50) == 2.0
        assert quantile(values, 0.99) == 4.0
        assert quantile(values, 0.25) == 1.0
        assert quantile([], 0.5) == 0.0
        assert quantile([7.0], 0.99) == 7.0


def response(status, reason=None, tier=None, latency=0.0):
    request = WhatIfRequest(tenant="t", workload="w",
                            allocation=(0.5, 0.5, 0.5), arrival=1.0)
    return ServeResponse(request=request, status=status, tier=tier,
                         reason=reason, completed_at=1.0 + latency)


class TestSessionStats:
    def test_accounting(self):
        responses = [
            response(ANSWERED, tier="batched", latency=0.010),
            response(ANSWERED, tier="batched", latency=0.020),
            response(DEGRADED, tier="clamped", latency=0.030),
            response(REJECTED, reason="quota"),
            response(REJECTED, reason="overloaded"),
            response(REJECTED, reason="deadline"),
        ]
        stats = SessionStats.from_responses(responses)
        assert stats.requests == 6
        assert (stats.answered, stats.degraded, stats.rejected) == (2, 1, 3)
        assert stats.shed == 2                 # quota + overloaded only
        assert stats.shed_rate == pytest.approx(2 / 6)
        assert stats.degraded_fraction == pytest.approx(1 / 3)
        assert stats.by_tier == {"batched": 2, "clamped": 1}
        assert stats.by_reason == {"quota": 1, "overloaded": 1,
                                   "deadline": 1}
        # Percentiles cover served requests only.
        assert stats.p50_seconds == pytest.approx(0.020)
        assert stats.p99_seconds == pytest.approx(0.030)
        assert stats.as_dict()["requests"] == 6


@pytest.mark.serve
class TestSupervisedSession:
    def test_benign_session_completes_with_typed_responses(
            self, serve_problem, tmp_path):
        obs.reset()
        supervisor = make_supervisor(serve_problem,
                                     tmp_path / "serve.journal",
                                     FaultPlan(name="none"))
        run = supervisor.run()
        assert run.completed
        assert len(run.responses) == CHAOS_SCENARIO.requests
        assert run.stats.requests == CHAOS_SCENARIO.requests
        assert (run.stats.answered + run.stats.degraded
                + run.stats.rejected) == run.stats.requests
        for r in run.responses:
            assert r.status in (ANSWERED, DEGRADED, REJECTED)
            assert r.completed_at <= r.request.deadline_at
            if r.status == REJECTED:
                assert r.error is not None and r.reason is not None
        # The journal ends in exactly one result record.
        journal = RunJournal.open(tmp_path / "serve.journal")
        results = journal.records_of("result")
        assert len(results) == 1
        assert results[0].data["design_seq"] == run.design_seq
        assert run.design is not None
        assert run.design_seq > 0

    def test_resume_requires_matching_identity(self, serve_problem,
                                               tmp_path):
        obs.reset()
        path = tmp_path / "serve.journal"
        supervisor = make_supervisor(serve_problem, path,
                                     FaultPlan(name="none"), max_units=2)
        run = supervisor.run()
        assert not run.completed
        mismatched = make_supervisor(serve_problem, path,
                                     FaultPlan(name="flaky"))
        with pytest.raises(RecoveryError, match="plan"):
            mismatched.run(resume=True)
