"""Chaos: kill the serving session at every unit boundary, resume, compare.

The serve counterpart of ``tests/drift/test_resume_equivalence.py`` and
the acceptance test for the service's crash-safety story: a session
killed after *any* number of journaled units (boot-fit calibrations,
fresh-tier recalibrations, committed incumbents — including kills
landing mid-batch, between a batch's journaled units) and resumed must
reproduce the uninterrupted session bit-identically — the same journal,
the same final incumbent allocation, and the same response stream
(statuses, tiers, costs, and completion timestamps included).
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.faults import FaultPlan
from repro.recovery import RunJournal

from tests.serve.conftest import (
    design_allocation,
    journal_fingerprint,
    make_supervisor,
    response_stream,
)

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def turbulent_plan() -> FaultPlan:
    return FaultPlan.named("turbulent")


@pytest.fixture(scope="module")
def baseline(serve_problem, turbulent_plan, tmp_path_factory):
    """One uninterrupted serving session, shared by the sweep."""
    obs.reset()
    path = tmp_path_factory.mktemp("serve-baseline") / "serve.journal"
    supervisor = make_supervisor(serve_problem, path, turbulent_plan)
    run = supervisor.run()
    assert run.completed
    return {
        "run": run,
        "fingerprint": journal_fingerprint(RunJournal.open(path)),
        "allocation": design_allocation(run.design),
        "stream": response_stream(run.responses),
        "total_units": run.new_units,
    }


class TestKillResumeEquivalence:
    def test_baseline_exercises_the_interesting_paths(self, baseline):
        run = baseline["run"]
        # The sweep only proves something if the session actually
        # journals designs and walks several ladder tiers.
        assert run.design_seq >= 3
        assert baseline["total_units"] >= 10
        assert run.stats.rejected > 0
        assert len(run.stats.by_tier) >= 2

    def test_kill_at_every_unit_boundary_resumes_bit_identically(
            self, serve_problem, turbulent_plan, baseline, tmp_path):
        for kill_after in range(1, baseline["total_units"]):
            path = tmp_path / f"kill-{kill_after}.journal"
            obs.reset()
            killed = make_supervisor(serve_problem, path, turbulent_plan,
                                     max_units=kill_after)
            partial = killed.run()
            assert not partial.completed
            assert partial.new_units == kill_after

            obs.reset()
            resumed = make_supervisor(serve_problem, path, turbulent_plan)
            run = resumed.run(resume=True)
            assert run.completed, f"resume after {kill_after} units failed"
            assert run.replayed_units == kill_after

            assert journal_fingerprint(RunJournal.open(path)) == \
                baseline["fingerprint"], f"journal diverged at {kill_after}"
            assert design_allocation(run.design) == baseline["allocation"]
            assert response_stream(run.responses) == baseline["stream"]

    def test_double_resume_is_idempotent(self, serve_problem,
                                         turbulent_plan, baseline,
                                         tmp_path):
        path = tmp_path / "twice.journal"
        obs.reset()
        make_supervisor(serve_problem, path, turbulent_plan,
                        max_units=7).run()
        obs.reset()
        first = make_supervisor(serve_problem, path,
                                turbulent_plan).run(resume=True)
        assert first.completed
        obs.reset()
        second = make_supervisor(serve_problem, path,
                                 turbulent_plan).run(resume=True)
        assert second.completed
        # Everything replays; nothing is recommitted, result included.
        assert second.new_units == 0
        assert journal_fingerprint(RunJournal.open(path)) == \
            baseline["fingerprint"]
        assert response_stream(second.responses) == baseline["stream"]
