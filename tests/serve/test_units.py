"""Unit tests: simulated clock, token buckets, circuit breaker."""

from __future__ import annotations

import pytest

from repro.faults import RetryPolicy
from repro.serve import CircuitBreaker, SimulatedClock, TenantQuotas, TokenBucket
from repro.util.errors import ServeError


class TestSimulatedClock:
    def test_advances_monotonically(self):
        clock = SimulatedClock()
        assert clock.now == 0.0
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.0) == 1.5
        assert clock.advance_to(3.0) == 3.0
        # advance_to never goes backwards.
        assert clock.advance_to(2.0) == 3.0

    def test_negative_advance_is_typed(self):
        with pytest.raises(ServeError):
            SimulatedClock().advance(-0.1)


class TestTokenBucket:
    def test_starts_full_and_refills_lazily(self):
        bucket = TokenBucket(4.0, 2.0)
        assert bucket.tokens(0.0) == 4.0
        for _ in range(4):
            assert bucket.try_take(0.0, 1.0)
        assert not bucket.try_take(0.0, 1.0)
        # 0.5 simulated seconds later one token has refilled.
        assert bucket.try_take(0.5, 1.0)
        assert not bucket.try_take(0.5, 1.0)

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(2.0, 10.0)
        assert bucket.try_take(0.0, 2.0)
        assert bucket.tokens(100.0) == 2.0

    def test_failed_take_charges_nothing(self):
        bucket = TokenBucket(2.0, 0.0)
        assert not bucket.try_take(0.0, 3.0)
        assert bucket.tokens(0.0) == 2.0

    def test_bad_parameters_are_typed(self):
        with pytest.raises(ServeError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ServeError):
            TokenBucket(1.0, -1.0)

    def test_quotas_isolate_tenants(self):
        quotas = TenantQuotas(2.0, 0.0)
        assert quotas.try_admit("a", 0.0, 2.0)
        assert not quotas.try_admit("a", 0.0, 1.0)
        # Tenant b has its own untouched bucket.
        assert quotas.try_admit("b", 0.0, 2.0)


def policy() -> RetryPolicy:
    return RetryPolicy(backoff_base_seconds=1.0, backoff_multiplier=2.0,
                       max_backoff_seconds=8.0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_transient_failures(self):
        breaker = CircuitBreaker(trip_after=3, retry_policy=policy())
        for _ in range(2):
            breaker.record_failure(0.0, transient=True)
        assert breaker.state(0.0) == CircuitBreaker.CLOSED
        breaker.record_failure(0.0, transient=True)
        assert breaker.state(0.0) == CircuitBreaker.OPEN
        assert breaker.trips == 1
        assert not breaker.allow(0.5)

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(trip_after=2, retry_policy=policy())
        breaker.record_failure(0.0, transient=True)
        breaker.record_success()
        breaker.record_failure(0.0, transient=True)
        assert breaker.state(0.0) == CircuitBreaker.CLOSED

    def test_permanent_failures_never_trip(self):
        breaker = CircuitBreaker(trip_after=1, retry_policy=policy())
        for _ in range(5):
            breaker.record_failure(0.0, transient=False)
        assert breaker.state(0.0) == CircuitBreaker.CLOSED

    def test_half_open_allows_one_probe(self):
        breaker = CircuitBreaker(trip_after=1, retry_policy=policy())
        breaker.record_failure(0.0, transient=True)
        assert breaker.state(0.5) == CircuitBreaker.OPEN
        # Cooldown after trip 1 is backoff_seconds(1) = 1.0s.
        assert breaker.state(1.0) == CircuitBreaker.HALF_OPEN
        assert breaker.allow(1.0)          # the single probe slot
        assert not breaker.allow(1.0)      # concurrent probe refused
        breaker.record_success()
        assert breaker.state(1.0) == CircuitBreaker.CLOSED

    def test_failed_probe_reopens_with_longer_cooldown(self):
        breaker = CircuitBreaker(trip_after=1, retry_policy=policy())
        breaker.record_failure(0.0, transient=True)
        assert breaker.allow(1.0)
        breaker.record_failure(1.0, transient=True)
        assert breaker.trips == 2
        # Cooldown is now backoff_seconds(2) = 2.0s from the re-open.
        assert breaker.state(2.5) == CircuitBreaker.OPEN
        assert breaker.state(3.0) == CircuitBreaker.HALF_OPEN
