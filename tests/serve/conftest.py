"""Shared fixtures for the always-on design service tests.

Same affordability trick as the drift suite: one TPC-H query unit per
workload, the reduced calibration workbench, a 3-level grid. The boot
fit (surface + incumbent) is expensive, so it is computed once per
package and every test builds a cheap fresh :class:`DesignService`
around the shared immutable fit.
"""

from __future__ import annotations

import pytest

from repro.calibration import CalibrationCache, CalibrationRunner
from repro.calibration.synthetic import (
    HUGE_TABLE,
    SMALL_TABLE,
    CalibrationWorkbench,
)
from repro.core.problem import VirtualizationDesignProblem, WorkloadSpec
from repro.serve import (
    DesignService,
    ServeConfig,
    ServeScenario,
    ServeSupervisor,
    SimulatedClock,
)
from repro.surrogate import design_continuous
from repro.virt.machine import laboratory_machine
from repro.virt.resources import ResourceKind
from repro.workloads import Workload, build_tpch_database, tpch_query

GRID = 3
SURROGATE_BUDGET = 12


def tiny_workbench() -> CalibrationWorkbench:
    return CalibrationWorkbench(rows={
        SMALL_TABLE: 200,
        "cal_scan_a": 1_000,
        "cal_scan_b": 2_000,
        "cal_scan_c": 3_000,
        HUGE_TABLE: 4_000,
    })


def build_problem() -> VirtualizationDesignProblem:
    db = build_tpch_database(scale_factor=0.002,
                             tables=["customer", "orders", "lineitem"])
    specs = [
        WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 1), db),
        WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 2), db),
    ]
    return VirtualizationDesignProblem(
        machine=laboratory_machine(), specs=specs,
        controlled_resources=(ResourceKind.CPU,),
    )


@pytest.fixture(scope="package")
def serve_problem() -> VirtualizationDesignProblem:
    return build_problem()


@pytest.fixture(scope="package")
def booted(serve_problem):
    """One fault-free boot fit (surface + incumbent), shared read-only."""
    runner = CalibrationRunner(serve_problem.machine,
                               workbench=tiny_workbench())
    cache = CalibrationCache(runner)
    outcome = design_continuous(
        serve_problem, cache, algorithm="greedy", grid=GRID,
        tolerance=0.05, max_calibrations=SURROGATE_BUDGET)
    return {"surface": outcome.surface, "incumbent": outcome.design,
            "runner": runner}


def make_service(problem, booted, *, config=None, runner=None,
                 breaker=None, journal=None, replay=None) -> DesignService:
    """A fresh service around the shared boot fit, clock at zero."""
    service = DesignService(
        problem, booted["surface"], booted["incumbent"],
        config=config or ServeConfig(), clock=SimulatedClock(),
        runner=runner, journal=journal, replay=replay, breaker=breaker)
    service.configure_search("greedy", GRID, 8)
    return service


#: Chaos-sweep settings (mirrored by the baseline fixture): generous
#: quotas so design requests actually run, a short dense trace, and the
#: turbulent plan hitting the fresh tier's calibrations.
CHAOS_SCENARIO = ServeScenario(seed=3, requests=60, rate=50.0,
                               design_every=6, design_deadline=20.0)
CHAOS_CONFIG = ServeConfig(quota_capacity=40.0, quota_refill_rate=40.0)


def make_supervisor(problem, path, plan, **kwargs) -> ServeSupervisor:
    kwargs.setdefault("scenario", CHAOS_SCENARIO)
    kwargs.setdefault("config", CHAOS_CONFIG)
    kwargs.setdefault("grid", GRID)
    kwargs.setdefault("surrogate_budget", SURROGATE_BUDGET)
    kwargs.setdefault("workbench", tiny_workbench())
    return ServeSupervisor(problem, path, plan=plan, **kwargs)


def journal_fingerprint(journal):
    """Every committed record, in order, as plain data."""
    return [(record.kind, record.data) for record in journal.records]


def design_allocation(design):
    return {name: design.allocation.vector_for(name).as_tuple()
            for name in design.allocation.workload_names()}


def response_stream(responses):
    """The order-sensitive, comparison-friendly view of a session."""
    return [(type(r.request).__name__, r.request.tenant, r.status,
             r.tier, r.error, r.reason, r.cost, r.completed_at)
            for r in responses]
