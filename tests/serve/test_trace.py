"""Tests for the seeded open-loop trace generator."""

from __future__ import annotations

import pytest

from repro.serve import DesignRequest, ServeScenario, WhatIfRequest, generate_trace
from repro.util.errors import ServeError

NAMES = ["cust-report", "order-audit"]


class TestGenerateTrace:
    def test_pure_function_of_scenario(self):
        scenario = ServeScenario(seed=11, requests=50)
        a = generate_trace(scenario, NAMES)
        b = generate_trace(scenario, list(reversed(NAMES)))
        assert a == b

    def test_seed_changes_the_trace(self):
        base = ServeScenario(seed=1, requests=50)
        other = ServeScenario(seed=2, requests=50)
        assert generate_trace(base, NAMES) != generate_trace(other, NAMES)

    def test_arrivals_sorted_and_positive(self):
        trace = generate_trace(ServeScenario(requests=80), NAMES)
        arrivals = [r.arrival for r in trace]
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)

    def test_design_requests_every_nth(self):
        scenario = ServeScenario(requests=60, design_every=10)
        trace = generate_trace(scenario, NAMES)
        for index, request in enumerate(trace):
            if (index + 1) % 10 == 0:
                assert isinstance(request, DesignRequest)
            else:
                assert isinstance(request, WhatIfRequest)

    def test_requests_name_catalog_workloads_only(self):
        trace = generate_trace(ServeScenario(requests=100), NAMES)
        for request in trace:
            if isinstance(request, WhatIfRequest):
                assert request.workload in NAMES
            else:
                assert set(request.delta) <= set(NAMES)
                assert all(count >= 0 for count in request.delta.values())

    def test_tenants_and_deadlines_in_range(self):
        scenario = ServeScenario(requests=100, tenants=3,
                                 whatif_deadline=1.0, design_deadline=30.0,
                                 tight_fraction=0.5)
        trace = generate_trace(scenario, NAMES)
        tenants = {r.tenant for r in trace}
        assert tenants <= {"tenant-1", "tenant-2", "tenant-3"}
        assert len(tenants) > 1  # the Zipf draw spreads at this size
        for request in trace:
            if isinstance(request, WhatIfRequest):
                assert request.deadline_seconds in (1.0, 0.25)
            else:
                assert request.deadline_seconds in (30.0, 7.5)

    def test_bad_scenarios_are_typed(self):
        with pytest.raises(ServeError):
            generate_trace(ServeScenario(requests=0), NAMES)
        with pytest.raises(ServeError):
            generate_trace(ServeScenario(rate=0.0), NAMES)
        with pytest.raises(ServeError):
            generate_trace(ServeScenario(), [])

    def test_roundtrips_through_dict(self):
        scenario = ServeScenario(seed=5, requests=33, rate=17.5)
        assert ServeScenario.from_dict(scenario.as_dict()) == scenario
