"""Tests for the daemon shell: admission, live batching, trace driving."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs import metrics
from repro.serve import (
    DesignRequest,
    ServeConfig,
    ServeDaemon,
    ServeScenario,
    WhatIfRequest,
    generate_trace,
)
from repro.serve.requests import ANSWERED, REJECTED

from tests.serve.conftest import make_service


def whatif(tenant="t1", share=0.5, arrival=0.0, deadline=5.0):
    return WhatIfRequest(tenant=tenant, workload="cust-report",
                         allocation=(share, 0.5, 0.5), arrival=arrival,
                         deadline_seconds=deadline)


class TestAdmission:
    def test_dead_on_arrival_deadline(self, serve_problem, booted):
        daemon = ServeDaemon(make_service(serve_problem, booted))
        rejection = daemon.try_admit(whatif(deadline=0.0))
        assert rejection.status == REJECTED
        assert rejection.error == "DeadlineExceeded"
        assert rejection.reason == "deadline"

    def test_full_queue_sheds_overloaded(self, serve_problem, booted):
        config = ServeConfig(max_queue=2, quota_capacity=100.0)
        daemon = ServeDaemon(make_service(serve_problem, booted,
                                          config=config))
        assert daemon.try_admit(whatif()) is None
        daemon._queue.append((whatif(), None))
        daemon._queue.append((whatif(), None))
        rejection = daemon.try_admit(whatif())
        assert rejection.error == "Overloaded"
        assert rejection.reason == "overloaded"

    def test_empty_bucket_sheds_quota(self, serve_problem, booted):
        config = ServeConfig(quota_capacity=2.0, quota_refill_rate=0.0)
        daemon = ServeDaemon(make_service(serve_problem, booted,
                                          config=config))
        before = metrics.get_registry().total("serve.shed")
        assert daemon.try_admit(whatif()) is None
        assert daemon.try_admit(whatif()) is None
        rejection = daemon.try_admit(whatif())
        assert rejection.error == "QuotaExceeded"
        assert rejection.reason == "quota"
        # Another tenant is unaffected by the hot tenant's bucket.
        assert daemon.try_admit(whatif(tenant="t2")) is None
        assert metrics.get_registry().total("serve.shed") - before == 1

    def test_design_requests_cost_more_tokens(self, serve_problem, booted):
        config = ServeConfig(quota_capacity=5.0, quota_refill_rate=0.0)
        daemon = ServeDaemon(make_service(serve_problem, booted,
                                          config=config))
        request = DesignRequest(tenant="t1", delta={"cust-report": 2})
        assert daemon.try_admit(request) is None      # 4 tokens
        rejection = daemon.try_admit(request)         # 1 token left
        assert rejection.error == "QuotaExceeded"


class TestLiveBatcher:
    def test_concurrent_submits_resolve_through_one_batcher(
            self, serve_problem, booted):
        config = ServeConfig(quota_capacity=100.0, quota_refill_rate=100.0)
        daemon = ServeDaemon(make_service(serve_problem, booted,
                                          config=config))

        async def session():
            batcher = asyncio.ensure_future(daemon.serve_batches())
            requests = [whatif(tenant=f"t{i % 3}", share=0.25 + 0.125 * (i % 5))
                        for i in range(12)]
            responses = await asyncio.gather(
                *(daemon.submit(request) for request in requests))
            daemon.close()
            await batcher
            return requests, responses

        requests, responses = asyncio.run(session())
        assert [r.request for r in responses] == requests
        assert all(r.status == ANSWERED for r in responses)
        assert daemon.queue_depth == 0

    def test_submit_returns_shed_immediately(self, serve_problem, booted):
        config = ServeConfig(quota_capacity=1.0, quota_refill_rate=0.0)
        daemon = ServeDaemon(make_service(serve_problem, booted,
                                          config=config))

        async def session():
            # No batcher running: the shed answer must not need one.
            first = asyncio.ensure_future(daemon.submit(whatif()))
            await asyncio.sleep(0)
            shed = await daemon.submit(whatif())
            first.cancel()
            return shed

        shed = asyncio.run(session())
        assert shed.status == REJECTED
        assert shed.error == "QuotaExceeded"


class TestRunTrace:
    def test_one_response_per_request_no_deadlock(self, serve_problem,
                                                  booted):
        scenario = ServeScenario(seed=5, requests=40, rate=60.0,
                                 design_every=10)
        service = make_service(
            serve_problem, booted,
            config=ServeConfig(quota_capacity=30.0, quota_refill_rate=30.0))
        daemon = ServeDaemon(service)
        trace = generate_trace(scenario, serve_problem.workload_names())
        responses = asyncio.run(daemon.run_trace(trace))
        assert len(responses) == len(trace)
        assert {id(r.request) for r in responses} == {id(r) for r in trace}
        for response in responses:
            assert response.completed_at <= response.request.deadline_at
            if response.status == REJECTED:
                assert response.error is not None

    def test_clock_jumps_across_idle_gaps(self, serve_problem, booted):
        service = make_service(serve_problem, booted)
        daemon = ServeDaemon(service)
        late = whatif(arrival=100.0)
        responses = asyncio.run(daemon.run_trace([late]))
        assert responses[0].status == ANSWERED
        assert service.clock.now >= 100.0
        assert responses[0].latency_seconds < 1.0
