"""Integration: the library's instrumentation agrees with its returns.

The metrics registry is a second account of work the library already
reports through return values (``SearchResult.evaluations``,
``CostModel.evaluations``). These tests run real searches and check the
two accounts agree exactly — the property that makes run reports
trustworthy.
"""

import pytest

from repro import obs
from repro.core.cost_model import CostModel
from repro.core.problem import VirtualizationDesignProblem, WorkloadSpec
from repro.core.search import ExhaustiveSearch, GreedySearch
from repro.engine.database import Database
from repro.virt.machine import PhysicalMachine
from repro.virt.resources import ResourceKind, ResourceVector
from repro.workloads.workload import Workload


class SyntheticCostModel(CostModel):
    """cost_i(R) = weight_i / cpu share — analytic and instant."""

    kind = "synthetic"

    def __init__(self, weights):
        super().__init__()
        self._weights = weights

    def _cost(self, spec, allocation: ResourceVector) -> float:
        return self._weights[spec.name] / max(allocation.cpu, 1e-9)


@pytest.fixture
def problem_and_model():
    weights = {"oltp": 1.0, "batch": 4.0}
    specs = [
        WorkloadSpec(Workload(name, ["select 1 from t"]), Database(name))
        for name in weights
    ]
    problem = VirtualizationDesignProblem(
        machine=PhysicalMachine(), specs=specs,
        controlled_resources=(ResourceKind.CPU,),
    )
    return problem, SyntheticCostModel(weights)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


class TestSearchAccounting:
    def test_greedy_metrics_match_search_result(self, problem_and_model):
        problem, model = problem_and_model
        result = GreedySearch(grid=8).search(problem, model)
        registry = obs.get_registry()
        assert registry.value("search.runs", algorithm="greedy") == 1
        assert registry.value(
            "search.evaluations", algorithm="greedy"
        ) == result.evaluations
        # SearchResult.evaluations counts *uncached* cost computations,
        # so it must equal the cost-model counter exactly; memoized
        # requests are accounted separately
        evals = registry.total("cost_model.evaluations")
        assert evals == model.evaluations == result.evaluations
        assert registry.total("cost_model.memo_hits") >= 0

    def test_exhaustive_metrics_match_search_result(self, problem_and_model):
        problem, model = problem_and_model
        result = ExhaustiveSearch(grid=6).search(problem, model)
        registry = obs.get_registry()
        assert registry.value(
            "search.evaluations", algorithm="exhaustive"
        ) == result.evaluations

    def test_runs_accumulate_per_algorithm(self, problem_and_model):
        problem, model = problem_and_model
        first = GreedySearch(grid=4).search(problem, model)
        second = GreedySearch(grid=4).search(problem, model)
        registry = obs.get_registry()
        assert registry.value("search.runs", algorithm="greedy") == 2
        assert registry.value(
            "search.evaluations", algorithm="greedy"
        ) == first.evaluations + second.evaluations

    def test_search_span_recorded(self, problem_and_model):
        problem, model = problem_and_model
        GreedySearch(grid=4).search(problem, model)
        agg = obs.get_recorder().aggregate()
        assert agg["search"]["count"] == 1
        (root,) = obs.get_recorder().roots
        assert root.tags["algorithm"] == "greedy"

    def test_run_report_reflects_the_search(self, problem_and_model):
        problem, model = problem_and_model
        result = GreedySearch(grid=8).search(problem, model)
        report = obs.RunReport.capture("integration")
        assert report.summary["cost_model_evaluations"] == result.evaluations
        assert "greedy" in report.to_text()
