"""Unit tests for nested timed spans."""

import pytest

from repro.obs.spans import SpanRecorder


@pytest.fixture
def recorder():
    return SpanRecorder()


class TestNesting:
    def test_children_attach_to_enclosing_span(self, recorder):
        with recorder.span("outer") as outer:
            with recorder.span("inner"):
                with recorder.span("leaf"):
                    pass
            with recorder.span("inner"):
                pass
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert [c.name for c in outer.children[0].children] == ["leaf"]
        # only the outermost span is a root
        assert [r.name for r in recorder.roots] == ["outer"]

    def test_sibling_roots(self, recorder):
        with recorder.span("a"):
            pass
        with recorder.span("b"):
            pass
        assert [r.name for r in recorder.roots] == ["a", "b"]

    def test_current_tracks_the_stack(self, recorder):
        assert recorder.current() is None
        with recorder.span("outer"):
            assert recorder.current().name == "outer"
            with recorder.span("inner"):
                assert recorder.current().name == "inner"
            assert recorder.current().name == "outer"
        assert recorder.current() is None

    def test_stack_unwinds_on_exception(self, recorder):
        with pytest.raises(ValueError):
            with recorder.span("outer"):
                with recorder.span("inner"):
                    raise ValueError("boom")
        assert recorder.current() is None
        (root,) = recorder.roots
        assert root.name == "outer" and root.end is not None
        assert root.children[0].end is not None


class TestTiming:
    def test_parent_duration_covers_children(self, recorder):
        with recorder.span("outer") as outer:
            with recorder.span("inner") as inner:
                pass
        assert outer.duration >= inner.duration >= 0.0
        assert outer.start <= inner.start
        assert outer.end >= inner.end

    def test_open_span_reports_zero_duration(self, recorder):
        with recorder.span("outer") as outer:
            assert outer.duration == 0.0
        assert outer.duration > 0.0

    def test_tags_are_stringified(self, recorder):
        with recorder.span("s", grid=4, algorithm="greedy") as s:
            pass
        assert s.tags == {"grid": "4", "algorithm": "greedy"}


class TestAggregate:
    def test_counts_and_totals_per_name(self, recorder):
        for _ in range(3):
            with recorder.span("step"):
                pass
        agg = recorder.aggregate()
        assert agg["step"]["count"] == 3
        assert agg["step"]["seconds"] >= agg["step"]["min_seconds"] * 3
        assert agg["step"]["max_seconds"] >= agg["step"]["min_seconds"]

    def test_aggregate_includes_non_root_spans(self, recorder):
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        agg = recorder.aggregate()
        assert agg["inner"]["count"] == 1
        assert agg["outer"]["count"] == 1

    def test_total_seconds_sums_roots_only(self, recorder):
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        (root,) = recorder.roots
        assert recorder.total_seconds() == pytest.approx(root.duration)


class TestBoundedRetention:
    def test_root_cap_drops_trees_but_keeps_aggregates(self):
        recorder = SpanRecorder(root_cap=2)
        for _ in range(5):
            with recorder.span("step"):
                pass
        assert len(recorder.roots) == 2
        assert recorder.dropped_roots == 3
        assert recorder.aggregate()["step"]["count"] == 5


class TestSerialization:
    def test_as_dicts_round_trips_structure(self, recorder):
        with recorder.span("outer", k="v"):
            with recorder.span("inner"):
                pass
        (tree,) = recorder.as_dicts()
        assert tree["name"] == "outer"
        assert tree["tags"] == {"k": "v"}
        assert tree["seconds"] > 0.0
        assert tree["children"][0]["name"] == "inner"
        assert tree["children"][0]["children"] == []


class TestReset:
    def test_reset_clears_trees_and_aggregates(self, recorder):
        with recorder.span("step"):
            pass
        recorder.reset()
        assert recorder.roots == []
        assert recorder.dropped_roots == 0
        assert recorder.aggregate() == {}
        assert recorder.total_seconds() == 0.0
