"""Unit tests for the metrics registry."""

import threading

import pytest

from repro.obs.metrics import (
    HISTOGRAM_SAMPLE_CAP,
    MetricsRegistry,
)
from repro.util.errors import ObservabilityError


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("work.done")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_same_name_same_labels_is_same_series(self, registry):
        registry.counter("hits").inc()
        registry.counter("hits").inc()
        assert registry.value("hits") == 2.0

    def test_label_sets_are_distinct_series(self, registry):
        registry.counter("evals", algorithm="greedy").inc(3)
        registry.counter("evals", algorithm="exhaustive").inc(5)
        assert registry.value("evals", algorithm="greedy") == 3.0
        assert registry.value("evals", algorithm="exhaustive") == 5.0
        assert registry.total("evals") == 8.0

    def test_label_order_does_not_matter(self, registry):
        registry.counter("c", a="1", b="2").inc()
        registry.counter("c", b="2", a="1").inc()
        assert registry.value("c", a="1", b="2") == 2.0

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ObservabilityError):
            registry.counter("c").inc(-1)
        assert registry.value("c") == 0.0

    def test_absent_series_reads_zero(self, registry):
        assert registry.value("never.touched") == 0.0
        assert registry.total("never.touched") == 0.0


class TestGauge:
    def test_last_write_wins(self, registry):
        g = registry.gauge("pool.resident")
        g.set(10)
        g.set(4)
        assert g.value == 4.0

    def test_add_moves_both_directions(self, registry):
        g = registry.gauge("level")
        g.add(5)
        g.add(-2)
        assert g.value == 3.0


class TestHistogram:
    def test_exact_statistics(self, registry):
        h = registry.histogram("latency")
        for v in (1.0, 2.0, 3.0, 10.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 16.0
        assert h.min == 1.0
        assert h.max == 10.0
        assert h.mean == 4.0

    def test_quantiles_from_reservoir(self, registry):
        h = registry.histogram("latency")
        for v in range(100):
            h.observe(float(v))
        assert h.quantile(0.0) == 0.0
        assert 45 <= h.quantile(0.5) <= 55
        assert h.quantile(1.0) == 99.0
        with pytest.raises(ObservabilityError):
            h.quantile(1.5)

    def test_reservoir_stays_bounded_but_stats_exact(self, registry):
        h = registry.histogram("big")
        n = HISTOGRAM_SAMPLE_CAP * 4
        for v in range(n):
            h.observe(float(v))
        assert h.count == n
        assert h.total == float(n * (n - 1) // 2)
        assert h.max == float(n - 1)
        assert len(h._samples) <= HISTOGRAM_SAMPLE_CAP

    def test_empty_histogram(self, registry):
        h = registry.histogram("empty")
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0


class TestTimer:
    def test_timer_observes_elapsed_seconds(self, registry):
        with registry.timer("step.seconds"):
            pass
        h = registry.histogram("step.seconds")
        assert h.count == 1
        assert h.min is not None and h.min >= 0.0

    def test_timer_records_on_exception(self, registry):
        with pytest.raises(RuntimeError):
            with registry.timer("step.seconds"):
                raise RuntimeError("boom")
        assert registry.histogram("step.seconds").count == 1


class TestKindClash:
    def test_name_cannot_change_kind(self, registry):
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")
        with pytest.raises(ObservabilityError):
            registry.histogram("x")

    def test_clash_detected_across_label_sets(self, registry):
        registry.counter("x", a="1")
        with pytest.raises(ObservabilityError):
            registry.gauge("x", b="2")


class TestSnapshotAndReset:
    def test_snapshot_shape(self, registry):
        registry.counter("c", k="v").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert snap["counters"] == [{"name": "c", "labels": {"k": "v"},
                                     "value": 2.0}]
        assert snap["gauges"] == [{"name": "g", "labels": {}, "value": 7.0}]
        (h,) = snap["histograms"]
        assert h["name"] == "h" and h["count"] == 1 and h["sum"] == 1.0

    def test_snapshot_isolated_from_later_updates(self, registry):
        c = registry.counter("c")
        c.inc()
        snap = registry.snapshot()
        c.inc(10)
        assert snap["counters"][0]["value"] == 1.0

    def test_mutating_snapshot_does_not_affect_registry(self, registry):
        registry.counter("c", k="v").inc()
        snap = registry.snapshot()
        snap["counters"][0]["labels"]["k"] = "tampered"
        snap["counters"][0]["value"] = 999
        fresh = registry.snapshot()
        assert fresh["counters"][0]["labels"] == {"k": "v"}
        assert fresh["counters"][0]["value"] == 1.0

    def test_snapshot_sorted_by_name_then_labels(self, registry):
        registry.counter("b").inc()
        registry.counter("a", z="2").inc()
        registry.counter("a", z="1").inc()
        names = [(e["name"], e["labels"]) for e in
                 registry.snapshot()["counters"]]
        assert names == [("a", {"z": "1"}), ("a", {"z": "2"}), ("b", {})]

    def test_reset_drops_everything_and_allows_kind_change(self, registry):
        registry.counter("x").inc(5)
        registry.reset()
        assert registry.value("x") == 0.0
        assert registry.snapshot() == {"counters": [], "gauges": [],
                                       "histograms": []}
        registry.gauge("x").set(1)  # no clash after reset

    def test_registries_are_independent(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc()
        assert b.value("c") == 0.0


class TestThreadSafety:
    def test_concurrent_increments_all_land(self, registry):
        c = registry.counter("c")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000.0
