"""Unit tests for run reports (capture, summary, serialization)."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import FORMAT, RunReport, summarize
from repro.obs.spans import SpanRecorder
from repro.util.errors import ObservabilityError


@pytest.fixture
def populated():
    """A private registry/recorder pair with representative activity."""
    registry = MetricsRegistry()
    recorder = SpanRecorder()
    registry.counter("cost_model.evaluations", model="optimizer").inc(12)
    registry.counter("cost_model.memo_hits", model="optimizer").inc(4)
    registry.counter("calibration.experiments").inc(3)
    registry.counter("calibration.cache.exact_hits").inc(5)
    registry.counter("engine.pages.buffer_hits").inc(70)
    registry.counter("engine.pages.seq_reads").inc(20)
    registry.counter("engine.pages.random_reads").inc(10)
    registry.counter("search.runs", algorithm="greedy").inc()
    registry.counter("search.evaluations", algorithm="greedy").inc(12)
    registry.counter("sim.seconds", source="measure").inc(1.5)
    registry.gauge("engine.buffer_pool.hit_ratio").set(0.7)
    registry.histogram("optimizer.plan_seconds").observe(0.002)
    with recorder.span("search", algorithm="greedy"):
        with recorder.span("calibrate"):
            pass
    return registry, recorder


class TestSummarize:
    def test_headline_numbers(self, populated):
        registry, recorder = populated
        summary = summarize(registry.snapshot(), recorder.aggregate(),
                            recorder.total_seconds())
        assert summary["cost_model_evaluations"] == 12
        assert summary["cost_model_memo_hits"] == 4
        assert summary["calibration_experiments"] == 3
        assert summary["calibration_exact_hits"] == 5
        assert summary["pages_seq_read"] == 20
        assert summary["buffer_hits"] == 70
        assert summary["buffer_hit_ratio"] == pytest.approx(0.7)
        assert summary["simulated_seconds"] == pytest.approx(1.5)
        assert summary["host_seconds"] > 0.0

    def test_hit_ratio_falls_back_to_gauge_then_one(self):
        registry = MetricsRegistry()
        registry.gauge("engine.buffer_pool.hit_ratio").set(0.25)
        summary = summarize(registry.snapshot(), {}, 0.0)
        assert summary["buffer_hit_ratio"] == pytest.approx(0.25)
        summary = summarize(MetricsRegistry().snapshot(), {}, 0.0)
        assert summary["buffer_hit_ratio"] == 1.0

    def test_idle_registry_summarizes_to_zeros(self):
        summary = summarize(MetricsRegistry().snapshot(), {}, 0.0)
        assert summary["cost_model_evaluations"] == 0
        assert summary["simulated_seconds"] == 0

    def test_resilience_keys_present_and_zero_when_idle(self):
        summary = summarize(MetricsRegistry().snapshot(), {}, 0.0)
        for key in ("faults_injected", "retries", "outliers_rejected",
                    "fallbacks", "budget_stops"):
            assert summary[key] == 0

    def test_resilience_counters_summarized(self):
        registry = MetricsRegistry()
        registry.counter("faults.injected", kind="transient").inc(7)
        registry.counter("faults.injected", kind="outlier").inc(2)
        registry.counter("resilience.retries", site="measurement").inc(5)
        registry.counter("resilience.retries", site="boot").inc(1)
        registry.counter("resilience.outliers_rejected").inc(2)
        registry.counter("resilience.fallbacks", kind="nearest").inc(1)
        registry.counter("search.budget_stops", algorithm="greedy").inc(1)
        summary = summarize(registry.snapshot(), {}, 0.0)
        assert summary["faults_injected"] == 9
        assert summary["retries"] == 6
        assert summary["outliers_rejected"] == 2
        assert summary["fallbacks"] == 1
        assert summary["budget_stops"] == 1


class TestRoundTrip:
    def test_dict_json_dict_is_lossless(self, populated):
        registry, recorder = populated
        report = RunReport.capture("unit", registry=registry,
                                   recorder=recorder)
        payload = report.as_dict()
        assert payload["format"] == FORMAT
        again = RunReport.from_json(report.to_json())
        assert again.as_dict() == payload
        # and a second round trip is stable
        assert RunReport.from_dict(again.as_dict()).as_dict() == payload

    def test_json_is_valid_and_sorted(self, populated):
        registry, recorder = populated
        blob = RunReport.capture(registry=registry,
                                 recorder=recorder).to_json()
        parsed = json.loads(blob)
        assert parsed["format"] == FORMAT
        assert list(parsed) == sorted(parsed)

    def test_unknown_format_rejected(self):
        with pytest.raises(ObservabilityError):
            RunReport.from_dict({"format": "repro-run-report/99",
                                 "label": "x", "summary": {}, "metrics": {}})

    def test_from_dict_copies_payload(self, populated):
        registry, recorder = populated
        payload = RunReport.capture(registry=registry,
                                    recorder=recorder).as_dict()
        report = RunReport.from_dict(payload)
        payload["summary"]["cost_model_evaluations"] = -1
        assert report.summary["cost_model_evaluations"] == 12


class TestCaptureIsolation:
    def test_capture_is_a_snapshot(self, populated):
        registry, recorder = populated
        report = RunReport.capture(registry=registry, recorder=recorder)
        registry.counter("cost_model.evaluations", model="optimizer").inc(100)
        assert report.summary["cost_model_evaluations"] == 12


class TestTextRendering:
    def test_text_contains_headline_and_sections(self, populated):
        registry, recorder = populated
        text = RunReport.capture("demo", registry=registry,
                                 recorder=recorder).to_text()
        assert "Run report — demo" in text
        assert "cost-model evaluations" in text
        assert "12 (4 memoized)" in text
        assert "greedy" in text           # per-algorithm search table
        assert "Host-time spans" in text
        assert "All counters" in text

    def test_empty_report_renders(self):
        text = RunReport.capture("empty", registry=MetricsRegistry(),
                                 recorder=SpanRecorder()).to_text()
        assert "Run report — empty" in text
        assert "Search" not in text

    def test_headline_has_resilience_row(self, populated):
        registry, recorder = populated
        text = RunReport.capture(registry=registry,
                                 recorder=recorder).to_text()
        assert "resilience" in text
        assert "0 retries / 0 outliers rejected" in text

    def test_resilience_table_appears_with_faults(self):
        registry = MetricsRegistry()
        registry.counter("faults.injected", kind="transient").inc(4)
        registry.counter("resilience.retries", site="measurement").inc(4)
        registry.counter("resilience.fallbacks", kind="default").inc(1)
        text = RunReport.capture(registry=registry,
                                 recorder=SpanRecorder()).to_text()
        assert "Resilience" in text
        assert "faults injected (transient)" in text
        assert "retries (measurement)" in text
        assert "fallbacks (default)" in text

    def test_resilience_table_absent_without_faults(self, populated):
        registry, recorder = populated
        text = RunReport.capture(registry=registry,
                                 recorder=recorder).to_text()
        assert "faults injected" not in text


class TestCodesignSection:
    @staticmethod
    def _codesign_registry():
        registry = MetricsRegistry()
        registry.counter("codesign.runs").inc()
        registry.counter("codesign.rounds").inc(2)
        registry.counter("codesign.candidates_evaluated").inc(11)
        registry.counter("codesign.indexes_selected").inc()
        registry.counter("codesign.pages_used").inc(6)
        registry.counter("codesign.converged").inc()
        return registry

    def test_summary_carries_the_codesign_keys(self):
        registry = self._codesign_registry()
        summary = summarize(registry.snapshot(), {}, 0.0)
        assert summary["codesign_runs"] == 1
        assert summary["codesign_rounds"] == 2
        assert summary["codesign_candidates"] == 11
        assert summary["codesign_indexes_selected"] == 1
        assert summary["codesign_pages_used"] == 6
        assert summary["codesign_converged"] == 1

    def test_text_section_appears_only_after_a_run(self, populated):
        text = RunReport.capture(registry=self._codesign_registry(),
                                 recorder=SpanRecorder()).to_text()
        assert "Codesign" in text
        registry, recorder = populated
        without = RunReport.capture(registry=registry,
                                    recorder=recorder).to_text()
        assert "Codesign" not in without
