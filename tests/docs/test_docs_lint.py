"""Tier-1 shim around scripts/check_docs.py.

Runs the documentation lint (link resolution + architecture-page module
references) as part of the regular test suite so docs cannot silently
rot. The script stays independently runnable
(``python scripts/check_docs.py``).
"""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_docs.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_lint_passes(capsys):
    checker = _load_checker()
    code = checker.main()
    output = capsys.readouterr().out
    assert code == 0, f"documentation lint failed:\n{output}"


def test_checker_scans_the_expected_surface():
    checker = _load_checker()
    paths = {p.name for p in checker._doc_paths()}
    assert {"README.md", "EXPERIMENTS.md", "architecture.md",
            "observability.md", "cost-model.md"} <= paths


def test_checker_detects_broken_artifacts(tmp_path, monkeypatch):
    """The lint must actually fail on broken docs, not vacuously pass."""
    checker = _load_checker()
    (tmp_path / "docs").mkdir()
    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    (tmp_path / "README.md").write_text(
        "[missing](nowhere.md) and [[no-such-page]]\n"
    )
    (tmp_path / "docs" / "architecture.md").write_text(
        "`repro.not_a_module` is documented but absent\n"
    )
    monkeypatch.setattr(checker, "REPO_ROOT", tmp_path)
    errors = []
    text = (tmp_path / "README.md").read_text()
    checker._check_md_links(tmp_path / "README.md", text, errors)
    checker._check_wiki_links(tmp_path / "README.md", text, errors)
    checker._check_module_refs(errors)
    joined = "\n".join(errors)
    assert "broken link (nowhere.md)" in joined
    assert "unresolved wiki link [[no-such-page]]" in joined
    assert "`repro.not_a_module` not found" in joined
    assert checker.main() == 1


def test_wiki_and_anchor_links_resolve(tmp_path, monkeypatch):
    checker = _load_checker()
    (tmp_path / "docs").mkdir()
    (tmp_path / "src").mkdir()
    (tmp_path / "docs" / "architecture.md").write_text("no modules here\n")
    (tmp_path / "docs" / "guide.md").write_text("target page\n")
    (tmp_path / "README.md").write_text(
        "[[docs/guide]] [ok](docs/guide.md#section) [anchor](#local)\n"
        "[web](https://example.com/x)\n"
    )
    monkeypatch.setattr(checker, "REPO_ROOT", tmp_path)
    assert checker.main() == 0
