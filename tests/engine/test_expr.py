"""Tests for expression evaluation (three-valued logic, LIKE, CASE)."""

import pytest

from repro.engine.expr import (
    BinaryOp,
    CaseExpr,
    ColumnRef,
    EvalContext,
    Expr,
    InListExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    NotExpr,
    RowLayout,
    and_together,
    conjuncts,
)
from repro.engine.types import Date
from repro.util.errors import PlanningError

LAYOUT = RowLayout([("t", "a"), ("t", "b"), ("t", "c")])


def evaluate(expr: Expr, row: tuple):
    ctx = EvalContext()
    return expr.bind(LAYOUT).eval(row, ctx), ctx


def col(name):
    return ColumnRef("t", name)


class TestColumnsAndLiterals:
    def test_column_reads_slot(self):
        value, _ = evaluate(col("b"), (1, 2, 3))
        assert value == 2

    def test_unbound_column_raises(self):
        with pytest.raises(PlanningError):
            col("a").eval((1,), EvalContext())

    def test_unknown_slot_raises(self):
        with pytest.raises(PlanningError):
            ColumnRef("t", "ghost").bind(LAYOUT)

    def test_literal(self):
        value, ctx = evaluate(Literal(42), ())
        assert value == 42
        assert ctx.ops == 0


class TestComparisons:
    @pytest.mark.parametrize("op,expected", [
        ("=", False), ("<>", True), ("<", True),
        ("<=", True), (">", False), (">=", False),
    ])
    def test_operators(self, op, expected):
        value, _ = evaluate(BinaryOp(op, col("a"), col("b")), (1, 2, 3))
        assert value is expected

    def test_null_comparison_is_unknown(self):
        value, _ = evaluate(BinaryOp("=", col("a"), Literal(1)), (None, 2, 3))
        assert value is None

    def test_date_comparison(self):
        row = (Date.parse("1994-01-01"), Date.parse("1994-06-01"), None)
        value, _ = evaluate(BinaryOp("<", col("a"), col("b")), row)
        assert value is True

    def test_mixed_int_float(self):
        value, _ = evaluate(BinaryOp("<", col("a"), Literal(1.5)), (1, 0, 0))
        assert value is True

    def test_incomparable_types_raise(self):
        with pytest.raises(PlanningError):
            evaluate(BinaryOp("<", col("a"), Literal("x")), (1, 0, 0))


class TestBooleanLogic:
    TRUE = Literal(True)
    FALSE = Literal(False)
    NULL = Literal(None)

    @pytest.mark.parametrize("left,right,expected", [
        (TRUE, TRUE, True), (TRUE, FALSE, False), (FALSE, FALSE, False),
        (TRUE, NULL, None), (FALSE, NULL, False), (NULL, NULL, None),
    ])
    def test_and_truth_table(self, left, right, expected):
        value, _ = evaluate(BinaryOp("and", left, right), ())
        assert value is expected

    @pytest.mark.parametrize("left,right,expected", [
        (TRUE, TRUE, True), (TRUE, FALSE, True), (FALSE, FALSE, False),
        (TRUE, NULL, True), (FALSE, NULL, None), (NULL, NULL, None),
    ])
    def test_or_truth_table(self, left, right, expected):
        value, _ = evaluate(BinaryOp("or", left, right), ())
        assert value is expected

    def test_and_short_circuits(self):
        # The right side would raise if evaluated.
        poison = BinaryOp("<", Literal(1), Literal("x"))
        value, _ = evaluate(BinaryOp("and", Literal(False), poison), ())
        assert value is False

    def test_not(self):
        assert evaluate(NotExpr(Literal(True)), ())[0] is False
        assert evaluate(NotExpr(Literal(None)), ())[0] is None


class TestArithmetic:
    def test_basic_math(self):
        expr = BinaryOp("*", BinaryOp("+", col("a"), col("b")), Literal(2))
        assert evaluate(expr, (3, 4, 0))[0] == 14

    def test_division_by_zero_is_null(self):
        assert evaluate(BinaryOp("/", Literal(1), Literal(0)), ())[0] is None

    def test_null_propagates(self):
        assert evaluate(BinaryOp("+", col("a"), Literal(1)), (None, 0, 0))[0] is None

    def test_date_difference(self):
        row = (Date.parse("1994-02-01"), Date.parse("1994-01-01"), None)
        assert evaluate(BinaryOp("-", col("a"), col("b")), row)[0] == 31


class TestLike:
    def test_contains(self):
        expr = LikeExpr(col("c"), "%special%")
        assert evaluate(expr, (0, 0, "a special day"))[0] is True
        assert evaluate(expr, (0, 0, "ordinary"))[0] is False

    def test_anchored(self):
        expr = LikeExpr(col("c"), "PROMO%")
        assert evaluate(expr, (0, 0, "PROMO BRUSHED TIN"))[0] is True
        assert evaluate(expr, (0, 0, "STANDARD PROMO"))[0] is False

    def test_underscore(self):
        expr = LikeExpr(col("c"), "a_c")
        assert evaluate(expr, (0, 0, "abc"))[0] is True
        assert evaluate(expr, (0, 0, "abbc"))[0] is False

    def test_multi_wildcard(self):
        expr = LikeExpr(col("c"), "%special%requests%")
        assert evaluate(expr, (0, 0, "very special customer requests today"))[0] is True
        assert evaluate(expr, (0, 0, "special day no asks"))[0] is False

    def test_negated(self):
        expr = LikeExpr(col("c"), "%x%", negated=True)
        assert evaluate(expr, (0, 0, "abc"))[0] is True

    def test_null_subject(self):
        assert evaluate(LikeExpr(col("c"), "%x%"), (0, 0, None))[0] is None

    def test_regex_metacharacters_escaped(self):
        expr = LikeExpr(col("c"), "a.c")
        assert evaluate(expr, (0, 0, "a.c"))[0] is True
        assert evaluate(expr, (0, 0, "abc"))[0] is False

    def test_charges_bytes(self):
        _value, ctx = evaluate(LikeExpr(col("c"), "%x%"), (0, 0, "hello"))
        assert ctx.like_bytes == 5


class TestOtherPredicates:
    def test_is_null(self):
        assert evaluate(IsNullExpr(col("a")), (None, 0, 0))[0] is True
        assert evaluate(IsNullExpr(col("a")), (1, 0, 0))[0] is False
        assert evaluate(IsNullExpr(col("a"), negated=True), (1, 0, 0))[0] is True

    def test_in_list(self):
        expr = InListExpr(col("a"), (1, 2, 3))
        assert evaluate(expr, (2, 0, 0))[0] is True
        assert evaluate(expr, (9, 0, 0))[0] is False

    def test_in_list_negated(self):
        expr = InListExpr(col("a"), (1, 2), negated=True)
        assert evaluate(expr, (9, 0, 0))[0] is True

    def test_in_list_null_semantics(self):
        # x IN (..., NULL) is unknown when x matches nothing.
        expr = InListExpr(col("a"), (1, None))
        assert evaluate(expr, (9, 0, 0))[0] is None
        assert evaluate(expr, (1, 0, 0))[0] is True

    def test_case(self):
        expr = CaseExpr(
            branches=(
                (BinaryOp("<", col("a"), Literal(10)), Literal("small")),
                (BinaryOp("<", col("a"), Literal(100)), Literal("medium")),
            ),
            default=Literal("large"),
        )
        assert evaluate(expr, (5, 0, 0))[0] == "small"
        assert evaluate(expr, (50, 0, 0))[0] == "medium"
        assert evaluate(expr, (500, 0, 0))[0] == "large"

    def test_case_without_default_yields_null(self):
        expr = CaseExpr(branches=((Literal(False), Literal(1)),))
        assert evaluate(expr, ())[0] is None


class TestExtract:
    def test_units(self):
        from repro.engine.expr import ExtractExpr

        row = (Date.parse("1995-03-17"), 0, 0)
        assert evaluate(ExtractExpr("year", col("a")), row)[0] == 1995
        assert evaluate(ExtractExpr("month", col("a")), row)[0] == 3
        assert evaluate(ExtractExpr("day", col("a")), row)[0] == 17

    def test_null_propagates(self):
        from repro.engine.expr import ExtractExpr

        assert evaluate(ExtractExpr("year", col("a")), (None, 0, 0))[0] is None

    def test_non_date_rejected(self):
        from repro.engine.expr import ExtractExpr

        with pytest.raises(PlanningError):
            evaluate(ExtractExpr("year", col("a")), (5, 0, 0))


class TestHelpers:
    def test_conjuncts_flattens(self):
        expr = BinaryOp("and", BinaryOp("and", Literal(1), Literal(2)), Literal(3))
        assert len(conjuncts(expr)) == 3
        assert conjuncts(None) == []

    def test_and_together_inverse(self):
        parts = [Literal(True), Literal(False), Literal(True)]
        combined = and_together(parts)
        assert conjuncts(combined) == parts
        assert and_together([]) is None

    def test_columns_collects_references(self):
        expr = BinaryOp("and", BinaryOp("<", col("a"), col("b")),
                        LikeExpr(col("c"), "%x%"))
        assert set(expr.columns()) == {("t", "a"), ("t", "b"), ("t", "c")}

    def test_op_count_positive(self):
        expr = BinaryOp("and", BinaryOp("<", col("a"), Literal(1)),
                        IsNullExpr(col("b")))
        assert expr.op_count() >= 4

    def test_layout_concat(self):
        other = RowLayout([("u", "x")])
        combined = LAYOUT.concat(other)
        assert combined.index_of("u", "x") == 3
        assert combined.index_of("t", "a") == 0
