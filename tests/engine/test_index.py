"""Tests for the B+-tree index."""

import pytest

from repro.engine.index import BPlusTreeIndex
from repro.engine.storage import RecordId
from repro.util.errors import StorageError


def rid(i):
    return RecordId(i // 100, i % 100)


def bulk(keys, **kwargs):
    return BPlusTreeIndex.bulk_load(
        "idx", "t", "a", [(k, rid(i)) for i, k in enumerate(keys)], **kwargs
    )


class TestBulkLoad:
    def test_all_entries_retained_sorted(self):
        keys = [5, 3, 8, 1, 9, 2, 7]
        tree = bulk(keys)
        assert [k for k, _r in tree.items()] == sorted(keys)
        assert tree.n_entries == len(keys)

    def test_duplicates_allowed(self):
        tree = bulk([4, 4, 4, 2])
        rids, _pages = tree.search(4)
        assert len(rids) == 3

    def test_unique_rejects_duplicates(self):
        with pytest.raises(StorageError):
            bulk([1, 1], unique=True)

    def test_empty_tree(self):
        tree = bulk([])
        assert tree.n_entries == 0
        assert tree.search(1) == ([], [0])
        assert list(tree.range_scan()) == []

    def test_large_bulk_load_builds_levels(self):
        tree = bulk(list(range(50_000)))
        assert tree.height >= 2
        assert [k for k, _ in tree.items()] == list(range(50_000))


class TestSearch:
    def test_point_lookup(self):
        tree = bulk(list(range(0, 1000, 2)))
        rids, pages = tree.search(500)
        assert rids == [rid(250)]
        assert len(pages) == tree.height

    def test_missing_key(self):
        tree = bulk(list(range(0, 1000, 2)))
        rids, _pages = tree.search(501)
        assert rids == []

    def test_descend_pages_path_length(self):
        tree = bulk(list(range(10_000)))
        assert len(tree.descend_pages(5000)) == tree.height

    def test_descend_pages_none_goes_leftmost(self):
        tree = bulk(list(range(100)))
        path = tree.descend_pages(None)
        assert len(path) == tree.height


class TestRangeScan:
    @pytest.fixture
    def tree(self):
        return bulk(list(range(100)))

    def test_closed_range(self, tree):
        keys = [k for k, _r, _p in tree.range_scan(10, 20)]
        assert keys == list(range(10, 21))

    def test_open_low(self, tree):
        keys = [k for k, _r, _p in tree.range_scan(None, 5)]
        assert keys == [0, 1, 2, 3, 4, 5]

    def test_open_high(self, tree):
        keys = [k for k, _r, _p in tree.range_scan(95, None)]
        assert keys == [95, 96, 97, 98, 99]

    def test_exclusive_bounds(self, tree):
        keys = [k for k, _r, _p in tree.range_scan(
            10, 20, low_inclusive=False, high_inclusive=False)]
        assert keys == list(range(11, 20))

    def test_empty_range(self, tree):
        assert list(tree.range_scan(50, 40)) == []

    def test_leaf_pages_reported(self, tree):
        pages = {p for _k, _r, p in tree.range_scan(0, 99)}
        assert len(pages) >= 1

    def test_string_keys(self):
        tree = bulk(["pear", "apple", "fig"], key_width=16)
        assert [k for k, _ in tree.items()] == ["apple", "fig", "pear"]


class TestInsert:
    def test_insert_into_empty(self):
        tree = BPlusTreeIndex("idx", "t", "a")
        tree.insert(5, rid(0))
        assert tree.search(5)[0] == [rid(0)]

    def test_insert_many_with_splits(self):
        tree = BPlusTreeIndex("idx", "t", "a")
        n = 5000
        for i in range(n):
            tree.insert((i * 37) % n, rid(i))  # scrambled order
        keys = [k for k, _ in tree.items()]
        assert keys == sorted(keys)
        assert tree.n_entries == n
        assert tree.height >= 2

    def test_insert_duplicate_key_appends_rid(self):
        tree = BPlusTreeIndex("idx", "t", "a")
        tree.insert(1, rid(0))
        tree.insert(1, rid(1))
        assert len(tree.search(1)[0]) == 2

    def test_unique_insert_rejects_duplicate(self):
        tree = BPlusTreeIndex("idx", "t", "a", unique=True)
        tree.insert(1, rid(0))
        with pytest.raises(StorageError):
            tree.insert(1, rid(1))

    def test_insert_then_range_scan_consistent(self):
        tree = BPlusTreeIndex("idx", "t", "a")
        for i in reversed(range(1000)):
            tree.insert(i, rid(i))
        assert [k for k, _r, _p in tree.range_scan(100, 110)] == list(range(100, 111))


class TestGeometry:
    def test_pages_grow_with_entries(self):
        small = bulk(list(range(100)))
        large = bulk(list(range(20_000)))
        assert large.n_pages > small.n_pages

    def test_fanout_depends_on_key_width(self):
        narrow = BPlusTreeIndex("i1", "t", "a", key_width=8)
        wide = BPlusTreeIndex("i2", "t", "a", key_width=100)
        assert narrow.fanout > wide.fanout
