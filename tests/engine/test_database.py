"""Tests for the database facade."""

import pytest

from repro.engine.database import (
    BUFFER_POOL_FRACTION,
    MIN_BUFFER_POOL_PAGES,
    MIN_SORT_MEM_PAGES,
    Database,
)
from tests.conftest import simple_schema


class TestMemoryManagement:
    def test_memory_split(self):
        db = Database("d", memory_pages=1000)
        assert db.buffer_pool.capacity == int(1000 * BUFFER_POOL_FRACTION)
        assert db.sort_mem_pages == 1000 - db.buffer_pool.capacity

    def test_resize_memory(self):
        db = Database("d", memory_pages=1000)
        db.resize_memory(2000)
        assert db.buffer_pool.capacity == int(2000 * BUFFER_POOL_FRACTION)

    def test_shrink_evicts(self):
        db = Database("d", memory_pages=4000)
        db.create_table(simple_schema())
        db.load_rows("t", [(i, i, "x") for i in range(5000)])
        db.warm_cache()
        db.resize_memory(200)
        assert len(db.buffer_pool) <= db.buffer_pool.capacity

    def test_floors_enforced(self):
        db = Database("d", memory_pages=1)
        assert db.buffer_pool.capacity >= MIN_BUFFER_POOL_PAGES
        assert db.sort_mem_pages >= MIN_SORT_MEM_PAGES


class TestDdlAndQueries:
    @pytest.fixture
    def db(self):
        db = Database("d", memory_pages=2048)
        db.create_table(simple_schema())
        db.load_rows("t", [(i, i % 3, f"text {i}") for i in range(300)])
        db.create_index("t_a", "t", "a")
        db.analyze()
        return db

    def test_run_sql_end_to_end(self, db):
        result = db.run_sql("select b, count(*) as n from t group by b order by b")
        assert result.column_names == ["b", "n"]
        assert result.rows == [(0, 100), (1, 100), (2, 100)]
        assert result.plan is not None
        assert result.trace.tuples_processed >= 300

    def test_run_sql_with_filter(self, db):
        result = db.run_sql("select a from t where a < 5 order by a")
        assert [row[0] for row in result.rows] == [0, 1, 2, 3, 4]

    def test_result_len(self, db):
        assert len(db.run_sql("select a from t where a < 5")) == 5

    def test_warm_cache_prewarms(self, db):
        db.cold_restart()
        db.warm_cache(["t"])
        result = db.run_sql("select count(*) as n from t")
        assert result.trace.seq_page_reads == 0

    def test_cold_restart_clears(self, db):
        db.warm_cache()
        db.cold_restart()
        result = db.run_sql("select count(*) as n from t")
        assert result.trace.seq_page_reads > 0

    def test_deep_copyable_for_appliances(self, db):
        import copy

        clone = copy.deepcopy(db)
        clone.load_rows("t", [(999, 0, "new")])
        assert len(clone.run_sql("select a from t where a = 999")) == 1
        assert len(db.run_sql("select a from t where a = 999")) == 0
