"""Tests for the system catalog."""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.schema import Column, ColumnType, TableSchema
from repro.util.errors import CatalogError


def schema(name="t"):
    return TableSchema(name, [Column("a", ColumnType.INT),
                              Column("b", ColumnType.INT)])


@pytest.fixture
def catalog():
    cat = Catalog()
    info = cat.create_table(schema())
    info.heap.bulk_load([(i, i % 5) for i in range(200)])
    return cat


class TestTables:
    def test_create_and_lookup(self, catalog):
        assert catalog.has_table("t")
        assert catalog.table("t").schema.name == "t"
        assert catalog.table_names() == ["t"]

    def test_duplicate_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.create_table(schema())

    def test_unknown_table(self, catalog):
        with pytest.raises(CatalogError):
            catalog.table("ghost")

    def test_drop(self, catalog):
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.drop_table("t")


class TestIndexes:
    def test_create_index_bulk_loads(self, catalog):
        info = catalog.create_index("t_a", "t", "a")
        assert info.index.n_entries == 200
        assert catalog.index_on_column("t", "a") is info

    def test_nulls_excluded_from_index(self, catalog):
        catalog.table("t").heap.append((None, 1))
        info = catalog.create_index("t_a", "t", "a")
        assert info.index.n_entries == 200  # the NULL row is absent

    def test_index_on_unknown_column(self, catalog):
        with pytest.raises(CatalogError):
            catalog.create_index("bad", "t", "ghost")

    def test_duplicate_index_name(self, catalog):
        catalog.create_index("idx", "t", "a")
        with pytest.raises(CatalogError):
            catalog.create_index("idx", "t", "b")

    def test_indexes_on_lists_all(self, catalog):
        catalog.create_index("i1", "t", "a")
        catalog.create_index("i2", "t", "b")
        assert {i.name for i in catalog.indexes_on("t")} == {"i1", "i2"}

    def test_index_on_column_missing(self, catalog):
        assert catalog.index_on_column("t", "b") is None


class TestStatistics:
    def test_analyze_populates(self, catalog):
        catalog.analyze()
        stats = catalog.stats("t")
        assert stats.n_rows == 200
        assert stats.column("b").n_distinct == 5

    def test_stats_before_analyze_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.stats("t")

    def test_analyze_single_table(self, catalog):
        catalog.create_table(schema("u"))
        catalog.analyze("t")
        catalog.stats("t")
        with pytest.raises(CatalogError):
            catalog.stats("u")
