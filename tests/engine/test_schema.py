"""Tests for table schemas."""

import pytest

from repro.engine.schema import Column, ColumnType, TableSchema
from repro.engine.types import Date
from repro.util.errors import CatalogError


def schema():
    return TableSchema("t", [
        Column("id", ColumnType.INT),
        Column("price", ColumnType.FLOAT),
        Column("name", ColumnType.TEXT, avg_width=20),
        Column("day", ColumnType.DATE),
    ])


class TestConstruction:
    def test_column_lookup(self):
        s = schema()
        assert s.column_index("price") == 1
        assert s.column("name").avg_width == 20
        assert s.has_column("day")
        assert not s.has_column("ghost")

    def test_unknown_column_raises(self):
        with pytest.raises(CatalogError):
            schema().column_index("ghost")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a", ColumnType.INT),
                              Column("a", ColumnType.INT)])

    def test_empty_schema_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [])

    def test_empty_name_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("", [Column("a", ColumnType.INT)])

    def test_default_widths(self):
        assert Column("a", ColumnType.INT).avg_width == 8
        assert Column("a", ColumnType.DATE).avg_width == 4
        assert Column("a", ColumnType.TEXT).avg_width == 24

    def test_row_width_includes_header(self):
        s = schema()
        assert s.row_width == 24 + 8 + 8 + 20 + 4


class TestValidation:
    def test_valid_row(self):
        schema().validate_row((1, 2.5, "x", Date.parse("1994-01-01")))

    def test_int_accepted_for_float_column(self):
        schema().validate_row((1, 3, "x", Date.parse("1994-01-01")))

    def test_nulls_accepted(self):
        schema().validate_row((None, None, None, None))

    def test_wrong_arity_rejected(self):
        with pytest.raises(CatalogError):
            schema().validate_row((1, 2.5))

    def test_wrong_type_rejected(self):
        with pytest.raises(CatalogError):
            schema().validate_row(("one", 2.5, "x", Date.parse("1994-01-01")))

    def test_float_rejected_for_int_column(self):
        with pytest.raises(CatalogError):
            schema().validate_row((1.5, 2.5, "x", Date.parse("1994-01-01")))
