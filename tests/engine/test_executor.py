"""Tests for the plan executor: correctness of every operator plus the
work accounting the simulation depends on."""

import pytest

from repro.engine.bufferpool import BufferPool
from repro.engine.database import Database
from repro.engine.executor import ExecutionContext, Executor
from repro.engine.expr import BinaryOp, ColumnRef, Literal, RowLayout
from repro.engine.plans import (
    AggFunc,
    Aggregate,
    AggSpec,
    Filter,
    HashJoin,
    IndexScan,
    JoinType,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    Project,
    SeqScan,
    Sort,
    SortKey,
)
from repro.engine.schema import Column, ColumnType, TableSchema
from repro.util.errors import PlanningError


@pytest.fixture
def db():
    """Two small joinable tables with indexes."""
    db = Database("exec", memory_pages=2048)
    db.create_table(TableSchema("r", [
        Column("a", ColumnType.INT),
        Column("b", ColumnType.INT),
    ]))
    db.create_table(TableSchema("s", [
        Column("x", ColumnType.INT),
        Column("y", ColumnType.TEXT, avg_width=8),
    ]))
    db.load_rows("r", [(i, i % 4) for i in range(40)])
    db.load_rows("s", [(i * 2, f"s{i}") for i in range(10)])  # x: 0,2,..18
    db.create_index("r_a", "r", "a")
    db.analyze()
    return db


def scan(db, table, alias=None, filter_expr=None):
    alias = alias or table
    node = SeqScan(table_name=table, alias=alias, filter_expr=filter_expr)
    columns = db.catalog.table(table).schema.column_names()
    node.layout = RowLayout([(alias, c) for c in columns])
    return node


def run(db, plan):
    context = ExecutionContext(catalog=db.catalog, buffer_pool=db.buffer_pool,
                               sort_mem_pages=db.sort_mem_pages)
    rows = Executor(context).run(plan)
    return rows, context.trace


class TestScans:
    def test_seq_scan_all_rows(self, db):
        rows, trace = run(db, scan(db, "r"))
        assert len(rows) == 40
        assert trace.tuples_processed == 40
        assert trace.seq_page_requests == db.catalog.table("r").heap.n_pages

    def test_seq_scan_filter(self, db):
        pred = BinaryOp("=", ColumnRef("r", "b"), Literal(1))
        rows, trace = run(db, scan(db, "r", filter_expr=pred))
        assert len(rows) == 10
        assert all(row[1] == 1 for row in rows)
        assert trace.predicate_ops > 0

    def test_index_scan_range(self, db):
        node = IndexScan(table_name="r", alias="r", index_name="r_a",
                         low=10, high=19)
        node.layout = RowLayout([("r", "a"), ("r", "b")])
        rows, trace = run(db, node)
        assert sorted(row[0] for row in rows) == list(range(10, 20))
        assert trace.index_tuples == 10
        assert trace.random_page_requests > 0

    def test_index_scan_exclusive_bounds(self, db):
        node = IndexScan(table_name="r", alias="r", index_name="r_a",
                         low=10, high=20, low_inclusive=False,
                         high_inclusive=False)
        node.layout = RowLayout([("r", "a"), ("r", "b")])
        rows, _ = run(db, node)
        assert sorted(row[0] for row in rows) == list(range(11, 20))

    def test_index_scan_residual_filter(self, db):
        pred = BinaryOp("=", ColumnRef("r", "b"), Literal(0))
        node = IndexScan(table_name="r", alias="r", index_name="r_a",
                         low=0, high=39, filter_expr=pred)
        node.layout = RowLayout([("r", "a"), ("r", "b")])
        rows, _ = run(db, node)
        assert all(row[1] == 0 for row in rows)
        assert len(rows) == 10

    def test_unknown_index_raises(self, db):
        node = IndexScan(table_name="r", alias="r", index_name="ghost")
        node.layout = RowLayout([("r", "a"), ("r", "b")])
        with pytest.raises(PlanningError):
            run(db, node)


class TestHashJoin:
    def join(self, db, join_type, residual=None):
        node = HashJoin(
            outer=scan(db, "r"), inner=scan(db, "s"),
            outer_keys=[ColumnRef("r", "a")], inner_keys=[ColumnRef("s", "x")],
            join_type=join_type, residual=residual,
        )
        return run(db, node)

    def test_inner_join(self, db):
        rows, _ = self.join(db, JoinType.INNER)
        # r.a in 0..39 matches s.x in {0,2,...,18}: 10 matches.
        assert len(rows) == 10
        assert all(row[0] == row[2] for row in rows)

    def test_left_join_pads_nulls(self, db):
        rows, _ = self.join(db, JoinType.LEFT)
        assert len(rows) == 40
        unmatched = [row for row in rows if row[2] is None]
        assert len(unmatched) == 30
        assert all(row[3] is None for row in unmatched)

    def test_semi_join_emits_outer_only(self, db):
        rows, _ = self.join(db, JoinType.SEMI)
        assert len(rows) == 10
        assert all(len(row) == 2 for row in rows)

    def test_anti_join(self, db):
        rows, _ = self.join(db, JoinType.ANTI)
        assert len(rows) == 30
        assert all(row[0] % 2 == 1 or row[0] >= 20 for row in rows)

    def test_residual_filters_matches(self, db):
        residual = BinaryOp("<", ColumnRef("r", "a"), Literal(10))
        rows, _ = self.join(db, JoinType.INNER, residual=residual)
        assert len(rows) == 5  # a in {0,2,4,6,8}

    def test_left_join_residual_keeps_outer(self, db):
        residual = BinaryOp("<", ColumnRef("r", "a"), Literal(10))
        rows, _ = self.join(db, JoinType.LEFT, residual=residual)
        assert len(rows) == 40  # failed residual becomes a null-padded row

    def test_null_keys_never_match(self, db):
        db.catalog.table("r").heap.append((None, 0))
        rows, _ = self.join(db, JoinType.INNER)
        assert len(rows) == 10
        anti_rows, _ = self.join(db, JoinType.ANTI)
        assert any(row[0] is None for row in anti_rows)


class TestOtherJoins:
    def test_nested_loop_inner(self, db):
        pred = BinaryOp("=", ColumnRef("r", "a"), ColumnRef("s", "x"))
        node = NestedLoopJoin(outer=scan(db, "r"), inner=scan(db, "s"),
                              join_type=JoinType.INNER, predicate=pred)
        rows, _ = run(db, node)
        assert len(rows) == 10

    def test_nested_loop_cross_join(self, db):
        node = NestedLoopJoin(outer=scan(db, "r"), inner=scan(db, "s"),
                              join_type=JoinType.INNER, predicate=None)
        rows, _ = run(db, node)
        assert len(rows) == 400

    def test_nested_loop_non_equi(self, db):
        pred = BinaryOp("<", ColumnRef("s", "x"), Literal(4))
        node = NestedLoopJoin(outer=scan(db, "r"), inner=scan(db, "s"),
                              join_type=JoinType.SEMI, predicate=pred)
        rows, _ = run(db, node)
        assert len(rows) == 40  # every outer row has some s.x < 4

    def test_merge_join_matches_hash_join(self, db):
        sorted_r = Sort(input=scan(db, "r"), keys=[SortKey(ColumnRef("r", "a"))])
        sorted_s = Sort(input=scan(db, "s"), keys=[SortKey(ColumnRef("s", "x"))])
        node = MergeJoin(outer=sorted_r, inner=sorted_s,
                         outer_key=ColumnRef("r", "a"),
                         inner_key=ColumnRef("s", "x"))
        rows, _ = run(db, node)
        assert len(rows) == 10
        assert all(row[0] == row[2] for row in rows)

    def test_merge_join_duplicates_cross_product(self, db):
        db.load_rows("s", [(4, "dup")])  # now two rows with x=4
        sorted_r = Sort(input=scan(db, "r"), keys=[SortKey(ColumnRef("r", "a"))])
        sorted_s = Sort(input=scan(db, "s"), keys=[SortKey(ColumnRef("s", "x"))])
        node = MergeJoin(outer=sorted_r, inner=sorted_s,
                         outer_key=ColumnRef("r", "a"),
                         inner_key=ColumnRef("s", "x"))
        rows, _ = run(db, node)
        assert len(rows) == 11
        assert sum(1 for row in rows if row[0] == 4) == 2


class TestSortAggregateProject:
    def test_sort_ascending(self, db):
        node = Sort(input=scan(db, "s"), keys=[SortKey(ColumnRef("s", "x"))])
        rows, _ = run(db, node)
        assert [row[0] for row in rows] == sorted(row[0] for row in rows)

    def test_sort_descending(self, db):
        node = Sort(input=scan(db, "s"),
                    keys=[SortKey(ColumnRef("s", "x"), ascending=False)])
        rows, _ = run(db, node)
        values = [row[0] for row in rows]
        assert values == sorted(values, reverse=True)

    def test_sort_multi_key(self, db):
        node = Sort(input=scan(db, "r"), keys=[
            SortKey(ColumnRef("r", "b")),
            SortKey(ColumnRef("r", "a"), ascending=False),
        ])
        rows, _ = run(db, node)
        assert rows == sorted(rows, key=lambda r: (r[1], -r[0]))

    def test_sort_nulls_last_both_directions(self, db):
        db.catalog.table("s").heap.append((None, "nul"))
        for ascending in (True, False):
            node = Sort(input=scan(db, "s"),
                        keys=[SortKey(ColumnRef("s", "x"), ascending=ascending)])
            rows, _ = run(db, node)
            assert rows[-1][0] is None

    def test_sort_spills_when_large(self, db):
        node = Sort(input=scan(db, "r"), keys=[SortKey(ColumnRef("r", "a"))])
        context = ExecutionContext(catalog=db.catalog,
                                   buffer_pool=BufferPool(64),
                                   sort_mem_pages=0)
        Executor(context).run(node)
        assert context.trace.page_writes > 0

    def test_group_aggregate(self, db):
        node = Aggregate(
            input=scan(db, "r"),
            group_keys=[ColumnRef("r", "b")],
            aggregates=[
                AggSpec(AggFunc.COUNT_STAR, None, "n"),
                AggSpec(AggFunc.SUM, ColumnRef("r", "a"), "total"),
                AggSpec(AggFunc.MIN, ColumnRef("r", "a"), "lo"),
                AggSpec(AggFunc.MAX, ColumnRef("r", "a"), "hi"),
            ],
            group_names=["b"],
        )
        rows, _ = run(db, node)
        assert len(rows) == 4
        by_group = {row[0]: row for row in rows}
        assert by_group[0][1] == 10        # count
        assert by_group[0][2] == sum(range(0, 40, 4))
        assert by_group[1][3] == 1         # min a with b=1
        assert by_group[3][4] == 39        # max a with b=3

    def test_avg_and_count_ignore_nulls(self, db):
        db.catalog.table("s").heap.append((None, "n"))
        node = Aggregate(
            input=scan(db, "s"), group_keys=[],
            aggregates=[
                AggSpec(AggFunc.AVG, ColumnRef("s", "x"), "avg"),
                AggSpec(AggFunc.COUNT, ColumnRef("s", "x"), "cnt"),
                AggSpec(AggFunc.COUNT_STAR, None, "all"),
            ],
        )
        rows, _ = run(db, node)
        avg, cnt, all_rows = rows[0]
        assert cnt == 10
        assert all_rows == 11
        assert avg == pytest.approx(9.0)

    def test_global_aggregate_on_empty_input(self, db):
        pred = BinaryOp("<", ColumnRef("r", "a"), Literal(-1))
        node = Aggregate(
            input=scan(db, "r", filter_expr=pred), group_keys=[],
            aggregates=[AggSpec(AggFunc.COUNT_STAR, None, "n"),
                        AggSpec(AggFunc.SUM, ColumnRef("r", "a"), "s")],
        )
        rows, _ = run(db, node)
        assert rows == [(0, None)]

    def test_having_filters_groups(self, db):
        node = Aggregate(
            input=scan(db, "r"),
            group_keys=[ColumnRef("r", "b")],
            aggregates=[AggSpec(AggFunc.SUM, ColumnRef("r", "a"), "total")],
            group_names=["b"],
            having=BinaryOp(">", ColumnRef("_agg", "total"),
                            Literal(190)),
        )
        rows, _ = run(db, node)
        totals = {row[0]: row[1] for row in rows}
        assert all(total > 190 for total in totals.values())
        assert len(rows) < 4

    def test_project_computes(self, db):
        node = Project(
            input=scan(db, "r"),
            exprs=[BinaryOp("*", ColumnRef("r", "a"), Literal(2))],
            names=["doubled"],
        )
        rows, _ = run(db, node)
        assert [row[0] for row in rows] == [2 * i for i in range(40)]

    def test_filter_node(self, db):
        node = Filter(input=scan(db, "r"),
                      predicate=BinaryOp(">=", ColumnRef("r", "a"), Literal(35)))
        rows, _ = run(db, node)
        assert len(rows) == 5

    def test_limit(self, db):
        node = Limit(input=scan(db, "r"), count=7)
        rows, _ = run(db, node)
        assert len(rows) == 7


class TestAccountingInvariants:
    def test_more_predicates_more_cpu(self, db):
        plain, trace_plain = run(db, scan(db, "r"))
        pred = BinaryOp("and",
                        BinaryOp(">=", ColumnRef("r", "a"), Literal(-1)),
                        BinaryOp(">=", ColumnRef("r", "b"), Literal(-1)))
        _filtered, trace_pred = run(db, scan(db, "r", filter_expr=pred))
        assert trace_pred.cpu_units > trace_plain.cpu_units

    def test_warm_scan_hits_buffer(self, db):
        _rows, cold = run(db, scan(db, "r"))
        _rows, warm = run(db, scan(db, "r"))
        assert cold.seq_page_reads > 0
        assert warm.seq_page_reads == 0
        assert warm.buffer_hits > 0
