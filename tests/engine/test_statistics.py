"""Tests for ANALYZE statistics and selectivity primitives."""

import pytest

from repro.engine.schema import Column, ColumnType, TableSchema
from repro.engine.statistics import analyze_column, analyze_table
from repro.engine.storage import HeapFile
from repro.engine.types import Date


class TestAnalyzeColumn:
    def test_basic_summary(self):
        stats = analyze_column("a", list(range(100)))
        assert stats.n_values == 100
        assert stats.n_distinct == 100
        assert stats.null_fraction == 0.0
        assert stats.min_value == 0
        assert stats.max_value == 99

    def test_null_fraction(self):
        stats = analyze_column("a", [1, None, 2, None])
        assert stats.null_fraction == 0.5

    def test_all_null_column(self):
        stats = analyze_column("a", [None, None])
        assert stats.null_fraction == 1.0
        assert stats.n_distinct == 0
        assert stats.min_value is None

    def test_empty_column(self):
        stats = analyze_column("a", [])
        assert stats.n_values == 0

    def test_mcv_captures_skew(self):
        values = [1] * 90 + [2, 3, 4, 5, 6, 7, 8, 9, 10, 11]
        stats = analyze_column("a", values)
        mcv = dict(stats.mcv)
        assert mcv.get(1) == pytest.approx(0.9)

    def test_uniform_low_cardinality_has_no_strong_mcv(self):
        values = list(range(10)) * 10
        stats = analyze_column("a", values)
        assert all(freq < 0.15 for _v, freq in stats.mcv)

    def test_histogram_spans_range(self):
        stats = analyze_column("a", list(range(1000)))
        assert stats.histogram[0] == 0
        assert stats.histogram[-1] == 999


class TestSelectivityEq:
    def test_uniform(self):
        stats = analyze_column("a", list(range(100)))
        assert stats.selectivity_eq(42) == pytest.approx(0.01, abs=0.005)

    def test_mcv_exact(self):
        stats = analyze_column("a", [7] * 50 + list(range(50)))
        assert stats.selectivity_eq(7) == pytest.approx(0.5, abs=0.05)

    def test_null_eq_uses_null_fraction(self):
        stats = analyze_column("a", [1, None, None, None])
        assert stats.selectivity_eq(None) == pytest.approx(0.75)


class TestSelectivityRange:
    def test_half_open(self):
        stats = analyze_column("a", list(range(1000)))
        sel = stats.selectivity_range(None, 500, high_inclusive=False)
        assert sel == pytest.approx(0.5, abs=0.05)

    def test_interior_interval(self):
        stats = analyze_column("a", list(range(1000)))
        sel = stats.selectivity_range(250, 750)
        assert sel == pytest.approx(0.5, abs=0.05)

    def test_outside_range_is_zero_or_one(self):
        stats = analyze_column("a", list(range(100)))
        assert stats.selectivity_range(None, -5) == pytest.approx(0.0, abs=0.01)
        assert stats.selectivity_range(None, 1000) == pytest.approx(1.0, abs=0.01)

    def test_dates_interpolate(self):
        days = [Date.parse("1994-01-01").add_days(i) for i in range(365)]
        stats = analyze_column("d", days)
        sel = stats.selectivity_range(
            Date.parse("1994-01-01"), Date.parse("1994-03-31")
        )
        assert sel == pytest.approx(90 / 365, abs=0.05)

    def test_null_fraction_excluded(self):
        stats = analyze_column("a", list(range(100)) + [None] * 100)
        sel = stats.selectivity_range(None, None)
        assert sel == pytest.approx(0.5, abs=0.05)


class TestAnalyzeTable:
    def test_table_level_counts(self):
        schema = TableSchema("t", [Column("a", ColumnType.INT),
                                   Column("c", ColumnType.TEXT)])
        heap = HeapFile(schema)
        heap.bulk_load([(i, f"s{i % 7}") for i in range(500)])
        stats = analyze_table(heap)
        assert stats.n_rows == 500
        assert stats.n_pages == heap.n_pages
        assert stats.column("a").n_distinct == 500
        assert stats.column("c").n_distinct == 7
        assert stats.column("missing") is None
