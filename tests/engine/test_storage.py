"""Tests for heap files and pages."""

import pytest

from repro.engine.schema import Column, ColumnType, TableSchema
from repro.engine.storage import HeapFile, RecordId
from repro.util.errors import CatalogError, StorageError
from repro.util.units import PAGE_SIZE


def make_heap(text_width=20):
    schema = TableSchema("t", [
        Column("a", ColumnType.INT),
        Column("c", ColumnType.TEXT, avg_width=text_width),
    ])
    return HeapFile(schema)


class TestAppend:
    def test_append_and_fetch(self):
        heap = make_heap()
        rid = heap.append((1, "hello"))
        assert heap.fetch(rid) == (1, "hello")
        assert heap.n_rows == 1

    def test_rows_span_pages(self):
        heap = make_heap()
        per_page = heap.rows_per_page()
        for i in range(per_page + 1):
            heap.append((i, "x"))
        assert heap.n_pages == 2
        assert len(heap.page(0)) == per_page
        assert len(heap.page(1)) == 1

    def test_rows_per_page_matches_width(self):
        heap = make_heap()
        expected = (PAGE_SIZE - 64) // heap.schema.row_width
        assert heap.rows_per_page() == expected

    def test_bulk_load_counts(self):
        heap = make_heap()
        n = heap.bulk_load([(i, "r") for i in range(500)])
        assert n == 500
        assert heap.n_rows == 500

    def test_schema_validated_on_append(self):
        heap = make_heap()
        with pytest.raises(CatalogError):
            heap.append(("wrong", 1))


class TestScan:
    def test_scan_rids_in_physical_order(self):
        heap = make_heap()
        rids = [heap.append((i, "x")) for i in range(300)]
        scanned = list(heap.scan_rids())
        assert [rid for rid, _row in scanned] == rids
        assert [row[0] for _rid, row in scanned] == list(range(300))

    def test_pages_iterates_all(self):
        heap = make_heap()
        heap.bulk_load([(i, "x") for i in range(700)])
        total = sum(len(page) for page in heap.pages())
        assert total == 700


class TestErrors:
    def test_fetch_bad_page(self):
        heap = make_heap()
        with pytest.raises(StorageError):
            heap.fetch(RecordId(5, 0))

    def test_fetch_bad_slot(self):
        heap = make_heap()
        heap.append((1, "x"))
        with pytest.raises(StorageError):
            heap.fetch(RecordId(0, 99))

    def test_distinct_file_ids(self):
        assert make_heap().file_id != make_heap().file_id
