"""Tests for work-trace accounting."""

import pytest

from repro.engine.trace import CPU_TUPLE_UNITS, WorkTrace


class TestCharging:
    def test_add_cpu(self):
        trace = WorkTrace()
        trace.add_cpu(100.0)
        assert trace.cpu_units == 100.0

    def test_negative_cpu_rejected(self):
        with pytest.raises(ValueError):
            WorkTrace().add_cpu(-1)

    def test_add_tuples_charges_cpu(self):
        trace = WorkTrace()
        trace.add_tuples(10)
        assert trace.tuples_processed == 10
        assert trace.cpu_units == 10 * CPU_TUPLE_UNITS

    def test_add_tuples_custom_rate(self):
        trace = WorkTrace()
        trace.add_tuples(5, 2.0)
        assert trace.cpu_units == 10.0

    def test_buffer_hit_charges_cpu(self):
        trace = WorkTrace()
        trace.add_buffer_hit(3)
        assert trace.buffer_hits == 3
        assert trace.cpu_units > 0

    def test_io_counters(self):
        trace = WorkTrace()
        trace.add_seq_read(5)
        trace.add_random_read(2)
        trace.add_page_write(1)
        assert trace.total_page_reads == 7
        assert trace.page_writes == 1

    @pytest.mark.parametrize("method", [
        "add_seq_read", "add_random_read", "add_buffer_hit", "add_page_write",
    ])
    def test_negative_pages_rejected(self, method):
        with pytest.raises(ValueError):
            getattr(WorkTrace(), method)(-1)


class TestAggregates:
    def test_hit_ratio(self):
        trace = WorkTrace()
        assert trace.hit_ratio() == 1.0
        trace.add_seq_read(3)
        trace.add_buffer_hit(1)
        assert trace.hit_ratio() == pytest.approx(0.25)

    def test_merge_sums_everything(self):
        a = WorkTrace()
        a.add_cpu(10)
        a.add_seq_read(1)
        a.predicate_ops = 5
        b = WorkTrace()
        b.add_cpu(20)
        b.add_random_read(2)
        b.like_bytes = 7
        a.merge(b)
        assert a.cpu_units == 30
        assert a.total_page_reads == 3
        assert a.predicate_ops == 5
        assert a.like_bytes == 7

    def test_copy_is_independent(self):
        a = WorkTrace()
        a.add_cpu(10)
        b = a.copy()
        b.add_cpu(5)
        assert a.cpu_units == 10
        assert b.cpu_units == 15
