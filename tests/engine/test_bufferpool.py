"""Tests for the clock-sweep buffer pool."""

import pytest

from repro.engine.bufferpool import BufferPool
from repro.engine.trace import WorkTrace
from repro.util.errors import StorageError


def access(pool, page_no, trace=None, **kwargs):
    return pool.access(1, page_no, trace or WorkTrace(), **kwargs)


class TestHitMiss:
    def test_first_access_misses_then_hits(self):
        pool = BufferPool(10)
        trace = WorkTrace()
        assert not access(pool, 0, trace)
        assert access(pool, 0, trace)
        assert pool.hits == 1
        assert pool.misses == 1

    def test_miss_charges_io_by_intent(self):
        pool = BufferPool(10)
        trace = WorkTrace()
        access(pool, 0, trace, sequential=True)
        access(pool, 1, trace, sequential=False)
        assert trace.seq_page_reads == 1
        assert trace.random_page_reads == 1

    def test_hit_charges_cpu_not_io(self):
        pool = BufferPool(10)
        trace = WorkTrace()
        access(pool, 0, trace)
        io_before = trace.total_page_reads
        cpu_before = trace.cpu_units
        access(pool, 0, trace)
        assert trace.total_page_reads == io_before
        assert trace.cpu_units > cpu_before

    def test_requests_counted_regardless_of_outcome(self):
        pool = BufferPool(10)
        trace = WorkTrace()
        access(pool, 0, trace, sequential=True)
        access(pool, 0, trace, sequential=True)
        assert trace.seq_page_requests == 2

    def test_files_are_distinct(self):
        pool = BufferPool(10)
        trace = WorkTrace()
        pool.access(1, 0, trace)
        assert not pool.access(2, 0, trace)  # same page number, other file


class TestEviction:
    def test_capacity_respected(self):
        pool = BufferPool(4)
        for page in range(10):
            access(pool, page)
        assert len(pool) == 4

    def test_clock_gives_second_chance(self):
        pool = BufferPool(2)
        access(pool, 0)
        access(pool, 1)
        access(pool, 0)  # re-reference page 0
        access(pool, 2)  # must evict someone
        # Page 0 was recently referenced; it should survive over page 1.
        assert pool.contains(1, 0)
        assert not pool.contains(1, 1)

    def test_zero_capacity_never_caches(self):
        pool = BufferPool(0)
        trace = WorkTrace()
        access(pool, 0, trace)
        access(pool, 0, trace)
        assert pool.hits == 0
        assert len(pool) == 0

    def test_bypass_serves_without_installing(self):
        pool = BufferPool(10)
        access(pool, 0, bypass=True)
        assert not pool.contains(1, 0)

    def test_bypass_still_hits_resident_pages(self):
        pool = BufferPool(10)
        access(pool, 0)
        trace = WorkTrace()
        assert access(pool, 0, trace, bypass=True)


class TestResize:
    def test_shrink_evicts(self):
        pool = BufferPool(8)
        for page in range(8):
            access(pool, page)
        pool.resize(3)
        assert len(pool) == 3
        assert pool.capacity == 3

    def test_grow_keeps_content(self):
        pool = BufferPool(2)
        access(pool, 0)
        pool.resize(10)
        assert pool.contains(1, 0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(StorageError):
            BufferPool(-1)
        with pytest.raises(StorageError):
            BufferPool(4).resize(-1)


class TestHelpers:
    def test_should_use_ring_only_when_cannot_fit(self):
        pool = BufferPool(100)
        assert not pool.should_use_ring(100)
        assert pool.should_use_ring(101)

    def test_zero_capacity_always_rings(self):
        assert BufferPool(0).should_use_ring(1)

    def test_prewarm_installs_without_io(self):
        pool = BufferPool(10)
        installed = pool.prewarm(1, 5)
        assert installed == 5
        assert pool.misses == 0
        trace = WorkTrace()
        assert access(pool, 3, trace)

    def test_prewarm_bounded_by_capacity(self):
        pool = BufferPool(3)
        assert pool.prewarm(1, 10) == 3

    def test_clear_empties(self):
        pool = BufferPool(10)
        access(pool, 0)
        pool.clear()
        assert len(pool) == 0
        assert not pool.contains(1, 0)

    def test_hit_ratio(self):
        pool = BufferPool(10)
        assert pool.hit_ratio() == 1.0
        access(pool, 0)
        access(pool, 0)
        assert pool.hit_ratio() == 0.5

    def test_reset_counters(self):
        pool = BufferPool(10)
        access(pool, 0)
        pool.reset_counters()
        assert pool.hits == 0
        assert pool.misses == 0
