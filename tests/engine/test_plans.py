"""Tests for physical plan node mechanics (layouts, explain, walking)."""


from repro.engine.expr import BinaryOp, ColumnRef, Literal, RowLayout
from repro.engine.plans import (
    AggFunc,
    Aggregate,
    AggSpec,
    Filter,
    HashJoin,
    JoinType,
    Limit,
    Project,
    SeqScan,
    Sort,
    SortKey,
    walk,
)


def scan(alias="t", columns=("a", "b")):
    node = SeqScan(table_name=alias, alias=alias)
    node.layout = RowLayout([(alias, c) for c in columns])
    return node


class TestLayouts:
    def test_inner_join_concatenates(self):
        join = HashJoin(outer=scan("t"), inner=scan("u", ("x",)),
                        outer_keys=[ColumnRef("t", "a")],
                        inner_keys=[ColumnRef("u", "x")])
        assert join.layout.slots == (("t", "a"), ("t", "b"), ("u", "x"))

    def test_semi_join_keeps_outer_only(self):
        join = HashJoin(outer=scan("t"), inner=scan("u", ("x",)),
                        outer_keys=[ColumnRef("t", "a")],
                        inner_keys=[ColumnRef("u", "x")],
                        join_type=JoinType.SEMI)
        assert join.layout.slots == (("t", "a"), ("t", "b"))

    def test_aggregate_layout_names(self):
        agg = Aggregate(input=scan(), group_keys=[ColumnRef("t", "b")],
                        aggregates=[AggSpec(AggFunc.COUNT_STAR, None, "n")],
                        group_names=["b"])
        assert agg.layout.slots == (("_agg", "b"), ("_agg", "n"))

    def test_project_layout_names(self):
        project = Project(input=scan(), exprs=[ColumnRef("t", "a")],
                          names=["renamed"])
        assert project.layout.slots == (("_out", "renamed"),)

    def test_project_default_names(self):
        project = Project(input=scan(), exprs=[Literal(1), Literal(2)])
        assert project.names == ["c0", "c1"]

    def test_passthrough_nodes_share_layout(self):
        base = scan()
        for node in (Sort(input=base, keys=[SortKey(ColumnRef("t", "a"))]),
                     Limit(input=base, count=3),
                     Filter(input=base,
                            predicate=BinaryOp("=", ColumnRef("t", "a"),
                                               Literal(1)))):
            assert node.layout is base.layout


class TestExplain:
    def test_tree_indentation(self):
        plan = Limit(input=Sort(input=scan(),
                                keys=[SortKey(ColumnRef("t", "a"))]), count=5)
        lines = plan.explain().splitlines()
        assert lines[0].startswith("Limit 5")
        assert lines[1].startswith("  Sort")
        assert lines[2].startswith("    SeqScan")

    def test_analyze_appends_actuals_only_when_recorded(self):
        node = scan()
        assert "actual" not in node.explain(analyze=True)
        node.actual_rows = 7
        assert "(actual rows=7)" in node.explain(analyze=True)
        assert "actual" not in node.explain(analyze=False)

    def test_labels_carry_detail(self):
        node = SeqScan(table_name="t", alias="t2",
                       filter_expr=BinaryOp("=", ColumnRef("t2", "a"),
                                            Literal(1)))
        assert "t as t2" in node.node_label()
        assert "filter=" in node.node_label()


class TestWalk:
    def test_preorder(self):
        inner = scan("u", ("x",))
        outer = scan("t")
        join = HashJoin(outer=outer, inner=inner,
                        outer_keys=[ColumnRef("t", "a")],
                        inner_keys=[ColumnRef("u", "x")])
        top = Limit(input=join, count=1)
        nodes = list(walk(top))
        assert nodes == [top, join, outer, inner]
