"""Tests for engine value types."""

import pytest

from repro.engine.types import Date, compare_values, value_byte_size


class TestDate:
    def test_parse_and_format(self):
        date = Date.parse("1995-03-15")
        assert str(date) == "1995-03-15"
        assert date.year == 1995

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Date.parse("not-a-date")

    def test_ordering(self):
        assert Date.parse("1994-01-01") < Date.parse("1994-01-02")
        assert Date.parse("1994-01-01") <= Date.parse("1994-01-01")
        assert Date.parse("1995-01-01") > Date.parse("1994-12-31")

    def test_difference_in_days(self):
        delta = Date.parse("1994-02-01") - Date.parse("1994-01-01")
        assert delta == 31

    def test_add_days(self):
        assert Date.parse("1993-12-30").add_days(3) == Date.parse("1994-01-02")
        assert Date.parse("1994-01-02").add_days(-2) == Date.parse("1993-12-31")

    def test_add_months(self):
        assert Date.parse("1993-07-01").add_months(3) == Date.parse("1993-10-01")
        assert Date.parse("1993-11-15").add_months(2) == Date.parse("1994-01-15")

    def test_add_months_clamps_day(self):
        assert Date.parse("1994-01-31").add_months(1) == Date.parse("1994-02-28")

    def test_add_months_leap_year(self):
        assert Date.parse("1996-01-31").add_months(1) == Date.parse("1996-02-29")

    def test_add_years(self):
        assert Date.parse("1994-01-01").add_years(1) == Date.parse("1995-01-01")

    def test_hashable(self):
        assert len({Date.parse("1994-01-01"), Date.parse("1994-01-01")}) == 1

    def test_not_equal_to_int(self):
        assert Date.parse("1994-01-01") != 728294


class TestValueByteSize:
    @pytest.mark.parametrize("value,size", [
        (None, 1),
        (42, 8),
        (3.14, 8),
        (Date.parse("1994-01-01"), 4),
        ("abcd", 8),  # 4 + len
    ])
    def test_sizes(self, value, size):
        assert value_byte_size(value) == size

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            value_byte_size(object())


class TestCompareValues:
    def test_numeric(self):
        assert compare_values(1, 2) == -1
        assert compare_values(2, 1) == 1
        assert compare_values(2, 2) == 0
        assert compare_values(1, 1.5) == -1

    def test_nulls_sort_last(self):
        assert compare_values(None, 1) == 1
        assert compare_values(1, None) == -1
        assert compare_values(None, None) == 0

    def test_strings(self):
        assert compare_values("a", "b") == -1
