"""Tests for the fault injector (determinism and each injection site)."""

import pytest

from repro import obs
from repro.faults import FaultInjector, FaultPlan
from repro.util.errors import MeasurementFault

SHARES = (0.5, 0.5, 0.5)


def drive(injector, n=200, seconds=1.0):
    """Feed *n* measurements through; returns the observed outcomes."""
    outcomes = []
    for _ in range(n):
        try:
            outcomes.append(injector.on_measurement(SHARES, seconds))
        except MeasurementFault:
            outcomes.append("fault")
    return outcomes


class TestDeterminism:
    def test_equal_plans_inject_identical_sequences(self):
        plan = FaultPlan(name="t", seed=7, transient_rate=0.2,
                         outlier_rate=0.1)
        assert drive(FaultInjector(plan)) == drive(FaultInjector(plan))

    def test_clone_replays_from_start(self):
        injector = FaultInjector(FaultPlan(name="t", transient_rate=0.3))
        first = drive(injector, n=50)
        assert drive(injector.clone(), n=50) == first

    def test_seed_changes_sequence(self):
        a = FaultPlan(name="t", seed=1, transient_rate=0.3)
        b = FaultPlan(name="t", seed=2, transient_rate=0.3)
        assert drive(FaultInjector(a)) != drive(FaultInjector(b))


class TestChannels:
    def test_benign_plan_passes_through(self):
        injector = FaultInjector(FaultPlan())
        assert injector.on_measurement(SHARES, 1.25) == 1.25
        injector.on_boot(SHARES)  # must not raise

    def test_transient_rate_roughly_respected(self):
        injector = FaultInjector(FaultPlan(name="t", transient_rate=0.2))
        outcomes = drive(injector, n=500)
        faults = outcomes.count("fault")
        assert 0.1 < faults / 500 < 0.3

    def test_outliers_scaled_by_magnitude(self):
        injector = FaultInjector(FaultPlan(
            name="t", outlier_rate=0.2, outlier_magnitude=10.0))
        outcomes = drive(injector, n=200)
        assert 10.0 in outcomes  # 1.0s measurements scaled 10x
        assert 1.0 in outcomes   # most pass through

    def test_hangs_add_hang_seconds(self):
        injector = FaultInjector(FaultPlan(
            name="t", hang_rate=0.2, hang_seconds=600.0))
        outcomes = drive(injector, n=200)
        assert 601.0 in outcomes

    def test_fail_first_n_is_deterministic(self):
        injector = FaultInjector(FaultPlan(name="t", fail_first_n=2))
        assert drive(injector, n=4) == ["fault", "fault", 1.0, 1.0]

    def test_dead_allocation_always_fails(self):
        plan = FaultPlan(name="t", dead_allocations=(SHARES,))
        injector = FaultInjector(plan)
        with pytest.raises(MeasurementFault):
            injector.on_boot(SHARES)
        with pytest.raises(MeasurementFault):
            injector.on_measurement(SHARES, 1.0)
        # Other allocations are untouched.
        injector.on_boot((0.25, 0.5, 0.5))

    def test_boot_failure_rate(self):
        injector = FaultInjector(FaultPlan(name="t", boot_failure_rate=0.5))
        failures = 0
        for _ in range(100):
            try:
                injector.on_boot(SHARES)
            except MeasurementFault:
                failures += 1
        assert 30 < failures < 70


class TestAccounting:
    def test_faults_counted_by_kind(self):
        obs.reset()
        injector = FaultInjector(FaultPlan(name="t", fail_first_n=3))
        drive(injector, n=5)
        snapshot = obs.get_registry().snapshot()
        injected = {
            entry["labels"]["kind"]: entry["value"]
            for entry in snapshot["counters"]
            if entry["name"] == "faults.injected"
        }
        assert injected == {"transient": 3}
        obs.reset()

    def test_measurements_seen(self):
        injector = FaultInjector(FaultPlan())
        drive(injector, n=7)
        assert injector.measurements_seen == 7
