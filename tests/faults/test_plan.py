"""Tests for fault plans (the declarative side of fault injection)."""

import pytest

from repro.faults import NAMED_PLANS, FaultPlan
from repro.util.errors import AllocationError


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(AllocationError):
            FaultPlan(transient_rate=1.5)
        with pytest.raises(AllocationError):
            FaultPlan(outlier_rate=-0.1)

    def test_outlier_magnitude_must_exceed_one(self):
        with pytest.raises(AllocationError):
            FaultPlan(outlier_rate=0.1, outlier_magnitude=0.5)

    def test_fail_first_n_non_negative(self):
        with pytest.raises(AllocationError):
            FaultPlan(fail_first_n=-1)


class TestQueries:
    def test_default_plan_is_benign(self):
        assert FaultPlan().is_benign

    def test_any_rate_breaks_benignity(self):
        assert not FaultPlan(transient_rate=0.1).is_benign
        assert not FaultPlan(fail_first_n=1).is_benign
        assert not FaultPlan(
            dead_allocations=((0.5, 0.5, 0.5),)).is_benign

    def test_dead_allocation_matching_quantizes(self):
        plan = FaultPlan(dead_allocations=((0.5, 0.5, 0.5),))
        assert plan.is_dead((0.5, 0.5, 0.5))
        # Within quantization (4 decimals) of the dead point.
        assert plan.is_dead((0.50004, 0.5, 0.5))
        assert not plan.is_dead((0.25, 0.5, 0.5))

    def test_with_overrides_replaces_fields(self):
        plan = FaultPlan.named("none").with_overrides(transient_rate=0.3)
        assert plan.transient_rate == 0.3
        assert plan.name == "none"


class TestNamedPlans:
    def test_named_lookup(self):
        assert FaultPlan.named("noisy").outlier_rate == 0.05

    def test_unknown_name_raises(self):
        with pytest.raises(AllocationError):
            FaultPlan.named("apocalyptic")

    def test_none_plan_is_benign(self):
        assert NAMED_PLANS["none"].is_benign

    def test_plans_name_themselves(self):
        assert all(plan.name == name for name, plan in NAMED_PLANS.items())
