"""Tests for retry policies, backoff, and MAD outlier rejection."""

import pytest

from repro.faults import RetryPolicy, mad_reject, robust_seconds
from repro.util.errors import CalibrationError


class TestRetryPolicy:
    def test_defaults_are_single_trial(self):
        policy = RetryPolicy()
        assert policy.trials == 1
        assert policy.max_attempts == 4

    def test_resilient_preset(self):
        policy = RetryPolicy.resilient()
        assert policy.trials >= 3  # enough for MAD rejection to engage
        assert policy.measurement_deadline_seconds < float("inf")

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_seconds=0.1, backoff_multiplier=2.0,
                             max_backoff_seconds=100.0)
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.2)
        assert policy.backoff_seconds(3) == pytest.approx(0.4)

    def test_backoff_capped(self):
        policy = RetryPolicy(backoff_base_seconds=1.0, backoff_multiplier=10.0,
                             max_backoff_seconds=5.0)
        assert policy.backoff_seconds(4) == 5.0

    def test_backoff_requires_a_failure(self):
        with pytest.raises(CalibrationError):
            RetryPolicy().backoff_seconds(0)

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"trials": 0},
        {"backoff_base_seconds": -1.0},
        {"backoff_multiplier": 0.5},
        {"mad_threshold": 0.0},
        {"measurement_deadline_seconds": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(CalibrationError):
            RetryPolicy(**kwargs)


class TestMadReject:
    def test_obvious_outlier_rejected(self):
        kept, rejected = mad_reject([1.0, 1.1, 0.9, 1.05, 50.0])
        assert rejected == [4]
        assert 50.0 not in kept

    def test_clean_values_all_kept(self):
        values = [1.0, 1.1, 0.9, 1.05, 0.95]
        kept, rejected = mad_reject(values)
        assert kept == values
        assert rejected == []

    def test_zero_mad_fallback_catches_outlier(self):
        # Identical trials + one outlier: MAD is 0, the relative band
        # must still reject the wild value.
        kept, rejected = mad_reject([1.0, 1.0, 1.0, 1.0, 8.0])
        assert rejected == [4]

    def test_fewer_than_three_values_untouched(self):
        assert mad_reject([1.0, 99.0]) == ([1.0, 99.0], [])

    def test_never_rejects_everything(self):
        kept, _rejected = mad_reject([1.0, 2.0, 3.0], threshold=1e-9)
        assert kept  # falls back to the median rather than emptiness


class TestRobustSeconds:
    def test_median_of_survivors(self):
        seconds, n_rejected = robust_seconds([1.0, 1.2, 0.8, 1.1, 10.0])
        assert seconds == pytest.approx(1.05)
        assert n_rejected == 1

    def test_single_trial_passthrough(self):
        assert robust_seconds([3.25]) == (3.25, 0)
