"""Small-scale assertions of the paper's experimental claims.

The benchmarks regenerate the full tables; these tests pin the *shape*
of each result at test-friendly scale so regressions are caught by
``pytest tests/``:

* Figure 3 — ``cpu_tuple_cost`` falls with the CPU share and rises with
  the memory share.
* Figure 4 — Q13 is far more CPU-sensitive than Q4, for both estimated
  and measured times, and estimates rank allocations like measurements.
* Figure 5 — shifting CPU from the Q4 workload to the Q13 workload
  improves the Q13 workload substantially while degrading Q4 little.
"""

import pytest

from repro.core.cost_model import MeasuredCostModel, OptimizerCostModel
from repro.core.problem import WorkloadSpec
from repro.virt.resources import ResourceVector
from repro.workloads import build_tpch_database, tpch_query
from repro.workloads.workload import Workload

CPU_LEVELS = (0.25, 0.5, 0.75)


def alloc(cpu, memory=0.5, io=0.5):
    return ResourceVector.of(cpu=cpu, memory=memory, io=io)


@pytest.fixture(scope="module")
def tpch(lab_machine):
    # Scale factor 0.01 puts lineitem (~1100 pages) beyond every VM's
    # buffer pool on the laboratory machine while orders/customer fit at
    # moderate memory shares — the same database-size-to-RAM regime as
    # the paper's 4 GB database on a 4 GB host. Smaller scales lose
    # Q4's I/O-bound character.
    return build_tpch_database(
        scale_factor=0.01, tables=["customer", "orders", "lineitem"],
        name="paper",
    )


@pytest.fixture(scope="module")
def q4_spec(tpch):
    return WorkloadSpec(Workload("q4", [tpch_query("Q4")]), tpch)


@pytest.fixture(scope="module")
def q13_spec(tpch):
    return WorkloadSpec(Workload("q13", [tpch_query("Q13")]), tpch)


class TestFigure3Shape:
    def test_cpu_tuple_cost_sensitive_to_cpu(self, calibration_cache):
        values = [
            calibration_cache.params_for(alloc(cpu)).cpu_tuple_cost
            for cpu in CPU_LEVELS
        ]
        assert values[0] > values[1] > values[2]

    def test_cpu_tuple_cost_sensitive_to_memory(self, calibration_cache):
        values = [
            calibration_cache.params_for(
                ResourceVector.of(cpu=0.5, memory=m, io=0.5)
            ).cpu_tuple_cost
            for m in (0.25, 0.75)
        ]
        assert values[1] > values[0]


class TestFigure4Shape:
    @pytest.fixture(scope="class")
    def sensitivities(self, q4_spec, q13_spec, lab_machine, calibration_cache):
        estimated = OptimizerCostModel(calibration_cache)
        measured = MeasuredCostModel(lab_machine, calibration=calibration_cache)
        out = {}
        for label, spec in (("q4", q4_spec), ("q13", q13_spec)):
            est = [estimated.cost(spec, alloc(c)) for c in CPU_LEVELS]
            act = [measured.cost(spec, alloc(c)) for c in CPU_LEVELS]
            out[label] = {
                "est": [v / est[1] for v in est],
                "act": [v / act[1] for v in act],
            }
        return out

    def test_q13_strongly_cpu_sensitive(self, sensitivities):
        spread = sensitivities["q13"]["act"][0] / sensitivities["q13"]["act"][2]
        assert spread > 1.5

    def test_q4_weakly_cpu_sensitive(self, sensitivities):
        spread = sensitivities["q4"]["act"][0] / sensitivities["q4"]["act"][2]
        assert spread < 1.35

    def test_q13_more_sensitive_than_q4(self, sensitivities):
        q13 = sensitivities["q13"]["act"][0] / sensitivities["q13"]["act"][2]
        q4 = sensitivities["q4"]["act"][0] / sensitivities["q4"]["act"][2]
        assert q13 > q4

    def test_estimates_rank_like_measurements(self, sensitivities):
        for query in ("q4", "q13"):
            est = sensitivities[query]["est"]
            act = sensitivities[query]["act"]
            assert sorted(range(3), key=lambda i: est[i]) == \
                sorted(range(3), key=lambda i: act[i])

    def test_estimated_q13_sensitivity_matches_direction(self, sensitivities):
        est = sensitivities["q13"]["est"]
        assert est[0] > est[1] > est[2]


class TestFigure5Shape:
    @pytest.fixture(scope="class")
    def workload_times(self, tpch, lab_machine, calibration_cache):
        q4_workload = WorkloadSpec(
            Workload.repeat("w-q4", tpch_query("Q4"), 3), tpch
        )
        q13_workload = WorkloadSpec(
            Workload.repeat("w-q13", tpch_query("Q13"), 9), tpch
        )
        measured = MeasuredCostModel(lab_machine, calibration=calibration_cache)
        return {
            "default": {
                "q4": measured.cost(q4_workload, alloc(0.5)),
                "q13": measured.cost(q13_workload, alloc(0.5)),
            },
            "designed": {
                "q4": measured.cost(q4_workload, alloc(0.25)),
                "q13": measured.cost(q13_workload, alloc(0.75)),
            },
        }

    def test_q13_workload_improves_substantially(self, workload_times):
        improvement = 1 - workload_times["designed"]["q13"] / \
            workload_times["default"]["q13"]
        assert improvement > 0.15  # paper reports ~30%

    def test_q4_workload_barely_hurt(self, workload_times):
        degradation = workload_times["designed"]["q4"] / \
            workload_times["default"]["q4"] - 1
        assert degradation < 0.25

    def test_total_improves(self, workload_times):
        default_total = sum(workload_times["default"].values())
        designed_total = sum(workload_times["designed"].values())
        assert designed_total < default_total
