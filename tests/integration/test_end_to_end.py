"""End-to-end integration: virtualization design from calibration to
deployment, exercising every subsystem together."""

import pytest

from repro import (
    MeasuredCostModel,
    OptimizerCostModel,
    ResourceKind,
    ResourceVector,
    VirtualizationDesigner,
    VirtualizationDesignProblem,
    VirtualMachineMonitor,
    Workload,
    WorkloadSpec,
    build_tpch_database,
    tpch_query,
)


@pytest.fixture(scope="module")
def specs():
    db_io = build_tpch_database(scale_factor=0.002,
                                tables=["orders", "lineitem"], name="io-db")
    db_cpu = build_tpch_database(scale_factor=0.002,
                                 tables=["customer", "orders"], name="cpu-db")
    return [
        WorkloadSpec(Workload.repeat("io-workload", tpch_query("Q4"), 2), db_io),
        WorkloadSpec(Workload.repeat("cpu-workload", tpch_query("Q13"), 4), db_cpu),
    ]


@pytest.fixture(scope="module")
def design(specs, lab_machine, calibration_cache):
    problem = VirtualizationDesignProblem(
        machine=lab_machine, specs=specs,
        controlled_resources=(ResourceKind.CPU,),
    )
    designer = VirtualizationDesigner(problem, OptimizerCostModel(calibration_cache))
    return designer, designer.design("exhaustive", grid=4)


class TestDesignPipeline:
    def test_design_is_feasible(self, design):
        _designer, result = design
        result.allocation.validate()

    def test_design_no_worse_than_default(self, design):
        _designer, result = design
        assert result.predicted_total_cost <= result.default_total_cost + 1e-9

    def test_cpu_goes_to_cpu_workload(self, design):
        _designer, result = design
        cpu_share = result.allocation.vector_for("cpu-workload").cpu
        io_share = result.allocation.vector_for("io-workload").cpu
        assert cpu_share >= io_share

    def test_design_validated_by_measurement(self, design, specs, lab_machine,
                                             calibration_cache):
        """The decision made on estimates must hold under measurement."""
        designer, result = design
        measured = MeasuredCostModel(lab_machine, calibration=calibration_cache)
        chosen_total = sum(
            measured.cost(spec, result.allocation.vector_for(spec.name))
            for spec in specs
        )
        default_total = sum(
            measured.cost(spec, result.default_allocation.vector_for(spec.name))
            for spec in specs
        )
        assert chosen_total <= default_total * 1.05  # allow modeling slack

    def test_deployment_on_vmm(self, design, lab_machine):
        designer, result = design
        vmm = VirtualMachineMonitor.single_host(lab_machine)
        designer.apply(vmm, result)
        assert set(vmm.vms) == {"io-workload", "cpu-workload"}
        for name, vm in vmm.vms.items():
            assert vm.shares == result.allocation.vector_for(name)
            # The workload's database is attached and sized to the VM.
            assert vm.guest is designer.problem.spec(name).database

    def test_deployed_vm_answers_queries(self, design, lab_machine):
        designer, result = design
        vmm = VirtualMachineMonitor.single_host(lab_machine)
        designer.apply(vmm, result)
        db = vmm.vms["cpu-workload"].guest
        answer = db.run_sql("select count(*) as n from customer")
        assert answer.rows[0][0] == db.catalog.table("customer").heap.n_rows


class TestApplianceWorkflow:
    def test_snapshot_deploy_query(self, lab_machine):
        """The paper's software-appliance story end to end."""
        vmm = VirtualMachineMonitor.single_host(lab_machine)
        template = vmm.create_vm(
            "template", ResourceVector.of(cpu=0.5, memory=0.5, io=0.5)
        )
        db = build_tpch_database(scale_factor=0.002, tables=["region"],
                                 name="appliance")
        template.attach_guest(db)
        image = template.snapshot()
        vmm.destroy_vm("template")

        first = vmm.deploy_image(image, "prod-1",
                                 shares=ResourceVector.of(cpu=0.3, memory=0.3, io=0.3))
        second = vmm.deploy_image(image, "prod-2",
                                  shares=ResourceVector.of(cpu=0.3, memory=0.3, io=0.3))
        first.guest.load_rows("region", [(99, "ATLANTIS", "sunken")])
        assert len(first.guest.run_sql("select r_name from region").rows) == 6
        assert len(second.guest.run_sql("select r_name from region").rows) == 5
