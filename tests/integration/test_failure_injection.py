"""Failure injection: the stack must fail loudly and precisely.

These tests drive the system into degenerate and hostile configurations
and pin the failure mode: a specific exception with a diagnosable
message, never a wrong answer or a hang.
"""

import pytest

from repro.core.designer import VirtualizationDesigner
from repro.core.search import ExhaustiveSearch
from repro.core.slo import ServiceLevelObjective, SloPolicy
from repro.engine.database import Database
from repro.util.errors import (
    AdmissionError,
    AllocationError,
    CalibrationError,
    ReproError,
)
from repro.virt.machine import PhysicalMachine
from repro.virt.monitor import VirtualMachineMonitor
from repro.virt.resources import ResourceKind, ResourceVector
from repro.virt.vm import VirtualMachine, VMConfig
from tests.conftest import simple_schema
from tests.core.test_search import make_problem


class TestDegenerateVMs:
    def test_zero_io_share_fails_on_first_read(self):
        machine = PhysicalMachine(memory_mib=1024.0)
        vm = VirtualMachine(machine, VMConfig(
            name="no-io", shares=ResourceVector.of(cpu=0.5, memory=0.5, io=0.0)
        ))
        with pytest.raises(AllocationError, match="I/O share"):
            vm.seq_page_read_seconds()

    def test_zero_cpu_share_fails_on_cpu_work(self):
        machine = PhysicalMachine(memory_mib=1024.0)
        vm = VirtualMachine(machine, VMConfig(
            name="no-cpu", shares=ResourceVector.of(cpu=0.0, memory=0.5, io=0.5)
        ))
        with pytest.raises(AllocationError):
            vm.scheduler.cpu_seconds(1000.0, vm.shares.cpu)

    def test_unbootable_memory_rejected_at_start(self):
        machine = PhysicalMachine(memory_mib=16.0)
        vm = VirtualMachine(machine, VMConfig(
            name="tiny", shares=ResourceVector.of(cpu=0.5, memory=0.1, io=0.5)
        ))
        with pytest.raises(AdmissionError, match="required to boot"):
            vm.start()

    def test_database_survives_minimal_buffer_pool(self):
        db = Database("tiny", memory_pages=1)
        db.create_table(simple_schema())
        db.load_rows("t", [(i, i, "x") for i in range(2000)])
        db.analyze()
        result = db.run_sql("select count(*) as n from t")
        assert result.rows[0][0] == 2000


class TestSearchInfeasibility:
    def test_memory_search_respects_boot_floor(self):
        # On a 10 MiB machine each guest needs >= 4 MiB (40%); three
        # guests cannot all receive the boot floor, so the search must
        # refuse rather than emit an un-bootable allocation.
        problem, model = make_problem(
            {"a": (1.0, 1.0), "b": (1.0, 1.0), "c": (1.0, 1.0)},
            controlled=(ResourceKind.MEMORY,),
        )
        object.__setattr__(problem, "machine", PhysicalMachine(memory_mib=10.0))
        with pytest.raises(AllocationError):
            ExhaustiveSearch(grid=8).search(problem, model)

    def test_memory_candidates_all_bootable(self):
        problem, model = make_problem(
            {"a": (1.0, 4.0), "b": (4.0, 1.0)},
            controlled=(ResourceKind.MEMORY,),
        )
        object.__setattr__(problem, "machine", PhysicalMachine(memory_mib=20.0))
        result = ExhaustiveSearch(grid=8).search(problem, model)
        for name in result.allocation.workload_names():
            share = result.allocation.vector_for(name).memory
            assert share * 20.0 >= 4.0  # MIN_GUEST_MEMORY_MIB


class TestInfeasibleSlo:
    def test_impossible_slos_pick_least_violation(self):
        # Both workloads demand near-dedicated CPU; no allocation
        # satisfies both. The search must still return an allocation
        # (the least-violating one), not crash.
        weights = {"a": (10.0, 0.0), "b": (10.0, 0.0)}
        problem, model = make_problem(weights,
                                      controlled=(ResourceKind.CPU,))
        policy = SloPolicy({
            "a": ServiceLevelObjective(max_seconds=12.0),
            "b": ServiceLevelObjective(max_seconds=12.0),
        })
        designer = VirtualizationDesigner(problem, model, slo=policy)
        design = designer.design("exhaustive", grid=8)
        # Symmetric demands -> least violation is the even split.
        assert design.allocation.vector_for("a").cpu == pytest.approx(0.5)


class TestHostileSql:
    @pytest.fixture
    def db(self):
        db = Database("hostile", memory_pages=1024)
        db.create_table(simple_schema())
        db.load_rows("t", [(1, 2, "x")])
        db.analyze()
        return db

    @pytest.mark.parametrize("sql", [
        "select",                                 # truncated
        "select a from",                          # missing table
        "select a from t where",                  # missing predicate
        "select a from t order by",               # missing key
        "select (select a from t where",          # unbalanced subquery
        "select a from t t2 join",                # dangling join
        "select 'unterminated from t",            # bad literal
        "select a from t limit -1",               # negative limit
        "select a from t; drop table t",          # trailing statement
    ])
    def test_malformed_sql_raises_sql_error(self, db, sql):
        with pytest.raises(ReproError):
            db.run_sql(sql)

    def test_deeply_nested_expression_ok(self, db):
        expr = "a" + (" + 1" * 200)
        result = db.run_sql(f"select {expr} as v from t")
        assert result.rows[0][0] == 201

    def test_pathological_like_pattern_terminates(self, db):
        db.load_rows("t", [(9, 9, "a" * 500)])
        result = db.run_sql(
            "select count(*) as n from t where c like "
            "'%a%a%a%a%a%a%a%a%b'"
        )
        assert result.rows[0][0] == 0


class TestCorruptCalibrationFiles:
    def test_missing_file(self, calibration_cache, tmp_path):
        with pytest.raises(CalibrationError, match="cannot read"):
            calibration_cache.load(tmp_path / "absent.json")

    def test_malformed_json(self, calibration_cache, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(CalibrationError, match="corrupt or truncated"):
            calibration_cache.load(path)

    def test_wrong_shape_allocation(self, calibration_cache, tmp_path):
        import json

        path = tmp_path / "short-key.json"
        path.write_text(json.dumps({
            "format": "repro-calibration-cache/1",
            "points": [{"allocation": [0.5], "parameters": {}}],
        }))
        with pytest.raises(CalibrationError):
            calibration_cache.load(path)


class TestVmmEdgeCases:
    def test_destroying_unknown_vm(self):
        vmm = VirtualMachineMonitor.single_host(PhysicalMachine())
        with pytest.raises(AllocationError):
            vmm.destroy_vm("ghost")

    def test_migrate_unknown_target(self):
        vmm = VirtualMachineMonitor.single_host(PhysicalMachine())
        vmm.create_vm("a", ResourceVector.of(cpu=0.1, memory=0.1, io=0.1))
        with pytest.raises(AllocationError):
            vmm.migrate("a", "nonexistent-host")

    def test_designer_apply_rejects_oversubscribed_host(self):
        # A host already running a large VM cannot absorb a full design.
        weights = {"a": (1.0, 1.0), "b": (1.0, 1.0)}
        problem, model = make_problem(weights)
        designer = VirtualizationDesigner(problem, model)
        design = designer.design("exhaustive", grid=4)
        vmm = VirtualMachineMonitor.single_host(PhysicalMachine(memory_mib=4096))
        vmm.create_vm("squatter", ResourceVector.of(cpu=0.9, memory=0.9, io=0.9))
        with pytest.raises(AdmissionError):
            designer.apply(vmm, design)
