"""Cardinality-estimation quality: estimated vs actual row counts.

The paper's method stands on optimizer estimates; these tests bound how
far the planner's row estimates drift from reality on TPC-H shapes.
Ratios are deliberately loose — real optimizers miss by factors too —
but catastrophic misestimates (orders of magnitude on base scans) would
silently break every experiment, so they are pinned here.
"""

import pytest

from repro.engine.plans import Aggregate, IndexScan, SeqScan, walk
from repro.workloads.tpch_queries import QUERIES


def executed_plan(db, sql):
    result = db.run_sql(sql)
    return result.plan


class TestScanEstimates:
    @pytest.mark.parametrize("sql,max_ratio", [
        ("select count(*) as n from orders where "
         "o_orderdate >= date '1993-07-01' and "
         "o_orderdate < date '1993-10-01'", 1.6),
        ("select count(*) as n from lineitem where l_quantity < 24", 1.6),
        ("select count(*) as n from lineitem where "
         "l_shipdate >= date '1994-01-01' and "
         "l_shipdate < date '1995-01-01'", 1.6),
    ])
    def test_filtered_scan_estimates(self, tpch_db, sql, max_ratio):
        plan = executed_plan(tpch_db, sql)
        scan = next(node for node in walk(plan)
                    if isinstance(node, (SeqScan, IndexScan)))
        actual = max(1, scan.actual_rows)
        ratio = max(scan.est_rows / actual, actual / scan.est_rows)
        assert ratio < max_ratio, (scan.est_rows, scan.actual_rows)

    def test_unfiltered_scan_exact(self, tpch_db):
        plan = executed_plan(tpch_db, "select count(*) as n from customer")
        scan = next(node for node in walk(plan) if isinstance(node, SeqScan))
        assert scan.est_rows == pytest.approx(scan.actual_rows)

    def test_group_count_estimate(self, tpch_db):
        plan = executed_plan(
            tpch_db,
            "select o_orderpriority, count(*) as n from orders "
            "group by o_orderpriority",
        )
        agg = next(node for node in walk(plan) if isinstance(node, Aggregate))
        assert agg.est_rows == pytest.approx(agg.actual_rows, rel=0.5)


class TestJoinEstimates:
    def test_fk_join_estimate_within_factor(self, tpch_db):
        plan = executed_plan(
            tpch_db,
            "select count(*) as n from customer, orders "
            "where c_custkey = o_custkey",
        )
        # The join output equals the orders count (FK join).
        join = next(node for node in walk(plan)
                    if node.node_label().startswith(("HashJoin", "MergeJoin",
                                                     "NestedLoopJoin")))
        actual = max(1, join.actual_rows)
        ratio = max(join.est_rows / actual, actual / join.est_rows)
        assert ratio < 3.0


class TestExplainAnalyze:
    def test_renders_actual_rows(self, tpch_db):
        text = tpch_db.explain_analyze(
            "select count(*) as n from orders where o_custkey = 1"
        )
        assert "actual rows=" in text
        assert "cost=" in text

    def test_q4_every_node_instrumented(self, tpch_db):
        result = tpch_db.run_sql(QUERIES["Q4"])
        for node in walk(result.plan):
            assert node.actual_rows is not None
