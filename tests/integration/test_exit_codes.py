"""Exit-code contract audit: one table, every subcommand.

The CLI promises a stable four-code contract (documented in
docs/robustness.md): 0 success, 2 usage/validation error, 3 permanent
failure, 4 stopped early but resumable. This table pins at least one
concrete scenario per subcommand per applicable code, and a
completeness check fails the build the moment a new subcommand ships
without joining the table.
"""

from __future__ import annotations

import argparse

import pytest

from repro.cli import build_parser, main


def exit_code(argv) -> int:
    """Run the CLI; fold argparse's SystemExit into the return code."""
    try:
        return main([str(piece) for piece in argv])
    except SystemExit as stop:
        return int(stop.code)


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """Shared on-disk inputs: a corrupt cache and a killed serve run."""
    base = tmp_path_factory.mktemp("exit-codes")
    corrupt = base / "corrupt.json"
    corrupt.write_text("{ not json")
    stopped = base / "stopped-serve.journal"
    code = exit_code(["serve", "--plan", "none", "--requests", 10,
                      "--rate", 50, "--grid", 3, "--surrogate-budget", 6,
                      "--journal", stopped, "--max-units", 0])
    assert code == 4, "fixture serve run should stop early, resumable"
    return {"corrupt": corrupt, "stopped": stopped,
            "missing": base / "nope.journal", "tmp": base}


#: subcommand -> ((expected code, argv builder), ...). Builders take the
#: artifacts dict; numbers are stringified by exit_code.
CONTRACT = {
    "calibrate": (
        (0, lambda a: ["calibrate"]),
        (2, lambda a: ["calibrate", "--cpu", 1.5]),
        (3, lambda a: ["calibrate", "--load", a["corrupt"]]),
    ),
    "design": (
        (0, lambda a: ["design", "--scale", 0.002, "--grid", 3,
                       "--algorithm", "greedy"]),
        (2, lambda a: ["design", "--algorithm", "simulated-annealing"]),
    ),
    "explain": (
        (0, lambda a: ["explain", "--query", "Q4", "--scale", 0.002]),
        (2, lambda a: ["explain", "--cpu", -0.25]),
    ),
    "experiment": (
        (2, lambda a: ["experiment", "fig9"]),
        (3, lambda a: ["experiment", "fig3", "--load", a["corrupt"]]),
    ),
    "report": (
        (0, lambda a: ["report", "--scale", 0.002, "--grid", 3,
                       "--algorithm", "greedy"]),
        (3, lambda a: ["report", "--load", a["corrupt"]]),
    ),
    "chaos": (
        (2, lambda a: ["chaos", "--plan", "none", "--transient-rate", 1.5,
                       "--scale", 0.002]),
        (4, lambda a: ["chaos", "--plan", "none", "--scale", 0.002,
                       "--grid", 3, "--algorithm", "greedy",
                       "--journal", a["tmp"] / "chaos.journal",
                       "--max-units", 0]),
    ),
    "monitor": (
        (2, lambda a: ["monitor", "--plan", "no-such-plan"]),
        (4, lambda a: ["monitor", "--plan", "none", "--scale", 0.002,
                       "--grid", 3, "--surrogate-budget", 6,
                       "--epochs", 2,
                       "--journal", a["tmp"] / "monitor.journal",
                       "--max-units", 0]),
    ),
    "serve": (
        (2, lambda a: ["serve", "--requests", 0]),
        (4, lambda a: ["serve", "--plan", "none", "--requests", 10,
                       "--rate", 50, "--grid", 3, "--surrogate-budget", 6,
                       "--journal", a["tmp"] / "serve.journal",
                       "--max-units", 0]),
    ),
    "fleet": (
        (2, lambda a: ["fleet", "--algorithm", "tabu-search"]),
        (4, lambda a: ["fleet", "--hosts", 3, "--workloads", 6,
                       "--grid", 4,
                       "--journal", a["tmp"] / "fleet.journal",
                       "--max-units", 1]),
    ),
    "resume": (
        (0, lambda a: ["resume", a["stopped"]]),
        (3, lambda a: ["resume", a["missing"]]),
    ),
    "profile": (
        (0, lambda a: ["profile", "--scenario", "workload", "--smoke",
                       "--output-dir", a["tmp"] / "profiles"]),
        (2, lambda a: ["profile", "--scenario", "no-such-flow"]),
    ),
}


def subcommands() -> set:
    for action in build_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            return set(action.choices)
    raise AssertionError("the CLI parser has no subcommands")


class TestResumeWorkerFlag:
    """The journal's worker count wins over --workers, with a warning.

    Results are bit-identical across worker counts, so following the
    journal is safe — but the flag must not be *silently* discarded.
    """

    @pytest.fixture(scope="class")
    def journal(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("resume-workers") / "chaos.journal"
        code = exit_code(["chaos", "--plan", "none", "--scale", 0.002,
                          "--grid", 3, "--algorithm", "greedy",
                          "--workers", 2, "--journal", path,
                          "--max-units", 0])
        assert code == 4, "fixture chaos run should stop early, resumable"
        return path

    def test_differing_flag_warns_and_is_overridden(self, journal, capsys):
        assert exit_code(["resume", journal, "--workers", 1]) == 0
        err = capsys.readouterr().err
        assert "warning: journal records workers=2" in err
        assert "ignoring --workers 1" in err

    def test_matching_flag_is_silent(self, journal, capsys):
        assert exit_code(["resume", journal, "--workers", 2]) == 0
        assert "warning" not in capsys.readouterr().err

    def test_absent_flag_follows_journal_silently(self, journal, capsys):
        assert exit_code(["resume", journal]) == 0
        assert "warning" not in capsys.readouterr().err


class TestContractTable:
    def test_every_subcommand_is_audited(self):
        assert set(CONTRACT) == subcommands(), (
            "a subcommand is missing from (or stale in) the exit-code "
            "contract table — every subcommand must pin its codes here "
            "and in docs/robustness.md")

    def test_every_documented_code_appears(self):
        pinned = {code for rows in CONTRACT.values() for code, _ in rows}
        assert pinned == {0, 2, 3, 4}

    @pytest.mark.parametrize(
        "command,expected,build",
        [pytest.param(command, code, build, id=f"{command}-{code}")
         for command, rows in CONTRACT.items()
         for code, build in rows])
    def test_scenario(self, command, expected, build, artifacts, capsys):
        assert exit_code(build(artifacts)) == expected
        err = capsys.readouterr().err
        if expected in (2, 3):
            # Failures are typed and explained, never raw tracebacks.
            assert "error:" in err or "usage:" in err
            assert "Traceback" not in err
