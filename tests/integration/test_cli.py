"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCalibrate:
    def test_prints_parameters(self, capsys):
        assert main(["calibrate", "--cpu", "0.5", "--memory", "0.5",
                     "--io", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "cpu_tuple_cost" in out
        assert "seconds_per_seq_page" in out

    def test_save_and_load_roundtrip(self, capsys, tmp_path):
        path = tmp_path / "cal.json"
        main(["calibrate", "--save", str(path)])
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert payload["format"].startswith("repro-calibration-cache")
        assert main(["calibrate", "--load", str(path)]) == 0
        assert "cpu_tuple_cost" in capsys.readouterr().out


class TestExplain:
    def test_explain_renders_plan(self, capsys):
        assert main(["explain", "--query", "Q13", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "What-if plan" in out
        assert "Aggregate" in out

    def test_unknown_query_fails(self):
        with pytest.raises(KeyError):
            main(["explain", "--query", "Q99", "--scale", "0.002"])


class TestDesign:
    def test_design_summary(self, capsys):
        assert main(["design", "--scale", "0.002", "--grid", "4",
                     "--algorithm", "greedy"]) == 0
        out = capsys.readouterr().out
        assert "Design via greedy" in out
        assert "order-audit" in out and "cust-report" in out


class TestExperiment:
    def test_fig3_prints_surface(self, capsys):
        assert main(["experiment", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "mem 75%" in out
        # Three CPU rows with numeric cells.
        assert out.count("cpu ") >= 3


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig9"])
