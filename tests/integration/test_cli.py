"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCalibrate:
    def test_prints_parameters(self, capsys):
        assert main(["calibrate", "--cpu", "0.5", "--memory", "0.5",
                     "--io", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "cpu_tuple_cost" in out
        assert "seconds_per_seq_page" in out

    def test_save_and_load_roundtrip(self, capsys, tmp_path):
        path = tmp_path / "cal.json"
        main(["calibrate", "--save", str(path)])
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert payload["format"].startswith("repro-calibration-cache")
        assert main(["calibrate", "--load", str(path)]) == 0
        assert "cpu_tuple_cost" in capsys.readouterr().out


class TestExplain:
    def test_explain_renders_plan(self, capsys):
        assert main(["explain", "--query", "Q13", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "What-if plan" in out
        assert "Aggregate" in out

    def test_unknown_query_fails(self):
        with pytest.raises(KeyError):
            main(["explain", "--query", "Q99", "--scale", "0.002"])


class TestDesign:
    def test_design_summary(self, capsys):
        assert main(["design", "--scale", "0.002", "--grid", "4",
                     "--algorithm", "greedy"]) == 0
        out = capsys.readouterr().out
        assert "Design via greedy" in out
        assert "order-audit" in out and "cust-report" in out


class TestExperiment:
    def test_fig3_prints_surface(self, capsys):
        assert main(["experiment", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "mem 75%" in out
        # Three CPU rows with numeric cells.
        assert out.count("cpu ") >= 3


class TestReport:
    def test_report_prints_counted_work(self, capsys):
        assert main(["report", "--scale", "0.002", "--grid", "4",
                     "--algorithm", "greedy"]) == 0
        out = capsys.readouterr().out
        assert "Run report — design/greedy" in out
        assert "cost-model evaluations" in out
        assert "calibration lookups" in out
        assert "buffer-pool hit ratio" in out
        assert "greedy" in out  # per-algorithm search table

    def test_report_json_matches_text_data(self, capsys):
        assert main(["report", "--scale", "0.002", "--grid", "4",
                     "--algorithm", "greedy", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-run-report/8"
        assert payload["label"] == "design/greedy"
        assert payload["summary"]["cost_model_evaluations"] > 0
        assert payload["summary"]["calibration_experiments"] > 0
        assert 0.0 <= payload["summary"]["buffer_hit_ratio"] <= 1.0
        # Format 2 adds the resilience keys (all zero in a fault-free run).
        assert payload["summary"]["faults_injected"] == 0
        assert payload["summary"]["retries"] == 0
        assert payload["summary"]["fallbacks"] == 0

    def test_stats_flag_appends_report(self, capsys):
        assert main(["calibrate", "--cpu", "0.5", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "cpu_tuple_cost" in out          # the command's own output
        assert "Run report" in out              # plus the appended report
        assert "calibration experiments" in out

    def test_stats_json_writes_file(self, capsys, tmp_path):
        path = tmp_path / "stats.json"
        assert main(["calibrate", "--cpu", "0.5",
                     "--stats-json", str(path)]) == 0
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-run-report/8"
        assert payload["summary"]["calibration_experiments"] >= 1


@pytest.mark.chaos
class TestChaos:
    def test_chaos_completes_design_under_faults(self, capsys):
        assert main(["chaos", "--plan", "noisy", "--scale", "0.002",
                     "--grid", "3", "--algorithm", "greedy"]) == 0
        out = capsys.readouterr().out
        assert "fault plan 'noisy'" in out
        assert "Design via greedy" in out
        assert "Resilience summary" in out
        assert "retries (measurement)" in out

    def test_chaos_benign_plan_reports_no_faults(self, capsys):
        assert main(["chaos", "--plan", "none", "--scale", "0.002",
                     "--grid", "3", "--algorithm", "greedy"]) == 0
        out = capsys.readouterr().out
        assert "no faults injected" in out

    def test_chaos_rate_overrides(self, capsys):
        assert main(["chaos", "--plan", "none", "--transient-rate", "0.3",
                     "--scale", "0.002", "--grid", "3",
                     "--algorithm", "greedy"]) == 0
        captured = capsys.readouterr()
        assert "transient=30%" in captured.err
        assert "faults injected (transient)" in captured.out


@pytest.mark.recovery
class TestJournaledChaosRoundTrip:
    def test_kill_then_resume_reproduces_the_design(self, capsys, tmp_path):
        """The acceptance demo: a supervised chaos run killed mid-flight
        resumes from its journal to the same design."""
        journal = tmp_path / "run.journal"
        base = ["--plan", "turbulent", "--scale", "0.002", "--grid", "3",
                "--algorithm", "greedy", "--watchdog-probes", "4"]
        assert main(["chaos", *base, "--journal", str(journal),
                     "--max-units", "2"]) == 4
        out = capsys.readouterr().out
        assert "resumable with: repro resume" in out

        assert main(["resume", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "Design via greedy" in out
        assert "unit(s) replayed" in out
        # Resuming an already-complete run replays everything, computes
        # nothing, and prints the same design again.
        assert main(["resume", str(journal)]) == 0
        assert "Design via greedy" in capsys.readouterr().out


@pytest.mark.drift
class TestMonitor:
    ARGS = ["--scale", "0.002", "--grid", "3", "--algorithm", "greedy",
            "--surrogate-budget", "10", "--epochs", "3",
            "--drift-threshold", "0.05", "--recal-budget", "6",
            "--host-degrade-rate", "0.5", "--host-degrade-factor", "0.8"]

    def test_monitor_prints_trajectory_and_drift_summary(self, capsys):
        assert main(["monitor", *self.ARGS]) == 0
        captured = capsys.readouterr()
        assert "fault plan 'turbulent'" in captured.err
        assert "Online trajectory" in captured.out
        assert "cpu capacity" in captured.out
        assert "Design via" in captured.out
        assert "recalibration budget:" in captured.out

    def test_monitor_kill_then_resume_round_trip(self, capsys, tmp_path):
        journal = tmp_path / "online.journal"
        assert main(["monitor", *self.ARGS, "--journal", str(journal),
                     "--max-units", "3"]) == 4
        assert "resumable with: repro resume" in capsys.readouterr().out

        assert main(["resume", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "Online trajectory" in out
        assert "unit(s) replayed" in out

    def test_design_online_delegates_to_the_loop(self, capsys):
        assert main(["design", "--online", "--scale", "0.002",
                     "--grid", "3", "--algorithm", "greedy",
                     "--surrogate-budget", "10", "--epochs", "2",
                     "--drift-threshold", "0.05",
                     "--recal-budget", "6"]) == 0
        out = capsys.readouterr().out
        assert "Online trajectory" in out
        assert "Design via" in out


class TestExitCodes:
    """The CLI exit-code contract (documented in docs/robustness.md):
    0 success, 2 usage/validation, 3 permanent failure, 4 stopped early."""

    def test_usage_error_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--plan", "no-such-plan"])
        assert excinfo.value.code == 2

    def test_invalid_fault_rate_exits_2(self, capsys):
        assert main(["chaos", "--plan", "none", "--transient-rate", "1.5",
                     "--scale", "0.002"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_calibration_cache_exits_3(self, capsys, tmp_path):
        path = tmp_path / "cal.json"
        path.write_text("{ not json")
        assert main(["calibrate", "--load", str(path)]) == 3
        assert "error:" in capsys.readouterr().err

    def test_missing_journal_exits_3(self, capsys, tmp_path):
        assert main(["resume", str(tmp_path / "nope.journal")]) == 3
        assert "error:" in capsys.readouterr().err

    @pytest.mark.chaos
    def test_early_stopped_search_exits_4(self, capsys):
        assert main(["chaos", "--plan", "none", "--scale", "0.002",
                     "--grid", "3", "--algorithm", "greedy",
                     "--max-evaluations", "1"]) == 4
        capsys.readouterr()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig9"])
