"""Shared fixtures for the fleet-placement tests.

The fleets are deliberately tiny (a handful of hosts, a dozen
workloads, a coarse grid) so the suites that re-run whole placements —
determinism, kill-at-every-unit resume — stay affordable while still
exercising heterogeneous hosts and multi-cluster placement.
"""

from __future__ import annotations

import pytest

from repro.fleet import synthetic_fleet

SEED = 3
GRID = 8


@pytest.fixture(scope="package")
def small_problem():
    """4 heterogeneous hosts, 12 workloads — the standard test fleet."""
    return synthetic_fleet(4, 12, seed=SEED, grid=GRID)
