"""Tests for the cluster → tune → reroute placement loop."""

import pytest

from repro.fleet import (
    FleetDesigner,
    HostDesign,
    round_robin_assignment,
)


@pytest.fixture(scope="module")
def design(small_problem):
    return FleetDesigner(small_problem, max_rounds=8,
                         move_fraction=0.25).design()


class TestFleetDesign:
    def test_places_every_workload_on_a_known_host(self, small_problem,
                                                   design):
        assert sorted(design.assignment) == sorted(
            small_problem.workload_names())
        hosts = set(small_problem.host_names())
        assert set(design.assignment.values()) <= hosts

    def test_host_designs_partition_the_workloads(self, design):
        placed = [t for d in design.host_designs.values()
                  for t in d.tenants]
        assert sorted(placed) == sorted(design.assignment)
        for host, host_design in design.host_designs.items():
            assert host_design.host == host
            for tenant in host_design.tenants:
                assert design.assignment[tenant] == host

    def test_shares_are_a_valid_allocation(self, design):
        for host_design in design.host_designs.values():
            assert all(s > 0.0 for s in host_design.shares)
            assert sum(host_design.shares) <= 1.0 + 1e-9

    def test_total_cost_is_the_sum_of_host_designs(self, design):
        total = sum(d.total_cost for d in design.host_designs.values())
        assert design.total_cost == pytest.approx(total)

    def test_trajectory_is_monotone_and_anchored(self, design):
        trajectory = design.cost_trajectory
        assert trajectory[0] >= trajectory[-1]
        assert all(b <= a + 1e-9
                   for a, b in zip(trajectory, trajectory[1:]))
        assert trajectory[-1] == pytest.approx(design.total_cost)
        assert len(trajectory) == design.rounds + 1

    def test_converges_on_the_small_fleet(self, design):
        assert design.converged
        assert design.rounds <= 8

    def test_clusters_cover_every_workload(self, design):
        assert sorted(design.clusters) == sorted(design.assignment)
        assert set(design.clusters.values()) <= set(
            range(design.n_clusters))

    def test_summary_matches_the_design(self, design):
        summary = design.summary()
        assert summary["workloads"] == len(design.assignment)
        assert summary["total_cost"] == design.total_cost
        assert summary["trajectory"] == list(design.cost_trajectory)


class TestAgainstRoundRobin:
    def test_round_robin_deals_cyclically(self, small_problem):
        assignment = round_robin_assignment(small_problem)
        hosts = small_problem.host_names()
        for i, name in enumerate(small_problem.workload_names()):
            assert assignment[name] == hosts[i % len(hosts)]

    def test_fleet_design_beats_tuned_round_robin(self, small_problem,
                                                  design):
        baseline, _ = FleetDesigner(small_problem).evaluate_assignment(
            round_robin_assignment(small_problem))
        assert design.total_cost < baseline


class TestDeterminism:
    def test_identical_runs_produce_identical_designs(self, small_problem):
        first = FleetDesigner(small_problem, move_fraction=0.25).design()
        second = FleetDesigner(small_problem, move_fraction=0.25).design()
        assert first.assignment == second.assignment
        assert first.cost_trajectory == second.cost_trajectory
        assert first.host_designs == second.host_designs


class TestCaching:
    def test_repeat_evaluation_recomputes_nothing(self, small_problem):
        fresh = []
        designer = FleetDesigner(small_problem, recorder=fresh.append)
        assignment = round_robin_assignment(small_problem)
        designer.evaluate_assignment(assignment)
        first = len(fresh)
        assert first > 0
        designer.evaluate_assignment(assignment)
        assert len(fresh) == first

    def test_seeded_design_is_a_cache_hit(self, small_problem):
        fresh = []
        donor = FleetDesigner(small_problem)
        assignment = round_robin_assignment(small_problem)
        _, host_designs = donor.evaluate_assignment(assignment)

        seeded = FleetDesigner(small_problem, recorder=fresh.append)
        for host_design in host_designs.values():
            seeded.seed_host_design(host_design)
        total, _ = seeded.evaluate_assignment(assignment)
        assert fresh == []
        assert total == pytest.approx(
            sum(d.total_cost for d in host_designs.values()))


class TestKnobs:
    def test_zero_rounds_returns_the_initial_placement(self, small_problem):
        design = FleetDesigner(small_problem, max_rounds=0).design()
        assert design.rounds == 0
        assert design.moves == 0
        assert design.converged
        assert len(design.cost_trajectory) == 1

    def test_rejects_bad_knobs(self, small_problem):
        with pytest.raises(ValueError):
            FleetDesigner(small_problem, max_rounds=-1)
        with pytest.raises(ValueError):
            FleetDesigner(small_problem, move_fraction=0.0)
        with pytest.raises(ValueError):
            FleetDesigner(small_problem, move_fraction=1.5)
        with pytest.raises(ValueError):
            FleetDesigner(small_problem, candidates_per_move=0)

    def test_explicit_cluster_count_is_respected(self, small_problem):
        design = FleetDesigner(small_problem, clusters=2,
                               max_rounds=1).design()
        assert design.n_clusters == 2


class TestHostDesign:
    def test_dict_roundtrip_is_exact(self, design):
        for host_design in design.host_designs.values():
            clone = HostDesign.from_dict(host_design.as_dict())
            assert clone == host_design

    def test_lookups(self, design):
        host_design = next(iter(design.host_designs.values()))
        tenant = host_design.tenants[0]
        assert host_design.cost_of(tenant) == host_design.costs[0]
        assert host_design.share_of(tenant) == host_design.shares[0]
