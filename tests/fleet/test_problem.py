"""Tests for fleet hosts, problems, scenarios, and identity."""

import pytest

from repro.fleet import CostProfile, FleetHost, FleetProblem, synthetic_fleet
from repro.util.errors import AllocationError
from repro.virt.machine import laboratory_machine


def profiles(*names):
    return [CostProfile(n, (0.1, 0.5, 1.0), (30.0, 12.0, 8.0))
            for n in names]


class TestFleetHost:
    def test_effective_speed_combines_factors(self):
        host = FleetHost("h", speed_factor=2.0, capacity_factor=0.5)
        assert host.effective_speed == pytest.approx(1.0)

    def test_machine_scales_the_laboratory_reference(self):
        host = FleetHost("h", speed_factor=2.0)
        lab = laboratory_machine()
        machine = host.machine()
        assert machine.name == "h"
        assert (machine.cpu_units_per_second
                == pytest.approx(2.0 * lab.cpu_units_per_second))
        assert machine.memory_mib == lab.memory_mib
        assert machine.n_cpus == lab.n_cpus

    def test_rejects_bad_factors(self):
        with pytest.raises(AllocationError):
            FleetHost("h", speed_factor=0.0)
        with pytest.raises(AllocationError):
            FleetHost("h", capacity_factor=0.0)
        with pytest.raises(AllocationError):
            FleetHost("h", capacity_factor=1.5)


class TestFleetProblem:
    def test_lookups(self):
        problem = FleetProblem([FleetHost("h1"), FleetHost("h2")],
                               profiles("a", "b"), grid=4)
        assert problem.host("h2").name == "h2"
        assert problem.profile("a").name == "a"
        assert problem.host_names() == ("h1", "h2")
        assert problem.workload_names() == ("a", "b")
        with pytest.raises(KeyError):
            problem.host("nope")
        with pytest.raises(KeyError):
            problem.profile("nope")

    def test_rejects_degenerate_fleets(self):
        with pytest.raises(AllocationError):
            FleetProblem([], profiles("a"))
        with pytest.raises(AllocationError):
            FleetProblem([FleetHost("h")], [])
        with pytest.raises(AllocationError):
            FleetProblem([FleetHost("h")], profiles("a"), grid=1)
        with pytest.raises(AllocationError):
            FleetProblem([FleetHost("h"), FleetHost("h")], profiles("a"))
        with pytest.raises(AllocationError):
            FleetProblem([FleetHost("h")], profiles("a", "a"))
        with pytest.raises(AllocationError):
            FleetProblem([FleetHost("x")], profiles("x"))


class TestFingerprint:
    def test_stable_for_equal_problems(self):
        a = FleetProblem([FleetHost("h")], profiles("a", "b"), grid=4)
        b = FleetProblem([FleetHost("h")], profiles("a", "b"), grid=4)
        assert a.fingerprint() == b.fingerprint()

    def test_sensitive_to_every_component(self):
        base = FleetProblem([FleetHost("h")], profiles("a"), grid=4)
        other_grid = FleetProblem([FleetHost("h")], profiles("a"), grid=8)
        other_host = FleetProblem([FleetHost("h", speed_factor=2.0)],
                                  profiles("a"), grid=4)
        other_costs = FleetProblem(
            [FleetHost("h")],
            [CostProfile("a", (0.1, 0.5, 1.0), (31.0, 12.0, 8.0))], grid=4)
        prints = {base.fingerprint(), other_grid.fingerprint(),
                  other_host.fingerprint(), other_costs.fingerprint()}
        assert len(prints) == 4


class TestSyntheticFleet:
    def test_same_seed_same_fleet(self):
        a = synthetic_fleet(3, 8, seed=11, grid=6)
        b = synthetic_fleet(3, 8, seed=11, grid=6)
        assert a.fingerprint() == b.fingerprint()

    def test_different_seed_different_fleet(self):
        a = synthetic_fleet(3, 8, seed=11, grid=6)
        b = synthetic_fleet(3, 8, seed=12, grid=6)
        assert a.fingerprint() != b.fingerprint()

    def test_shapes_and_names(self, small_problem):
        assert len(small_problem.hosts) == 4
        assert len(small_problem.profiles) == 12
        assert small_problem.host_names()[0] == "host-0000"
        assert small_problem.workload_names()[0] == "wl-00000"
        for host in small_problem.hosts:
            assert 0.5 <= host.speed_factor <= 2.0
            assert 0.0 < host.capacity_factor <= 1.0
