"""Tests for cost profiles: interpolation, shape features, derivation."""

import pytest

from repro.core.cost_model import CostModel
from repro.core.problem import WorkloadSpec
from repro.fleet import PROFILE_LEVELS, CostProfile
from repro.workloads.workload import Workload

LEVELS = (0.1, 0.2, 0.5, 1.0)
COSTS = (40.0, 22.0, 10.0, 6.0)


def profile(name="w"):
    return CostProfile(name, LEVELS, COSTS)


class TestCostAt:
    def test_exact_at_every_level(self):
        p = profile()
        for level, cost in zip(LEVELS, COSTS):
            assert p.cost_at(level) == pytest.approx(cost)

    def test_linear_between_levels(self):
        p = profile()
        # Midpoint of (0.2, 22.0) and (0.5, 10.0).
        assert p.cost_at(0.35) == pytest.approx(16.0)
        # Quarter point of (0.1, 40.0) and (0.2, 22.0).
        assert p.cost_at(0.125) == pytest.approx(35.5)

    def test_clamps_above_top_level(self):
        p = CostProfile("w", (0.1, 0.5), (40.0, 10.0))
        assert p.cost_at(0.75) == pytest.approx(10.0)
        assert p.cost_at(1.0) == pytest.approx(10.0)

    def test_hyperbolic_below_bottom_level(self):
        p = profile()
        # cost ~ costs[0] * levels[0] / share: halving the share from
        # the bottom level doubles the cost, never clamps.
        assert p.cost_at(0.05) == pytest.approx(80.0)
        assert p.cost_at(0.01) == pytest.approx(400.0)

    def test_monotone_non_increasing_over_shares(self):
        p = profile()
        shares = [0.01 + 0.01 * i for i in range(100)]
        costs = [p.cost_at(s) for s in shares]
        assert all(b <= a + 1e-12 for a, b in zip(costs, costs[1:]))

    def test_rejects_non_positive_share(self):
        with pytest.raises(ValueError):
            profile().cost_at(0.0)
        with pytest.raises(ValueError):
            profile().cost_at(-0.5)


class TestValidation:
    def test_rejects_empty_levels(self):
        with pytest.raises(ValueError):
            CostProfile("w", (), ())

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            CostProfile("w", (0.1, 0.5), (1.0,))

    def test_rejects_non_ascending_levels(self):
        with pytest.raises(ValueError):
            CostProfile("w", (0.5, 0.5), (1.0, 1.0))
        with pytest.raises(ValueError):
            CostProfile("w", (0.5, 0.2), (1.0, 1.0))

    def test_rejects_levels_outside_unit_interval(self):
        with pytest.raises(ValueError):
            CostProfile("w", (0.0, 0.5), (1.0, 1.0))
        with pytest.raises(ValueError):
            CostProfile("w", (0.5, 1.5), (1.0, 1.0))

    def test_rejects_non_positive_costs(self):
        with pytest.raises(ValueError):
            CostProfile("w", (0.1, 0.5), (1.0, 0.0))


class TestShapeAndDemand:
    def test_features_have_unit_mean(self):
        feats = profile().features()
        assert sum(feats) / len(feats) == pytest.approx(1.0)

    def test_features_are_scale_invariant(self):
        small = CostProfile("a", LEVELS, COSTS)
        large = CostProfile("b", LEVELS, tuple(7.0 * c for c in COSTS))
        assert small.features() == pytest.approx(large.features())

    def test_demand_is_mean_cost(self):
        assert profile().demand() == pytest.approx(sum(COSTS) / len(COSTS))

    def test_dict_roundtrip(self):
        p = profile()
        clone = CostProfile.from_dict(p.as_dict())
        assert clone == p


class _InverseShareModel(CostModel):
    """Analytic stand-in: cost falls off as 1/cpu plus a floor."""

    kind = "test-inverse"
    parallel_safe = True

    def _cost(self, spec, allocation):
        return 2.0 + 1.0 / allocation.cpu


class TestFromCostModel:
    def test_samples_the_model_at_every_level(self):
        spec = WorkloadSpec(Workload("wl", ["wl"]), None)
        p = CostProfile.from_cost_model(spec, _InverseShareModel())
        assert p.name == "wl"
        assert p.levels == PROFILE_LEVELS
        for level, cost in zip(p.levels, p.costs):
            assert cost == pytest.approx(2.0 + 1.0 / level)

    def test_profile_agrees_with_model_at_knots(self):
        spec = WorkloadSpec(Workload("wl", ["wl"]), None)
        model = _InverseShareModel()
        p = CostProfile.from_cost_model(spec, model)
        # At sampled shares the interpolated curve reproduces the model.
        assert p.cost_at(0.4) == pytest.approx(2.0 + 1.0 / 0.4)
