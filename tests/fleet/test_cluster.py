"""Tests for deterministic shape clustering."""

import pytest

from repro.fleet import CostProfile, cluster_profiles, default_cluster_count

LEVELS = (0.1, 0.3, 0.6, 1.0)


def cpu_bound(name, scale=1.0):
    """Steep curve: cost keeps falling as share grows."""
    return CostProfile(name, LEVELS,
                       tuple(scale * c for c in (60.0, 20.0, 10.0, 6.0)))


def io_bound(name, scale=1.0):
    """Flat curve: extra CPU barely helps."""
    return CostProfile(name, LEVELS,
                       tuple(scale * c for c in (11.0, 10.5, 10.2, 10.0)))


class TestDefaultClusterCount:
    def test_sqrt_heuristic(self):
        assert default_cluster_count(2) == 1
        assert default_cluster_count(50) == 5
        assert default_cluster_count(200) == 10

    def test_clamped_to_bounds(self):
        assert default_cluster_count(1) == 1
        assert default_cluster_count(100_000) == 16


class TestClusterProfiles:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            cluster_profiles([], 2)
        with pytest.raises(ValueError):
            cluster_profiles([cpu_bound("a")], 0)

    def test_single_cluster_holds_everyone(self):
        profiles = [cpu_bound("a"), io_bound("b"), cpu_bound("c")]
        clustering = cluster_profiles(profiles, 1)
        assert clustering.k == 1
        assert clustering.members(0) == ["a", "b", "c"]

    def test_k_clamps_to_population(self):
        profiles = [cpu_bound("a"), io_bound("b", scale=2.0)]
        clustering = cluster_profiles(profiles, 5)
        assert clustering.k == 2
        assert sorted(clustering.assignments) == ["a", "b"]

    def test_separates_archetypes(self):
        profiles = ([cpu_bound(f"cpu-{i}", scale=1.0 + 0.1 * i)
                     for i in range(4)]
                    + [io_bound(f"io-{i}", scale=1.0 + 0.1 * i)
                       for i in range(4)])
        clustering = cluster_profiles(profiles, 2)
        groups = {frozenset(clustering.members(c)) for c in range(2)}
        assert groups == {
            frozenset(f"cpu-{i}" for i in range(4)),
            frozenset(f"io-{i}" for i in range(4)),
        }

    def test_deterministic_across_runs(self):
        profiles = [cpu_bound(f"cpu-{i}") for i in range(3)] + [
            io_bound(f"io-{i}") for i in range(3)]
        first = cluster_profiles(profiles, 3)
        second = cluster_profiles(profiles, 3)
        assert first.assignments == second.assignments
        assert first.centroids == second.centroids
        assert first.inertia == second.inertia

    def test_input_order_is_irrelevant(self):
        profiles = [cpu_bound(f"cpu-{i}") for i in range(3)] + [
            io_bound(f"io-{i}") for i in range(3)]
        forward = cluster_profiles(profiles, 2)
        backward = cluster_profiles(list(reversed(profiles)), 2)
        assert forward.assignments == backward.assignments

    def test_every_cluster_index_in_range(self, small_problem):
        clustering = cluster_profiles(small_problem.profiles, 3)
        assert set(clustering.assignments.values()) <= set(range(3))
        assert clustering.inertia >= 0.0
        assert clustering.iterations >= 1
