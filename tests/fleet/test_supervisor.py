"""Crash-recovery equivalence for journaled fleet runs.

Mirrors ``tests/recovery/test_resume_equivalence.py``: kill a fleet
placement after every freshly journaled host design, resume, and
require the complete journal — every host design and the final result
record — to match an uninterrupted baseline bit for bit.
"""

import pytest

from repro.fleet import FleetSupervisor, synthetic_fleet
from repro.recovery import RunJournal
from repro.util.errors import RecoveryError

pytestmark = pytest.mark.recovery

SEED = 3
GRID = 8


@pytest.fixture(scope="module")
def fleet_problem():
    return synthetic_fleet(4, 12, seed=SEED, grid=GRID)


def make_supervisor(problem, path, **kwargs):
    kwargs.setdefault("scenario", {"n_hosts": 4, "n_workloads": 12,
                                   "seed": SEED, "grid": GRID})
    kwargs.setdefault("move_fraction", 0.25)
    return FleetSupervisor(problem, path, **kwargs)


def journal_fingerprint(journal):
    return {
        "host_designs": [r.data for r in journal.records_of("host-design")],
        "results": [r.data for r in journal.records_of("result")],
    }


@pytest.fixture(scope="module")
def baseline(fleet_problem, tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet-baseline") / "run.journal"
    run = make_supervisor(fleet_problem, path).run()
    assert run.completed
    return {
        "run": run,
        "fingerprint": journal_fingerprint(RunJournal.open(path)),
        "total_units": run.new_units,
    }


class TestKillResumeEquivalence:
    def test_kill_at_every_unit_boundary_then_resume(
            self, baseline, fleet_problem, tmp_path):
        total = baseline["total_units"]
        assert total >= 2
        for k in range(1, total):
            path = tmp_path / f"kill-at-{k}.journal"
            killed = make_supervisor(fleet_problem, path,
                                     max_units=k).run()
            assert not killed.completed, f"kill at k={k} did not stop"
            assert killed.new_units == k

            resumed = make_supervisor(fleet_problem, path).run(resume=True)
            assert resumed.completed, f"resume after k={k} did not finish"
            assert resumed.replayed_units == k
            assert resumed.new_units == total - k

            fingerprint = journal_fingerprint(RunJournal.open(path))
            assert fingerprint == baseline["fingerprint"], (
                f"resumed fleet journal diverged after a kill at "
                f"unit {k}")

    def test_resumed_design_matches_baseline(self, baseline, fleet_problem,
                                             tmp_path):
        path = tmp_path / "run.journal"
        make_supervisor(fleet_problem, path, max_units=4).run()
        resumed = make_supervisor(fleet_problem, path).run(resume=True)
        base = baseline["run"].design
        assert resumed.design.assignment == base.assignment
        assert resumed.design.cost_trajectory == base.cost_trajectory
        assert resumed.design.host_designs == base.host_designs
        assert resumed.design.total_cost == base.total_cost

    def test_torn_tail_resume_is_equivalent(self, baseline, fleet_problem,
                                            tmp_path):
        path = tmp_path / "run.journal"
        make_supervisor(fleet_problem, path, max_units=3).run()
        with open(path, "a") as handle:
            handle.write('{"seq": 99, "kind": "host-design", "da')
        resumed = make_supervisor(fleet_problem, path).run(resume=True)
        assert resumed.completed
        assert resumed.replayed_units == 3
        fingerprint = journal_fingerprint(RunJournal.open(path))
        assert fingerprint == baseline["fingerprint"]

    def test_resume_of_a_completed_run_is_a_no_op(self, baseline,
                                                  fleet_problem,
                                                  tmp_path):
        path = tmp_path / "run.journal"
        make_supervisor(fleet_problem, path).run()
        resumed = make_supervisor(fleet_problem, path).run(resume=True)
        assert resumed.completed
        assert resumed.new_units == 0
        fingerprint = journal_fingerprint(RunJournal.open(path))
        # Replaying everything must not append a second result record.
        assert fingerprint == baseline["fingerprint"]


class TestIdentity:
    def test_resume_under_different_knobs_is_refused(self, fleet_problem,
                                                     tmp_path):
        path = tmp_path / "run.journal"
        make_supervisor(fleet_problem, path, max_units=2).run()
        with pytest.raises(RecoveryError, match="different fleet run"):
            make_supervisor(fleet_problem, path,
                            clusters=2).run(resume=True)

    def test_resume_against_a_different_fleet_is_refused(self, tmp_path):
        original = synthetic_fleet(4, 12, seed=SEED, grid=GRID)
        path = tmp_path / "run.journal"
        make_supervisor(original, path, max_units=2).run()
        other = synthetic_fleet(4, 12, seed=SEED + 1, grid=GRID)
        with pytest.raises(RecoveryError, match="fingerprint"):
            make_supervisor(other, path).run(resume=True)

    def test_workers_and_pool_are_not_identity(self, fleet_problem,
                                               tmp_path):
        path = tmp_path / "run.journal"
        make_supervisor(fleet_problem, path, max_units=2,
                        extra_meta={"workers": 8,
                                    "pool": "process"}).run()
        resumed = make_supervisor(
            fleet_problem, path,
            extra_meta={"workers": None, "pool": "thread"}).run(resume=True)
        assert resumed.completed

    def test_journal_naming_unknown_host_is_refused(self, fleet_problem,
                                                    tmp_path):
        path = tmp_path / "run.journal"
        journal = RunJournal.create(
            path, make_supervisor(fleet_problem, path)._meta())
        journal.append("host-design", {
            "host": "not-a-host", "tenants": ["wl-00000"],
            "shares": [1.0], "costs": [1.0]})
        with pytest.raises(RecoveryError, match="unknown host"):
            make_supervisor(fleet_problem, path).run(resume=True)
