"""CLI tests for ``repro fleet`` / ``repro resume`` and the doc epilogs."""

import argparse
import pathlib
import re

import pytest

from repro.cli import build_parser, main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

FLEET_ARGS = ["fleet", "--hosts", "4", "--workloads", "12",
              "--seed", "3", "--grid", "8"]


class TestFleetCommand:
    def test_fleet_prints_placement_summary(self, capsys):
        assert main(FLEET_ARGS) == 0
        out = capsys.readouterr().out
        assert "Fleet placement" in out
        assert "workloads placed" in out
        assert "final cost" in out

    def test_baseline_row_appears_on_request(self, capsys):
        assert main(FLEET_ARGS + ["--baseline"]) == 0
        out = capsys.readouterr().out
        assert "round-robin baseline" in out

    def test_rejects_degenerate_scenarios(self):
        assert main(["fleet", "--hosts", "0", "--workloads", "5"]) == 2


class TestFleetJournalResume:
    def test_kill_then_resume_completes(self, capsys, tmp_path):
        journal = tmp_path / "fleet.journal"
        killed = main(FLEET_ARGS + ["--journal", str(journal),
                                    "--max-units", "3"])
        out = capsys.readouterr().out
        assert killed == 4
        assert "resumable with: repro resume" in out

        resumed = main(["resume", str(journal)])
        out = capsys.readouterr().out
        assert resumed == 0
        assert "Fleet placement" in out
        assert "3 unit(s) replayed" in out

    def test_resume_matches_uninterrupted_run(self, capsys, tmp_path):
        straight = tmp_path / "straight.journal"
        assert main(FLEET_ARGS + ["--journal", str(straight)]) == 0
        straight_out = capsys.readouterr().out

        killed = tmp_path / "killed.journal"
        assert main(FLEET_ARGS + ["--journal", str(killed),
                                  "--max-units", "2"]) == 4
        capsys.readouterr()
        assert main(["resume", str(killed)]) == 0
        resumed_out = capsys.readouterr().out

        def costs(text):
            return re.findall(r"(?:initial|final) cost\s+\S+", text)

        assert costs(resumed_out) == costs(straight_out)

    def test_resume_of_missing_journal_is_permanent_failure(self, tmp_path):
        assert main(["resume", str(tmp_path / "absent.journal")]) == 3


def _subcommands():
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices
    raise AssertionError("CLI parser has no subcommands")


class TestDocEpilogs:
    def test_every_subcommand_names_its_documentation(self):
        for name, sub in _subcommands().items():
            assert sub.epilog, f"subcommand {name!r} has no docs epilog"
            assert "Documentation:" in sub.epilog

    def test_every_cited_doc_page_exists(self):
        cited = set()
        for sub in _subcommands().values():
            cited.update(re.findall(r"[\w/-]+\.md", sub.epilog or ""))
        assert cited, "no documentation pages cited by any epilog"
        for page in sorted(cited):
            assert (REPO_ROOT / page).exists(), (
                f"CLI epilog cites {page}, which does not exist")

    def test_fleet_epilog_names_the_fleet_guide(self):
        assert "docs/fleet.md" in _subcommands()["fleet"].epilog
        assert "docs/fleet.md" in _subcommands()["resume"].epilog
