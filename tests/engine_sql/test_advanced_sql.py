"""Tests for the advanced SQL features: scalar subqueries, DISTINCT
aggregates, and OR-branch factoring."""

import pytest

from repro.engine.database import Database
from repro.engine.expr import BinaryOp, ColumnRef, Literal
from repro.engine.plans import HashJoin, NestedLoopJoin, walk
from repro.engine.schema import Column, ColumnType, TableSchema
from repro.engine.sql.binder import _factor_or
from repro.util.errors import SqlError


@pytest.fixture
def db():
    db = Database("adv", memory_pages=2048)
    db.create_table(TableSchema("t", [
        Column("a", ColumnType.INT),
        Column("b", ColumnType.INT),
    ]))
    db.create_table(TableSchema("u", [
        Column("x", ColumnType.INT),
        Column("y", ColumnType.INT),
    ]))
    db.load_rows("t", [(i, i % 5) for i in range(100)])
    db.load_rows("u", [(i, i * 10) for i in range(20)])
    db.analyze()
    return db


class TestScalarSubqueries:
    def test_in_where(self, db):
        result = db.run_sql(
            "select count(*) as n from t where a > (select avg(x) from u)"
        )
        # avg(u.x) = 9.5; t.a in 10..99 qualify.
        assert result.rows[0][0] == 90

    def test_in_having(self, db):
        result = db.run_sql(
            "select b, sum(a) as s from t group by b "
            "having sum(a) > (select sum(x) from u) order by b"
        )
        # sum(u.x) = 190; per-group sums are 950..1030.
        assert len(result.rows) == 5

    def test_in_select_list(self, db):
        result = db.run_sql(
            "select max(a) - (select max(x) from u) as diff from t"
        )
        assert result.rows[0][0] == 99 - 19

    def test_empty_subquery_yields_null(self, db):
        result = db.run_sql(
            "select count(*) as n from t "
            "where a > (select max(x) from u where x > 1000)"
        )
        assert result.rows[0][0] == 0  # NULL comparison keeps nothing

    def test_multi_column_subquery_rejected(self, db):
        with pytest.raises(SqlError):
            db.run_sql("select a from t where a > (select x, y from u)")

    def test_subquery_executes_once(self, db):
        result = db.run_sql(
            "select count(*) as n from t where a >= (select min(x) from u)"
        )
        # One u-scan charged, not one per t-row: u has 1 page, so the
        # trace's page requests for u stay tiny.
        assert result.rows[0][0] == 100
        assert result.trace.seq_page_requests <= 5

    def test_subquery_cost_included_in_estimate(self, db):
        from repro.optimizer.params import OptimizerParameters
        from repro.optimizer.planner import Planner

        planner = Planner(db.catalog, OptimizerParameters.defaults())
        with_sub = planner.plan_sql(
            "select count(*) as n from t where a > (select avg(x) from u)"
        )
        without = planner.plan_sql("select count(*) as n from t where a > 5")
        assert with_sub.est_total_cost > without.est_total_cost


class TestDistinctAggregates:
    def test_count_distinct(self, db):
        result = db.run_sql("select count(distinct b) as n from t")
        assert result.rows[0][0] == 5

    def test_count_distinct_per_group(self, db):
        result = db.run_sql(
            "select b, count(distinct a) as n from t group by b order by b"
        )
        assert all(n == 20 for _b, n in result.rows)

    def test_sum_distinct(self, db):
        db.load_rows("u", [(0, 0), (0, 0)])  # duplicate x=0 rows
        result = db.run_sql("select sum(distinct x) as s from u")
        assert result.rows[0][0] == sum(range(20))

    def test_distinct_and_plain_coexist(self, db):
        result = db.run_sql(
            "select count(distinct b) as d, count(b) as all_rows from t"
        )
        assert result.rows[0] == (5, 100)

    def test_distinct_min_rejected(self, db):
        with pytest.raises(SqlError):
            db.run_sql("select min(distinct a) from t")


class TestOrFactoring:
    def c(self, name):
        return ColumnRef("t", name)

    def test_common_conjunct_extracted(self):
        a = BinaryOp("=", self.c("a"), Literal(1))
        x = BinaryOp("<", self.c("b"), Literal(5))
        y = BinaryOp(">", self.c("b"), Literal(9))
        expr = BinaryOp("or", BinaryOp("and", a, x), BinaryOp("and", a, y))
        factored = _factor_or(expr)
        assert a in factored
        assert len(factored) == 2

    def test_no_common_part_unchanged(self):
        x = BinaryOp("<", self.c("b"), Literal(5))
        y = BinaryOp(">", self.c("b"), Literal(9))
        expr = BinaryOp("or", x, y)
        assert _factor_or(expr) == [expr]

    def test_branch_equal_to_common_collapses(self):
        a = BinaryOp("=", self.c("a"), Literal(1))
        x = BinaryOp("<", self.c("b"), Literal(5))
        expr = BinaryOp("or", BinaryOp("and", a, x), a)
        assert _factor_or(expr) == [a]

    def test_factored_query_matches_naive(self, db):
        sql_or = (
            "select count(*) as n from t, u where "
            "(a = x and b = 0) or (a = x and b = 1)"
        )
        result = db.run_sql(sql_or)
        expected = db.run_sql(
            "select count(*) as n from t, u where a = x and (b = 0 or b = 1)"
        )
        assert result.rows == expected.rows

    def test_factoring_enables_hash_join(self, db):
        result = db.run_sql(
            "select count(*) as n from t, u where "
            "(a = x and b = 0) or (a = x and b = 1)"
        )
        kinds = [type(node) for node in walk(result.plan)]
        assert HashJoin in kinds
        assert NestedLoopJoin not in kinds
