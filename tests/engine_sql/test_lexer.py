"""Tests for the SQL lexer."""

import pytest

from repro.engine.sql.lexer import Lexer, TokenType
from repro.util.errors import SqlError


def tokens(sql):
    return Lexer(sql).tokenize()


def values(sql):
    return [t.value for t in tokens(sql)[:-1]]  # drop EOF


class TestBasics:
    def test_keywords_lowercased(self):
        toks = tokens("SELECT a FROM t")
        assert toks[0].type is TokenType.KEYWORD
        assert toks[0].value == "select"
        assert toks[2].value == "from"

    def test_identifiers_lowercased(self):
        assert values("Lineitem L_OrderKey") == ["lineitem", "l_orderkey"]

    def test_numbers(self):
        toks = tokens("42 3.14 .5")
        assert [t.type for t in toks[:-1]] == [TokenType.NUMBER] * 3
        assert values("42 3.14 .5") == ["42", "3.14", ".5"]

    def test_strings(self):
        toks = tokens("'BUILDING'")
        assert toks[0].type is TokenType.STRING
        assert toks[0].value == "BUILDING"

    def test_string_preserves_case(self):
        assert tokens("'MixedCase'")[0].value == "MixedCase"

    def test_escaped_quote(self):
        assert tokens("'it''s'")[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            tokens("'oops")

    def test_eof_token(self):
        assert tokens("")[-1].type is TokenType.EOF


class TestOperators:
    def test_multichar_operators(self):
        assert values("a <> b <= c >= d") == ["a", "<>", "b", "<=", "c", ">=", "d"]

    def test_bang_equals_normalized(self):
        assert "<>" in values("a != b")

    def test_arithmetic(self):
        assert values("1+2*3/4-5") == ["1", "+", "2", "*", "3", "/", "4", "-", "5"]

    def test_punctuation(self):
        assert values("f(a, b.c)") == ["f", "(", "a", ",", "b", ".", "c", ")"]

    def test_unknown_character(self):
        with pytest.raises(SqlError):
            tokens("a @ b")


class TestCommentsAndWhitespace:
    def test_line_comments_skipped(self):
        assert values("select -- comment here\n a") == ["select", "a"]

    def test_trailing_comment(self):
        assert values("a -- end") == ["a"]

    def test_newlines_and_tabs(self):
        assert values("select\n\ta\nfrom\tt") == ["select", "a", "from", "t"]

    def test_positions_recorded(self):
        toks = tokens("ab cd")
        assert toks[0].position == 0
        assert toks[1].position == 3
