"""Tests for the binder: name resolution, decorrelation, aggregation."""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.expr import ColumnRef, Literal
from repro.engine.plans import AggFunc, JoinType
from repro.engine.schema import Column, ColumnType, TableSchema
from repro.engine.sql.binder import (
    Binder,
    LogicalDerived,
    LogicalJoin,
    LogicalRelation,
)
from repro.engine.types import Date
from repro.util.errors import SqlError


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.create_table(TableSchema("orders", [
        Column("o_orderkey", ColumnType.INT),
        Column("o_custkey", ColumnType.INT),
        Column("o_orderdate", ColumnType.DATE),
        Column("o_comment", ColumnType.TEXT),
    ]))
    cat.create_table(TableSchema("lineitem", [
        Column("l_orderkey", ColumnType.INT),
        Column("l_quantity", ColumnType.FLOAT),
        Column("l_commitdate", ColumnType.DATE),
        Column("l_receiptdate", ColumnType.DATE),
    ]))
    cat.create_table(TableSchema("customer", [
        Column("c_custkey", ColumnType.INT),
        Column("c_name", ColumnType.TEXT),
    ]))
    return cat


@pytest.fixture
def binder(catalog):
    return Binder(catalog)


class TestNameResolution:
    def test_unqualified_resolves(self, binder):
        query = binder.bind_sql("select o_orderkey from orders")
        assert query.select_exprs == [ColumnRef("orders", "o_orderkey")]
        assert query.select_names == ["o_orderkey"]

    def test_qualified_with_alias(self, binder):
        query = binder.bind_sql("select o.o_orderkey from orders o")
        assert query.select_exprs[0].alias == "o"

    def test_unknown_column(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql("select nothing from orders")

    def test_unknown_table(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql("select a from ghost")

    def test_ambiguous_column(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql(
                "select o_orderkey from orders o1, orders o2"
            )

    def test_duplicate_alias(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql("select 1 from orders o, lineitem o")

    def test_missing_from_rejected(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql("select 1")


class TestDateFolding:
    def test_date_plus_interval_folds(self, binder):
        query = binder.bind_sql(
            "select o_orderkey from orders "
            "where o_orderdate < date '1993-07-01' + interval '3' month"
        )
        predicate = query.where[0]
        assert isinstance(predicate.right, Literal)
        assert predicate.right.value == Date.parse("1993-10-01")

    def test_date_minus_interval_days(self, binder):
        query = binder.bind_sql(
            "select o_orderkey from orders "
            "where o_orderdate <= date '1998-12-01' - interval '90' day"
        )
        assert query.where[0].right.value == Date.parse("1998-09-02")

    def test_interval_on_column_rejected(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql(
                "select o_orderkey from orders "
                "where o_orderdate + interval '1' day > o_orderdate"
            )


class TestDecorrelation:
    def test_exists_becomes_semi_join(self, binder):
        query = binder.bind_sql(
            "select o_orderkey from orders where exists ("
            "  select l_orderkey from lineitem "
            "  where l_orderkey = o_orderkey and l_commitdate < l_receiptdate)"
        )
        join = query.from_tree
        assert isinstance(join, LogicalJoin)
        assert join.join_type is JoinType.SEMI
        assert isinstance(join.right, LogicalRelation)
        assert join.right.table == "lineitem"
        # Both the correlation and the inner predicate ride the condition.
        condition_text = str(join.condition)
        assert "l_orderkey" in condition_text and "o_orderkey" in condition_text
        assert "l_commitdate" in condition_text

    def test_not_exists_becomes_anti_join(self, binder):
        query = binder.bind_sql(
            "select o_orderkey from orders where not exists ("
            "  select 1 from lineitem where l_orderkey = o_orderkey)"
        )
        assert query.from_tree.join_type is JoinType.ANTI

    def test_in_subquery_becomes_semi_join_on_derived(self, binder):
        query = binder.bind_sql(
            "select o_orderkey from orders where o_orderkey in ("
            "  select l_orderkey from lineitem group by l_orderkey "
            "  having sum(l_quantity) > 100)"
        )
        join = query.from_tree
        assert join.join_type is JoinType.SEMI
        assert isinstance(join.right, LogicalDerived)
        assert join.right.query.having is not None

    def test_in_subquery_must_be_single_column(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql(
                "select o_orderkey from orders where o_orderkey in ("
                "  select l_orderkey, l_quantity from lineitem)"
            )

    def test_exists_in_or_rejected(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql(
                "select o_orderkey from orders "
                "where o_orderkey = 1 or exists (select 1 from lineitem)"
            )


class TestCorrelatedScalarDecorrelation:
    def test_correlated_avg_becomes_grouped_left_join(self, binder):
        query = binder.bind_sql(
            "select o_orderkey from orders where o_custkey < ("
            "  select avg(l_quantity) from lineitem "
            "  where l_orderkey = o_orderkey)"
        )
        join = query.from_tree
        assert isinstance(join, LogicalJoin)
        assert join.join_type is JoinType.LEFT
        derived = join.right
        assert isinstance(derived, LogicalDerived)
        assert derived.column_names[-1] == "scalar_value"
        # The derived query is grouped by the correlation column.
        assert derived.query.group_keys == [ColumnRef("lineitem", "l_orderkey")]
        # The WHERE predicate now compares against the derived column.
        predicate = query.where[0]
        assert ColumnRef(derived.alias, "scalar_value") in (
            predicate.left, predicate.right
        )

    def test_scaled_scalar_also_rewritten(self, binder):
        query = binder.bind_sql(
            "select o_orderkey from orders where o_custkey < ("
            "  select 0.2 * avg(l_quantity) from lineitem "
            "  where l_orderkey = o_orderkey)"
        )
        assert query.from_tree.join_type is JoinType.LEFT

    def test_inner_only_predicates_stay_inside(self, binder):
        query = binder.bind_sql(
            "select o_orderkey from orders where o_custkey < ("
            "  select avg(l_quantity) from lineitem "
            "  where l_orderkey = o_orderkey and l_quantity > 5)"
        )
        derived = query.from_tree.right
        assert len(derived.query.where) == 1  # l_quantity > 5 kept inside

    def test_uncorrelated_scalar_untouched(self, binder):
        from repro.engine.expr import SubplanExpr

        query = binder.bind_sql(
            "select o_orderkey from orders where o_custkey < ("
            "  select avg(l_quantity) from lineitem)"
        )
        assert isinstance(query.from_tree, LogicalRelation)
        predicate = query.where[0]
        assert isinstance(predicate.right, SubplanExpr)

    def test_non_equality_correlation_rejected(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql(
                "select o_orderkey from orders where o_custkey < ("
                "  select avg(l_quantity) from lineitem "
                "  where l_orderkey < o_orderkey)"
            )

    def test_correlated_non_aggregate_rejected(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql(
                "select o_orderkey from orders where o_custkey < ("
                "  select l_quantity from lineitem "
                "  where l_orderkey = o_orderkey)"
            )

    def test_correlated_scalar_in_select_rejected(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql(
                "select (select avg(l_quantity) from lineitem "
                "        where l_orderkey = o_orderkey) from orders"
            )


class TestAggregation:
    def test_aggregates_extracted(self, binder):
        query = binder.bind_sql(
            "select o_custkey, count(*) as n, sum(o_orderkey) as s "
            "from orders group by o_custkey"
        )
        assert [spec.func for spec in query.aggregates] == \
            [AggFunc.COUNT_STAR, AggFunc.SUM]
        assert query.group_names == ["o_custkey"]
        # Select expressions reference the aggregate outputs.
        assert query.select_exprs[0] == ColumnRef("_agg", "o_custkey")
        assert query.select_exprs[1] == ColumnRef("_agg", "agg_0")

    def test_expression_over_aggregates(self, binder):
        query = binder.bind_sql(
            "select 100 * sum(o_orderkey) / count(*) from orders"
        )
        expr = query.select_exprs[0]
        refs = {column for _alias, column in expr.columns()}
        assert refs == {"agg_0", "agg_1"}
        assert len(query.aggregates) == 2

    def test_duplicate_aggregates_share_spec(self, binder):
        query = binder.bind_sql(
            "select sum(o_orderkey), sum(o_orderkey) from orders"
        )
        assert len(query.aggregates) == 1

    def test_ungrouped_column_rejected(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql(
                "select o_custkey, count(*) from orders"
            )

    def test_having_rewritten(self, binder):
        query = binder.bind_sql(
            "select o_custkey from orders group by o_custkey "
            "having count(*) > 5"
        )
        refs = {column for _alias, column in query.having.columns()}
        assert refs == {"agg_0"}

    def test_having_without_group_rejected(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql("select o_custkey from orders having o_custkey > 5")

    def test_nested_aggregate_rejected(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql("select sum(count(*)) from orders")

    def test_aggregate_in_where_rejected(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql("select 1 from orders where count(*) > 1")


class TestOrderBy:
    def test_by_output_name(self, binder):
        query = binder.bind_sql(
            "select o_custkey, count(*) as n from orders "
            "group by o_custkey order by n desc"
        )
        key = query.order_by[0]
        assert key.expr == ColumnRef("_out", "n")
        assert not key.ascending

    def test_by_matching_expression(self, binder):
        query = binder.bind_sql(
            "select count(*) from orders group by o_custkey order by count(*)"
        )
        assert query.order_by[0].expr.alias == "_out"

    def test_unmatched_expression_rejected(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql(
                "select o_orderkey from orders order by o_custkey + 1"
            )


class TestDerivedTables:
    def test_column_renaming(self, binder):
        query = binder.bind_sql(
            "select c_count, count(*) from ("
            "  select o_custkey, count(*) from orders group by o_custkey"
            ") as co (k, c_count) group by c_count"
        )
        derived = query.from_tree
        assert isinstance(derived, LogicalDerived)
        assert derived.column_names == ["k", "c_count"]

    def test_wrong_column_count_rejected(self, binder):
        with pytest.raises(SqlError):
            binder.bind_sql(
                "select k from (select o_custkey from orders) as d (a, b)"
            )

    def test_left_join_in_from(self, binder):
        query = binder.bind_sql(
            "select c_custkey, count(o_orderkey) from customer "
            "left outer join orders on c_custkey = o_custkey "
            "group by c_custkey"
        )
        join = query.from_tree
        assert join.join_type is JoinType.LEFT
        assert query.aggregates[0].func is AggFunc.COUNT
