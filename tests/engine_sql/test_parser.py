"""Tests for the SQL parser."""

import pytest

from repro.engine.sql import ast
from repro.engine.sql.parser import parse_select
from repro.util.errors import SqlError
from repro.workloads.tpch_queries import QUERIES


class TestSelectList:
    def test_simple(self):
        stmt = parse_select("select a, b from t")
        assert len(stmt.items) == 2
        assert isinstance(stmt.items[0].expr, ast.Identifier)

    def test_aliases(self):
        stmt = parse_select("select a as x, b y from t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_qualified_columns(self):
        stmt = parse_select("select t.a from t")
        ident = stmt.items[0].expr
        assert ident.qualifier == "t"
        assert ident.name == "a"

    def test_count_star(self):
        stmt = parse_select("select count(*) from t")
        call = stmt.items[0].expr
        assert isinstance(call, ast.FuncCall)
        assert call.star

    def test_aggregate_with_expression(self):
        stmt = parse_select("select sum(a * (1 - b)) from t")
        call = stmt.items[0].expr
        assert call.name == "sum"
        assert isinstance(call.args[0], ast.Binary)

    def test_distinct(self):
        assert parse_select("select distinct a from t").distinct


class TestFromClause:
    def test_comma_list(self):
        stmt = parse_select("select a from t, u, v")
        assert len(stmt.from_items) == 3

    def test_table_alias(self):
        stmt = parse_select("select a from customer as c")
        assert stmt.from_items[0].alias == "c"

    def test_implicit_alias(self):
        stmt = parse_select("select a from customer c")
        assert stmt.from_items[0].alias == "c"

    def test_inner_join(self):
        stmt = parse_select("select a from t join u on t.x = u.y")
        join = stmt.from_items[0]
        assert isinstance(join, ast.JoinClause)
        assert join.join_type == "inner"
        assert join.condition is not None

    def test_left_outer_join(self):
        stmt = parse_select(
            "select a from t left outer join u on t.x = u.y"
        )
        assert stmt.from_items[0].join_type == "left"

    def test_left_join_without_outer(self):
        stmt = parse_select("select a from t left join u on t.x = u.y")
        assert stmt.from_items[0].join_type == "left"

    def test_right_join_rejected(self):
        with pytest.raises(SqlError):
            parse_select("select a from t right join u on t.x = u.y")

    def test_derived_table_with_columns(self):
        stmt = parse_select(
            "select c from (select a, count(*) from t group by a) "
            "as d (k, c)"
        )
        derived = stmt.from_items[0]
        assert isinstance(derived, ast.SubqueryRef)
        assert derived.alias == "d"
        assert derived.column_names == ("k", "c")

    def test_chained_joins(self):
        stmt = parse_select(
            "select a from t join u on t.x = u.y join v on u.y = v.z"
        )
        outer = stmt.from_items[0]
        assert isinstance(outer.left, ast.JoinClause)


class TestPredicates:
    def where(self, clause):
        return parse_select(f"select a from t where {clause}").where

    def test_comparison_chain(self):
        where = self.where("a >= 1 and b < 2 or c = 3")
        assert isinstance(where, ast.Binary)
        assert where.op == "or"

    def test_precedence_and_over_or(self):
        where = self.where("a = 1 or b = 2 and c = 3")
        assert where.op == "or"
        assert where.right.op == "and"

    def test_parenthesized(self):
        where = self.where("(a = 1 or b = 2) and c = 3")
        assert where.op == "and"
        assert where.left.op == "or"

    def test_between(self):
        where = self.where("a between 1 and 5")
        assert isinstance(where, ast.Between)

    def test_not_between(self):
        where = self.where("a not between 1 and 5")
        assert where.negated

    def test_like(self):
        where = self.where("c like '%x%'")
        assert isinstance(where, ast.Like)
        assert where.pattern == "%x%"

    def test_not_like(self):
        assert self.where("c not like '%x%'").negated

    def test_in_list(self):
        where = self.where("a in (1, 2, 3)")
        assert isinstance(where, ast.InList)
        assert len(where.items) == 3

    def test_in_subquery(self):
        where = self.where("a in (select b from u)")
        assert isinstance(where, ast.InSubquery)

    def test_exists(self):
        where = self.where("exists (select 1 from u where u.x = t.a)")
        assert isinstance(where, ast.Exists)
        assert not where.negated

    def test_not_exists(self):
        where = self.where("not exists (select 1 from u)")
        assert isinstance(where, ast.Exists)
        assert where.negated

    def test_is_null(self):
        where = self.where("a is null")
        assert isinstance(where, ast.IsNull)
        assert self.where("a is not null").negated

    def test_dangling_not_rejected(self):
        with pytest.raises(SqlError):
            self.where("a not 5")


class TestLiterals:
    def expr(self, text):
        return parse_select(f"select {text} from t").items[0].expr

    def test_date_literal(self):
        lit = self.expr("date '1994-01-01'")
        assert isinstance(lit, ast.DateLit)
        assert lit.text == "1994-01-01"

    def test_interval_literal(self):
        expr = self.expr("date '1994-01-01' + interval '3' month")
        assert isinstance(expr, ast.Binary)
        assert isinstance(expr.right, ast.IntervalLit)
        assert expr.right.amount == 3
        assert expr.right.unit == "month"

    def test_interval_units(self):
        for unit in ("day", "month", "year"):
            expr = self.expr(f"date '1994-01-01' - interval '1' {unit}")
            assert expr.right.unit == unit

    def test_unsupported_interval_unit(self):
        with pytest.raises(SqlError):
            self.expr("date '1994-01-01' + interval '1' hour")

    def test_negative_number(self):
        expr = self.expr("-5")
        assert isinstance(expr, ast.Binary)
        assert expr.op == "-"

    def test_case_expression(self):
        expr = self.expr("case when a = 1 then 'one' else 'other' end")
        assert isinstance(expr, ast.Case)
        assert len(expr.branches) == 1
        assert expr.default is not None

    def test_case_requires_when(self):
        with pytest.raises(SqlError):
            self.expr("case else 1 end")

    def test_null_literal(self):
        assert isinstance(self.expr("null"), ast.NullLit)


class TestClauses:
    def test_group_by_multiple(self):
        stmt = parse_select("select a, b from t group by a, b")
        assert len(stmt.group_by) == 2

    def test_having(self):
        stmt = parse_select(
            "select a from t group by a having count(*) > 5"
        )
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse_select("select a, b from t order by a desc, b asc, a")
        assert [o.ascending for o in stmt.order_by] == [False, True, True]

    def test_limit(self):
        assert parse_select("select a from t limit 10").limit == 10

    def test_limit_requires_integer(self):
        with pytest.raises(SqlError):
            parse_select("select a from t limit 1.5")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlError):
            parse_select("select a from t garbage here")

    def test_missing_from_ok_at_parse_level(self):
        stmt = parse_select("select 1")
        assert stmt.from_items == []


class TestSubqueriesAndDistinct:
    def test_scalar_subquery_in_comparison(self):
        stmt = parse_select(
            "select a from t where a > (select max(b) from u)"
        )
        assert isinstance(stmt.where.right, ast.ScalarSubquery)

    def test_scalar_subquery_in_arithmetic(self):
        stmt = parse_select(
            "select a from t where a > 0.2 * (select avg(b) from u)"
        )
        product = stmt.where.right
        assert isinstance(product, ast.Binary)
        assert isinstance(product.right, ast.ScalarSubquery)

    def test_parenthesized_expression_is_not_subquery(self):
        stmt = parse_select("select (1 + 2) from t")
        assert isinstance(stmt.items[0].expr, ast.Binary)

    def test_count_distinct(self):
        stmt = parse_select("select count(distinct a) from t")
        call = stmt.items[0].expr
        assert call.distinct
        assert call.name == "count"

    def test_plain_count_not_distinct(self):
        stmt = parse_select("select count(a) from t")
        assert not stmt.items[0].expr.distinct

    def test_extract_year(self):
        stmt = parse_select("select extract(year from d) from t")
        node = stmt.items[0].expr
        assert isinstance(node, ast.Extract)
        assert node.unit == "year"

    def test_extract_units(self):
        for unit in ("year", "month", "day"):
            stmt = parse_select(f"select extract({unit} from d) from t")
            assert stmt.items[0].expr.unit == unit

    def test_extract_bad_unit(self):
        with pytest.raises(SqlError):
            parse_select("select extract(hour from d) from t")


class TestTpchQueries:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_all_supported_queries_parse(self, name):
        stmt = parse_select(QUERIES[name])
        assert stmt.items
