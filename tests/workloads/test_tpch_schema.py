"""Tests for the TPC-H schema definitions."""

import pytest

from repro.workloads.tpch_schema import (
    OSDB_INDEXES,
    TPCH_TABLES,
    tpch_row_counts,
    tpch_schema,
)


class TestSchema:
    def test_all_eight_tables(self):
        assert set(TPCH_TABLES) == {
            "region", "nation", "supplier", "customer",
            "part", "partsupp", "orders", "lineitem",
        }

    def test_lineitem_has_sixteen_columns(self):
        assert len(tpch_schema("lineitem")) == 16

    def test_key_columns_present(self):
        assert tpch_schema("orders").has_column("o_orderkey")
        assert tpch_schema("orders").has_column("o_comment")
        assert tpch_schema("lineitem").has_column("l_commitdate")
        assert tpch_schema("customer").has_column("c_mktsegment")

    def test_indexes_reference_real_columns(self):
        for _name, table, column, _unique in OSDB_INDEXES:
            assert tpch_schema(table).has_column(column), (table, column)

    def test_index_names_unique(self):
        names = [name for name, *_ in OSDB_INDEXES]
        assert len(names) == len(set(names))

    def test_primary_keys_unique(self):
        uniques = {name for name, _t, _c, unique in OSDB_INDEXES if unique}
        assert "orders_pk" in uniques
        assert "customer_pk" in uniques


class TestRowCounts:
    def test_fixed_small_tables(self):
        counts = tpch_row_counts(1.0)
        assert counts["region"] == 5
        assert counts["nation"] == 25

    def test_scaling(self):
        full = tpch_row_counts(1.0)
        tenth = tpch_row_counts(0.1)
        assert full["orders"] == 1_500_000
        assert tenth["orders"] == 150_000

    def test_lineitem_to_orders_ratio(self):
        counts = tpch_row_counts(0.1)
        assert 3.5 < counts["lineitem"] / counts["orders"] < 4.5

    def test_minimum_floors(self):
        counts = tpch_row_counts(1e-6)
        assert counts["orders"] >= 300

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            tpch_row_counts(0)
