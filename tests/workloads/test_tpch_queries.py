"""Execution tests for the TPC-H query kit.

Every supported query must plan and execute on a generated database;
where the result is cheap to verify independently, the answer itself is
checked against a direct computation over the raw rows.
"""

import pytest

from repro.engine.types import Date
from repro.workloads.tpch_queries import QUERIES, QUERY_TABLES, tpch_query


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert tpch_query("q4") == QUERIES["Q4"]

    def test_unknown_query(self):
        with pytest.raises(KeyError):
            tpch_query("Q99")

    def test_tables_listed_for_every_query(self):
        assert set(QUERY_TABLES) == set(QUERIES)


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_query_executes(tpch_db, name):
    result = tpch_db.run_sql(QUERIES[name])
    assert result.plan is not None
    # Aggregation queries without grouping always yield one row.
    if name in ("Q6", "Q14"):
        assert len(result.rows) == 1


class TestAnswerCorrectness:
    """Cross-check query answers against direct computation."""

    def _rows(self, tpch_db, table):
        return [row for _rid, row in tpch_db.catalog.table(table).heap.scan_rids()]

    def test_q6_revenue(self, tpch_db):
        lo = Date.parse("1994-01-01")
        hi = Date.parse("1995-01-01")
        expected = sum(
            row[5] * row[6]
            for row in self._rows(tpch_db, "lineitem")
            if lo <= row[10] < hi and 0.05 <= row[6] <= 0.07 and row[4] < 24
        )
        result = tpch_db.run_sql(QUERIES["Q6"])
        actual = result.rows[0][0]
        if expected == 0:
            assert actual is None or actual == 0
        else:
            assert actual == pytest.approx(expected)

    def test_q1_counts(self, tpch_db):
        cutoff = Date.parse("1998-12-01").add_days(-90)
        groups = {}
        for row in self._rows(tpch_db, "lineitem"):
            if row[10] <= cutoff:
                key = (row[8], row[9])
                groups[key] = groups.get(key, 0) + 1
        result = tpch_db.run_sql(QUERIES["Q1"])
        names = result.column_names
        count_pos = names.index("count_order")
        for row in result.rows:
            assert row[count_pos] == groups[(row[0], row[1])]
        assert len(result.rows) == len(groups)

    def test_q4_order_counts(self, tpch_db):
        lo = Date.parse("1993-07-01")
        hi = lo.add_months(3)
        late_orders = {
            row[0] for row in self._rows(tpch_db, "lineitem") if row[11] < row[12]
        }
        expected = {}
        for row in self._rows(tpch_db, "orders"):
            if lo <= row[4] < hi and row[0] in late_orders:
                expected[row[5]] = expected.get(row[5], 0) + 1
        result = tpch_db.run_sql(QUERIES["Q4"])
        assert dict(result.rows) == expected
        priorities = [row[0] for row in result.rows]
        assert priorities == sorted(priorities)

    def test_q13_customer_distribution(self, tpch_db):
        import re

        pattern = re.compile("special.*requests")
        per_customer = {}
        for row in self._rows(tpch_db, "orders"):
            if not pattern.search(row[8]):
                per_customer[row[1]] = per_customer.get(row[1], 0) + 1
        n_customers = tpch_db.catalog.table("customer").heap.n_rows
        distribution = {}
        for custkey in range(1, n_customers + 1):
            count = per_customer.get(custkey, 0)
            distribution[count] = distribution.get(count, 0) + 1
        result = tpch_db.run_sql(QUERIES["Q13"])
        assert {row[0]: row[1] for row in result.rows} == distribution
        # Ordered by custdist desc, then c_count desc.
        pairs = [(row[1], row[0]) for row in result.rows]
        assert pairs == sorted(pairs, reverse=True)

    def test_q18_large_orders(self, tpch_db):
        totals = {}
        for row in self._rows(tpch_db, "lineitem"):
            totals[row[0]] = totals.get(row[0], 0.0) + row[4]
        big_orders = {key for key, qty in totals.items() if qty > 212}
        result = tpch_db.run_sql(QUERIES["Q18"])
        returned_orders = {row[2] for row in result.rows}
        assert returned_orders <= big_orders
        assert len(result.rows) == min(100, len(big_orders))

    def test_q3_limit_and_order(self, tpch_db):
        result = tpch_db.run_sql(QUERIES["Q3"])
        assert len(result.rows) <= 10
        revenues = [row[1] for row in result.rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_q14_ratio_bounded(self, tpch_db):
        result = tpch_db.run_sql(QUERIES["Q14"])
        value = result.rows[0][0]
        if value is not None:
            assert 0.0 <= value <= 100.0

    def test_q11_value_threshold(self, tpch_db):
        germany = next(
            row[0] for row in self._rows(tpch_db, "nation")
            if row[1] == "GERMANY"
        )
        german_suppliers = {
            row[0] for row in self._rows(tpch_db, "supplier")
            if row[3] == germany
        }
        values = {}
        total = 0.0
        for row in self._rows(tpch_db, "partsupp"):
            if row[1] in german_suppliers:
                value = row[3] * row[2]
                values[row[0]] = values.get(row[0], 0.0) + value
                total += value
        threshold = total * 0.0050
        expected = {k: v for k, v in values.items() if v > threshold}
        result = tpch_db.run_sql(QUERIES["Q11"])
        actual = {row[0]: row[1] for row in result.rows}
        assert set(actual) == set(expected)
        for key, value in actual.items():
            assert value == pytest.approx(expected[key])
        column = [row[1] for row in result.rows]
        assert column == sorted(column, reverse=True)

    def test_q16_supplier_counts(self, tpch_db):
        import re

        complainers = {
            row[0] for row in self._rows(tpch_db, "supplier")
            if re.search("Customer.*Complaints", row[6])
        }
        sizes = {49, 14, 23, 45, 19, 3, 36, 9}
        parts = {
            row[0]: (row[3], row[4], row[5])
            for row in self._rows(tpch_db, "part")
            if row[3] != "Brand#45"
            and not row[4].startswith("MEDIUM POLISHED")
            and row[5] in sizes
        }
        expected = {}
        for row in self._rows(tpch_db, "partsupp"):
            if row[0] in parts and row[1] not in complainers:
                expected.setdefault(parts[row[0]], set()).add(row[1])
        result = tpch_db.run_sql(QUERIES["Q16"])
        actual = {(row[0], row[1], row[2]): row[3] for row in result.rows}
        assert actual == {key: len(supps) for key, supps in expected.items()}

    def test_q17_small_quantity_revenue(self, tpch_db):
        parts = {
            row[0] for row in self._rows(tpch_db, "part")
            if row[3] == "Brand#23" and row[6] == "MED BOX"
        }
        per_part_quantities = {}
        for line in self._rows(tpch_db, "lineitem"):
            per_part_quantities.setdefault(line[1], []).append(line[4])
        expected = 0.0
        any_row = False
        for line in self._rows(tpch_db, "lineitem"):
            if line[1] not in parts:
                continue
            quantities = per_part_quantities[line[1]]
            threshold = 0.2 * (sum(quantities) / len(quantities))
            if line[4] < threshold:
                expected += line[5]
                any_row = True
        result = tpch_db.run_sql(QUERIES["Q17"])
        actual = result.rows[0][0]
        if not any_row:
            assert actual is None
        else:
            assert actual == pytest.approx(expected / 7.0)

    def test_q2_min_cost_suppliers(self, tpch_db):
        nations = {row[0]: (row[1], row[2])
                   for row in self._rows(tpch_db, "nation")}
        europe = {row[0] for row in self._rows(tpch_db, "region")
                  if row[1] == "EUROPE"}
        suppliers = {row[0]: row for row in self._rows(tpch_db, "supplier")}
        parts = {
            row[0]: row for row in self._rows(tpch_db, "part")
            if row[5] == 15 and row[4].endswith("BRASS")
        }

        def in_europe(supp_key):
            nation_key = suppliers[supp_key][3]
            return nations[nation_key][1] in europe

        min_cost = {}
        for ps in self._rows(tpch_db, "partsupp"):
            if ps[0] in parts and in_europe(ps[1]):
                current = min_cost.get(ps[0])
                min_cost[ps[0]] = ps[3] if current is None else min(current, ps[3])
        expected_pairs = set()
        for ps in self._rows(tpch_db, "partsupp"):
            if ps[0] in parts and in_europe(ps[1]) \
                    and ps[3] == min_cost.get(ps[0]):
                expected_pairs.add((ps[0], ps[1]))

        result = tpch_db.run_sql(QUERIES["Q2"])
        # Output columns: s_acctbal, s_name, n_name, p_partkey, ...
        actual_parts = {row[3] for row in result.rows}
        assert actual_parts == {part for part, _supp in expected_pairs}
        assert len(result.rows) == len(expected_pairs)

    def test_q21_waiting_suppliers(self, tpch_db):
        import collections

        saudi = next(row[0] for row in self._rows(tpch_db, "nation")
                     if row[1] == "SAUDI ARABIA")
        suppliers = {row[0]: row for row in self._rows(tpch_db, "supplier")}
        f_orders = {row[0] for row in self._rows(tpch_db, "orders")
                    if row[2] == "F"}
        lines_by_order = collections.defaultdict(list)
        for line in self._rows(tpch_db, "lineitem"):
            lines_by_order[line[0]].append(line)

        counts = collections.Counter()
        for line in self._rows(tpch_db, "lineitem"):
            order_key, supp_key = line[0], line[2]
            if order_key not in f_orders or not line[12] > line[11]:
                continue
            if suppliers[supp_key][3] != saudi:
                continue
            others = [l for l in lines_by_order[order_key]
                      if l[2] != supp_key]
            if not others:
                continue
            if any(l[12] > l[11] for l in others):
                continue
            counts[suppliers[supp_key][1]] += 1

        result = tpch_db.run_sql(QUERIES["Q21"])
        assert {row[0]: row[1] for row in result.rows} == dict(counts)

    def test_q9_profit_by_nation_year(self, tpch_db):
        green_parts = {row[0] for row in self._rows(tpch_db, "part")
                       if "green" in row[1]}
        nations = {row[0]: row[1] for row in self._rows(tpch_db, "nation")}
        suppliers = {row[0]: row for row in self._rows(tpch_db, "supplier")}
        orders = {row[0]: row for row in self._rows(tpch_db, "orders")}
        supply_cost = {
            (row[0], row[1]): row[3]
            for row in self._rows(tpch_db, "partsupp")
        }
        expected = {}
        for line in self._rows(tpch_db, "lineitem"):
            part, supp = line[1], line[2]
            if part not in green_parts or (part, supp) not in supply_cost:
                continue
            nation = nations[suppliers[supp][3]]
            year = orders[line[0]][4].year
            amount = line[5] * (1 - line[6]) - supply_cost[(part, supp)] * line[4]
            expected[(nation, year)] = expected.get((nation, year), 0.0) + amount
        result = tpch_db.run_sql(QUERIES["Q9"])
        actual = {(row[0], row[1]): row[2] for row in result.rows}
        assert set(actual) == set(expected)
        for key, amount in actual.items():
            assert amount == pytest.approx(expected[key])

    def test_q19_revenue(self, tpch_db):
        parts = {row[0]: row for row in self._rows(tpch_db, "part")}

        def branch(line, part, brand, containers, qty_lo, qty_hi, size_hi):
            return (part[3] == brand and part[6] in containers
                    and qty_lo <= line[4] <= qty_hi
                    and 1 <= part[5] <= size_hi)

        expected = 0.0
        for line in self._rows(tpch_db, "lineitem"):
            part = parts.get(line[1])
            if part is None or line[14] not in ("AIR", "REG AIR") \
                    or line[13] != "DELIVER IN PERSON":
                continue
            if branch(line, part, "Brand#12", ("SM CASE", "SM BOX"), 1, 11, 5) \
                    or branch(line, part, "Brand#23", ("MED BAG", "MED BOX"), 10, 20, 10) \
                    or branch(line, part, "Brand#34", ("LG CASE", "LG BOX"), 20, 30, 15):
                expected += line[5] * (1 - line[6])
        result = tpch_db.run_sql(QUERIES["Q19"])
        actual = result.rows[0][0]
        if expected == 0:
            assert actual is None or actual == 0
        else:
            assert actual == pytest.approx(expected)
