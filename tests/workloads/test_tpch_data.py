"""Tests for the TPC-H data generator."""

import pytest

from repro.engine.types import Date
from repro.workloads.tpch_data import (
    END_DATE,
    PRIORITIES,
    SPECIAL_REQUEST_FRACTION,
    START_DATE,
    TpchDataGenerator,
    build_tpch_database,
)


@pytest.fixture(scope="module")
def generator():
    return TpchDataGenerator(scale_factor=0.002, seed=42)


class TestDeterminism:
    def test_same_seed_same_rows(self, generator):
        other = TpchDataGenerator(scale_factor=0.002, seed=42)
        assert list(generator.orders_rows())[:50] == list(other.orders_rows())[:50]

    def test_different_seed_differs(self, generator):
        other = TpchDataGenerator(scale_factor=0.002, seed=43)
        assert list(generator.orders_rows())[:50] != list(other.orders_rows())[:50]

    def test_lineitem_rederives_order_dates(self, generator):
        """l_shipdate must always follow its order's o_orderdate."""
        order_dates = {row[0]: row[4] for row in generator.orders_rows()}
        for line in list(generator.lineitem_rows())[:2000]:
            order_key, ship_date = line[0], line[10]
            assert ship_date > order_dates[order_key]


class TestDistributions:
    def test_order_dates_in_range(self, generator):
        for row in generator.orders_rows():
            assert START_DATE <= row[4] <= END_DATE

    def test_priorities_valid(self, generator):
        seen = {row[5] for row in generator.orders_rows()}
        assert seen <= set(PRIORITIES)
        assert len(seen) == 5  # all five appear at this scale

    def test_special_requests_fraction(self, generator):
        comments = [row[8] for row in generator.orders_rows()]
        matching = sum(
            1 for c in comments
            if "special" in c and "requests" in c.split("special", 1)[1]
        )
        fraction = matching / len(comments)
        assert 0.2 * SPECIAL_REQUEST_FRACTION < fraction < 5 * SPECIAL_REQUEST_FRACTION

    def test_some_customers_place_no_orders(self, generator):
        n_customers = generator.counts["customer"]
        customers_with_orders = {row[1] for row in generator.orders_rows()}
        assert len(customers_with_orders) < n_customers

    def test_commit_before_receipt_mix(self, generator):
        lines = list(generator.lineitem_rows())
        late = sum(1 for line in lines if line[11] < line[12])
        # A substantial but not universal fraction satisfies Q4's EXISTS.
        assert 0.2 < late / len(lines) < 0.95

    def test_lineitem_dates_consistent(self, generator):
        for line in list(generator.lineitem_rows())[:2000]:
            ship, commit, receipt = line[10], line[11], line[12]
            assert receipt > ship
            assert isinstance(commit, Date)

    def test_discount_and_tax_ranges(self, generator):
        for line in list(generator.lineitem_rows())[:2000]:
            assert 0.0 <= line[6] <= 0.10
            assert 0.0 <= line[7] <= 0.08

    def test_foreign_keys_in_range(self, generator):
        counts = generator.counts
        for line in list(generator.lineitem_rows())[:2000]:
            assert 1 <= line[1] <= counts["part"]
            assert 1 <= line[2] <= counts["supplier"]


class TestBuildDatabase:
    def test_partial_build(self):
        db = build_tpch_database(scale_factor=0.002,
                                 tables=["orders", "lineitem"])
        assert set(db.catalog.table_names()) == {"orders", "lineitem"}
        assert db.catalog.index_on_column("orders", "o_orderkey") is not None

    def test_rows_validate_against_schema(self, tpch_db):
        # Loading validates every row; reaching here means it all fit.
        assert tpch_db.catalog.table("lineitem").heap.n_rows > 0

    def test_statistics_analyzed(self, tpch_db):
        stats = tpch_db.catalog.stats("orders")
        assert stats.column("o_orderdate").min_value >= START_DATE

    def test_without_indexes(self):
        db = build_tpch_database(scale_factor=0.002, tables=["region"],
                                 with_indexes=False)
        assert db.catalog.indexes_on("region") == []
