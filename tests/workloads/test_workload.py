"""Tests for the workload abstraction."""

import pytest

from repro.workloads.tpch_queries import tpch_query
from repro.workloads.workload import (
    Workload,
    cpu_heavy_workload,
    random_mixed_workload,
    scan_heavy_workload,
)


class TestWorkload:
    def test_basic(self):
        w = Workload("w", ["select 1 from t"])
        assert w.name == "w"
        assert len(w) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Workload("w", [])

    def test_repeat(self):
        w = Workload.repeat("w", "sql", 9)
        assert len(w) == 9
        assert all(s == "sql" for s in w.statements)

    def test_repeat_rejects_zero(self):
        with pytest.raises(ValueError):
            Workload.repeat("w", "sql", 0)

    def test_of_queries(self):
        w = Workload.of_queries("w", ["Q4", "Q13"])
        assert w.statements == (tpch_query("Q4"), tpch_query("Q13"))

    def test_immutable(self):
        w = Workload("w", ["a"])
        with pytest.raises(AttributeError):
            w.name = "other"


class TestGenerators:
    def test_profiles_disjoint(self):
        io = set(scan_heavy_workload().statements)
        cpu = set(cpu_heavy_workload().statements)
        assert not (io & cpu)

    def test_copies_multiply(self):
        assert len(scan_heavy_workload(copies=3)) == 6

    def test_random_mixed_deterministic(self):
        a = random_mixed_workload("m", 20, seed=1)
        b = random_mixed_workload("m", 20, seed=1)
        assert a.statements == b.statements

    def test_random_mixed_bias(self):
        all_cpu = random_mixed_workload("m", 30, seed=1, cpu_bias=1.0)
        cpu_statements = set(cpu_heavy_workload(copies=1).statements)
        assert all(s in cpu_statements for s in all_cpu.statements)

    def test_bias_validated(self):
        with pytest.raises(ValueError):
            random_mixed_workload("m", 5, cpu_bias=1.5)
