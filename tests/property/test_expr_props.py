"""Property tests: expression evaluation agrees with Python semantics.

Random arithmetic/comparison trees over two integer columns are
evaluated by the engine and by a direct Python interpreter; the results
must agree, including SQL's NULL propagation.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.expr import (
    BinaryOp,
    ColumnRef,
    EvalContext,
    IsNullExpr,
    Literal,
    NotExpr,
    RowLayout,
)

LAYOUT = RowLayout([("t", "a"), ("t", "b")])

values = st.one_of(st.integers(min_value=-20, max_value=20), st.none())


def arith_exprs():
    leaves = st.one_of(
        st.just(ColumnRef("t", "a")),
        st.just(ColumnRef("t", "b")),
        st.integers(min_value=-5, max_value=5).map(Literal),
    )

    def extend(children):
        return st.tuples(st.sampled_from("+-*"), children, children).map(
            lambda t: BinaryOp(t[0], t[1], t[2])
        )

    return st.recursive(leaves, extend, max_leaves=12)


def python_eval(expr, a, b):
    """Reference interpreter with SQL NULL propagation."""
    if isinstance(expr, ColumnRef):
        return a if expr.column == "a" else b
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, NotExpr):
        inner = python_eval(expr.operand, a, b)
        return None if inner is None else (not inner)
    if isinstance(expr, IsNullExpr):
        inner = python_eval(expr.operand, a, b)
        return (inner is not None) if expr.negated else (inner is None)
    assert isinstance(expr, BinaryOp)
    left = python_eval(expr.left, a, b)
    right = python_eval(expr.right, a, b)
    if left is None or right is None:
        return None
    ops = {
        "+": lambda x, y: x + y,
        "-": lambda x, y: x - y,
        "*": lambda x, y: x * y,
        "<": lambda x, y: x < y,
        "<=": lambda x, y: x <= y,
        ">": lambda x, y: x > y,
        ">=": lambda x, y: x >= y,
        "=": lambda x, y: x == y,
        "<>": lambda x, y: x != y,
    }
    return ops[expr.op](left, right)


@given(arith_exprs(), values, values)
@settings(max_examples=200)
def test_arithmetic_matches_python(expr, a, b):
    bound = expr.bind(LAYOUT)
    engine_value = bound.eval((a, b), EvalContext())
    assert engine_value == python_eval(expr, a, b)


@given(arith_exprs(), arith_exprs(),
       st.sampled_from(["<", "<=", ">", ">=", "=", "<>"]),
       values, values)
@settings(max_examples=200)
def test_comparisons_match_python(left, right, op, a, b):
    expr = BinaryOp(op, left, right).bind(LAYOUT)
    assert expr.eval((a, b), EvalContext()) == \
        python_eval(BinaryOp(op, left, right), a, b)


@given(arith_exprs(), values, values)
@settings(max_examples=100)
def test_is_null_consistent(expr, a, b):
    is_null = IsNullExpr(expr).bind(LAYOUT).eval((a, b), EvalContext())
    value = expr.bind(LAYOUT).eval((a, b), EvalContext())
    assert is_null == (value is None)


@given(arith_exprs(), values, values)
@settings(max_examples=100)
def test_evaluation_charges_ops(expr, a, b):
    ctx = EvalContext()
    expr.bind(LAYOUT).eval((a, b), ctx)
    # Literal-only expressions may be free; anything touching a column
    # must charge at least one primitive step.
    if expr.columns():
        assert ctx.ops >= 1
