"""Property tests: buffer-pool invariants under arbitrary access traces."""

from hypothesis import given, settings, strategies as st

from repro.engine.bufferpool import BufferPool
from repro.engine.trace import WorkTrace

accesses = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),     # file id
        st.integers(min_value=0, max_value=40),    # page number
        st.booleans(),                             # sequential
        st.booleans(),                             # bypass
    ),
    max_size=300,
)


@given(st.integers(min_value=0, max_value=20), accesses)
def test_residency_never_exceeds_capacity(capacity, trace_ops):
    pool = BufferPool(capacity)
    trace = WorkTrace()
    for file_id, page, sequential, bypass in trace_ops:
        pool.access(file_id, page, trace, sequential=sequential, bypass=bypass)
        assert len(pool) <= capacity


@given(st.integers(min_value=0, max_value=20), accesses)
def test_counter_conservation(capacity, trace_ops):
    pool = BufferPool(capacity)
    trace = WorkTrace()
    for file_id, page, sequential, bypass in trace_ops:
        pool.access(file_id, page, trace, sequential=sequential, bypass=bypass)
    assert pool.hits + pool.misses == len(trace_ops)
    assert trace.buffer_hits == pool.hits
    assert trace.total_page_reads == pool.misses
    assert trace.seq_page_requests + trace.random_page_requests == len(trace_ops)


@given(accesses)
def test_hit_reported_iff_resident(trace_ops):
    pool = BufferPool(8)
    trace = WorkTrace()
    for file_id, page, sequential, bypass in trace_ops:
        resident_before = pool.contains(file_id, page)
        hit = pool.access(file_id, page, trace, sequential=sequential,
                          bypass=bypass)
        assert hit == resident_before


@given(accesses, st.integers(min_value=0, max_value=30))
@settings(max_examples=50)
def test_resize_preserves_invariants(trace_ops, new_capacity):
    pool = BufferPool(16)
    trace = WorkTrace()
    for file_id, page, sequential, bypass in trace_ops:
        pool.access(file_id, page, trace, sequential=sequential, bypass=bypass)
    pool.resize(new_capacity)
    assert len(pool) <= new_capacity
    # Pool still functions after resizing.
    pool.access(1, 0, trace)
    assert len(pool) <= max(new_capacity, 0) or new_capacity == 0
