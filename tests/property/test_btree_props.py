"""Property tests: the B+-tree agrees with a sorted-list oracle."""

from hypothesis import given, settings, strategies as st

from repro.engine.index import BPlusTreeIndex
from repro.engine.storage import RecordId

keys_lists = st.lists(st.integers(min_value=-1000, max_value=1000),
                      min_size=0, max_size=300)


def build_insert(keys):
    tree = BPlusTreeIndex("idx", "t", "a", key_width=8)
    for i, key in enumerate(keys):
        tree.insert(key, RecordId(0, i))
    return tree


@given(keys_lists)
def test_items_sorted_and_complete(keys):
    tree = build_insert(keys)
    assert sorted(keys) == [k for k, _r in tree.items()]


@given(keys_lists)
def test_bulk_load_equals_insert_build(keys):
    inserted = build_insert(keys)
    bulk = BPlusTreeIndex.bulk_load(
        "idx2", "t", "a",
        [(k, RecordId(0, i)) for i, k in enumerate(keys)], key_width=8,
    )
    assert [k for k, _ in inserted.items()] == [k for k, _ in bulk.items()]


@given(keys_lists, st.integers(min_value=-1000, max_value=1000))
def test_search_matches_count(keys, probe):
    tree = build_insert(keys)
    rids, _pages = tree.search(probe)
    assert len(rids) == keys.count(probe)


@given(keys_lists,
       st.integers(min_value=-1100, max_value=1100),
       st.integers(min_value=-1100, max_value=1100))
def test_range_scan_matches_filter(keys, a, b):
    low, high = min(a, b), max(a, b)
    tree = build_insert(keys)
    scanned = [k for k, _r, _p in tree.range_scan(low, high)]
    assert scanned == sorted(k for k in keys if low <= k <= high)


@given(keys_lists)
@settings(max_examples=50)
def test_entry_count_invariant(keys):
    tree = build_insert(keys)
    assert tree.n_entries == len(keys)
    assert tree.n_pages >= tree.height
