"""Property tests: statistics invariants under arbitrary data."""

from hypothesis import assume, given, settings, strategies as st

from repro.engine.statistics import analyze_column

values_lists = st.lists(
    st.one_of(st.integers(min_value=-100, max_value=100), st.none()),
    min_size=0, max_size=300,
)


@given(values_lists)
def test_summary_counts_consistent(values):
    stats = analyze_column("c", values)
    assert stats.n_values == len(values)
    non_null = [v for v in values if v is not None]
    assert stats.n_distinct == len(set(non_null))
    if values:
        assert stats.null_fraction == (len(values) - len(non_null)) / len(values)
    if non_null:
        assert stats.min_value == min(non_null)
        assert stats.max_value == max(non_null)


@given(values_lists, st.integers(min_value=-120, max_value=120))
def test_selectivities_bounded(values, probe):
    stats = analyze_column("c", values)
    assert 0.0 <= stats.selectivity_eq(probe) <= 1.0
    assert 0.0 <= stats.selectivity_range(None, probe) <= 1.0
    assert 0.0 <= stats.selectivity_range(probe, None) <= 1.0


@given(values_lists)
def test_full_range_covers_non_nulls(values):
    assume(any(v is not None for v in values))
    stats = analyze_column("c", values)
    full = stats.selectivity_range(None, None)
    assert full == 1.0 - stats.null_fraction


@given(values_lists,
       st.integers(min_value=-120, max_value=120),
       st.integers(min_value=-120, max_value=120))
@settings(max_examples=150)
def test_range_monotone_in_upper_bound(values, a, b):
    assume(any(v is not None for v in values))
    lo, hi = min(a, b), max(a, b)
    stats = analyze_column("c", values)
    narrow = stats.selectivity_range(None, lo)
    wide = stats.selectivity_range(None, hi)
    assert wide >= narrow - 0.05  # histogram resolution slack


@given(
    st.lists(st.integers(min_value=-100, max_value=100),
             min_size=30, max_size=300),
    st.integers(min_value=-120, max_value=120),
)
@settings(max_examples=150)
def test_range_estimate_tracks_truth(values, cut):
    """The histogram estimate must be within coarse bounds of reality."""
    stats = analyze_column("c", values)
    estimated = stats.selectivity_range(None, cut, high_inclusive=True)
    actual = sum(1 for v in values if v <= cut) / len(values)
    assert abs(estimated - actual) < 0.25


@given(values_lists)
def test_mcv_frequencies_valid(values):
    stats = analyze_column("c", values)
    total = 0.0
    for _value, freq in stats.mcv:
        assert 0.0 < freq <= 1.0
        total += freq
    assert total <= 1.0 + 1e-9
