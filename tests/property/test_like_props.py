"""Property tests: the linear-time LIKE matcher agrees with a regex oracle."""

import re

from hypothesis import given, settings, strategies as st

from repro.engine.expr import EvalContext, LikeExpr, Literal

#: Small alphabets make wildcard collisions frequent, which is where
#: greedy matchers go wrong if they ever will.
subjects = st.text(alphabet="abc", max_size=12)
patterns = st.text(alphabet="abc%_", max_size=8)


def regex_like(subject: str, pattern: str) -> bool:
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.fullmatch("".join(out), subject, re.DOTALL) is not None


def engine_like(subject: str, pattern: str) -> bool:
    expr = LikeExpr(Literal(subject), pattern)
    return expr.eval((), EvalContext())


@given(subjects, patterns)
@settings(max_examples=500)
def test_matches_regex_oracle(subject, pattern):
    assert engine_like(subject, pattern) == regex_like(subject, pattern)


@given(subjects)
def test_percent_matches_everything(subject):
    assert engine_like(subject, "%")


@given(subjects)
def test_self_pattern_matches(subject):
    assert engine_like(subject, subject) or "%" in subject or "_" in subject


@given(subjects, patterns)
@settings(max_examples=200)
def test_negation_complements(subject, pattern):
    positive = LikeExpr(Literal(subject), pattern).eval((), EvalContext())
    negative = LikeExpr(Literal(subject), pattern, negated=True) \
        .eval((), EvalContext())
    assert positive != negative


def test_pathological_pattern_is_fast():
    import time

    subject = "a" * 5000
    pattern = "%a" * 12 + "%b"
    start = time.time()
    assert not engine_like(subject, pattern)
    assert time.time() - start < 0.5  # a backtracking regex would hang
