"""Property tests: allocation matrices and search discretization."""

from hypothesis import given, settings, strategies as st

from repro.core.search import compositions
from repro.virt.resources import ResourceKind, ResourceVector, equal_share

shares = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@given(shares, shares, shares)
def test_vector_roundtrip(cpu, memory, io):
    vec = ResourceVector.of(cpu=cpu, memory=memory, io=io)
    assert vec.as_tuple() == (cpu, memory, io)


@given(shares, shares, shares, shares)
def test_with_share_only_changes_target(cpu, memory, io, new_cpu):
    vec = ResourceVector.of(cpu=cpu, memory=memory, io=io)
    updated = vec.with_share(ResourceKind.CPU, new_cpu)
    assert updated.cpu == new_cpu
    assert updated.memory == memory
    assert updated.io == io


@given(st.integers(min_value=1, max_value=12))
def test_equal_share_sums_to_one(n):
    vec = equal_share(n)
    assert abs(n * vec.cpu - 1.0) < 1e-9


@given(st.integers(min_value=1, max_value=12),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=60)
def test_compositions_partition_exactly(total, parts):
    count = 0
    for combo in compositions(total, parts):
        count += 1
        assert sum(combo) == total
        assert all(part >= 1 for part in combo)
    # Stars and bars: C(total-1, parts-1).
    import math

    expected = math.comb(total - 1, parts - 1) if total >= parts else 0
    assert count == expected


@given(st.integers(min_value=2, max_value=10),
       st.integers(min_value=2, max_value=3))
def test_compositions_distinct(total, parts):
    combos = list(compositions(total, parts))
    assert len(combos) == len(set(combos))
