"""Property tests: serial and parallel ``cost_many`` always agree.

Hypothesis generates random batches of (workload, allocation) pairs —
duplicates included — plus random memo pre-seeding, and asserts that a
serial evaluation, a 4-worker thread evaluation, and a 4-worker process
evaluation of the same batch produce identical costs and identical
fresh/hit accounting. A fault-sensitive variant injects a seeded
:class:`FaultPlan` into the per-pair cost function, and a budget-stop
variant drives full searches under a random evaluation budget.
"""

from hypothesis import given, settings, strategies as st

from repro.core.cost_model import CostModel
from repro.core.problem import VirtualizationDesignProblem, WorkloadSpec
from repro.core.search import make_algorithm
from repro.engine.database import Database
from repro.faults import FaultInjector, FaultPlan
from repro.parallel import EvaluationEngine
from repro.virt.machine import PhysicalMachine
from repro.virt.resources import ResourceKind, ResourceVector
from repro.workloads.workload import Workload

NAMES = ("alpha", "beta", "gamma")

SPECS = {
    name: WorkloadSpec(Workload(name, ["select 1 from t"]), Database(name))
    for name in NAMES
}


class SyntheticCostModel(CostModel):
    """Pure analytic cost; honestly parallel_safe."""

    kind = "synthetic"
    parallel_safe = True

    def __init__(self, fault_plan=None):
        super().__init__()
        # Perturbs each pair's cost through a stream forked from the
        # pair itself, so the model stays a pure function of the pair
        # (hermetic) while still exercising the fault machinery.
        self._plan = fault_plan

    def _cost(self, spec, allocation: ResourceVector) -> float:
        base = (1.0 + len(spec.name)) / max(allocation.cpu, 1e-9)
        base += 0.5 / max(allocation.memory, 1e-9)
        if self._plan is not None:
            injector = FaultInjector(self._plan, buffer_counts=True)
            injector.begin_unit(f"{spec.name}:{allocation.as_tuple()}")
            child = injector.fork_stream("cost")
            base = child.on_measurement(allocation.as_tuple(), base)
        return base


# Index pairs into a small workload x allocation grid so batches have
# natural duplicates and memo overlap.
pair_indices = st.tuples(st.integers(0, len(NAMES) - 1),
                         st.integers(1, 8), st.integers(1, 8))
batches = st.lists(pair_indices, min_size=1, max_size=30)


def materialize(indices):
    pairs = []
    for name_i, cpu_i, mem_i in indices:
        pairs.append((SPECS[NAMES[name_i]],
                      ResourceVector.of(cpu=cpu_i / 8, memory=mem_i / 8,
                                        io=0.5)))
    return pairs


def outcome_data(outcome):
    return (outcome.costs, outcome.fresh, outcome.hits)


def evaluate_everywhere(pairs, seed_from=None, fault_plan=None):
    """The same batch through serial / thread / process engines."""
    results = []
    for pool, workers in (("serial", 1), ("thread", 4), ("process", 4)):
        model = SyntheticCostModel(fault_plan=fault_plan)
        if seed_from:
            for spec, allocation, value in seed_from:
                model.seed(spec, allocation, value)
        with EvaluationEngine(workers=workers, pool=pool) as engine:
            results.append(outcome_data(model.cost_many(pairs,
                                                        engine=engine)))
    return results


@given(batches)
@settings(max_examples=25, deadline=None)
def test_cost_many_identical_across_pools(indices):
    pairs = materialize(indices)
    serial, threaded, forked = evaluate_everywhere(pairs)
    assert threaded == serial
    assert forked == serial


@given(batches)
@settings(max_examples=15, deadline=None)
def test_cost_many_identical_under_faults(indices):
    plan = FaultPlan.named("noisy").with_overrides(
        transient_rate=0.0, hang_rate=0.3, outlier_rate=0.3)
    pairs = materialize(indices)
    serial, threaded, forked = evaluate_everywhere(pairs, fault_plan=plan)
    assert threaded == serial
    assert forked == serial


@given(batches, st.lists(pair_indices, max_size=10))
@settings(max_examples=20, deadline=None)
def test_memo_hits_counted_identically(indices, seeded_indices):
    pairs = materialize(indices)
    seeded = [(spec, allocation, 42.0)
              for spec, allocation in materialize(seeded_indices)]
    serial, threaded, forked = evaluate_everywhere(pairs, seed_from=seeded)
    assert threaded == serial
    assert forked == serial
    # Sanity: accounting always reconciles with the batch size.
    costs, fresh, hits = serial
    assert fresh + hits == len(pairs)


@given(st.sampled_from(["exhaustive", "greedy", "dynamic-programming"]),
       st.integers(min_value=1, max_value=12),
       st.integers(min_value=3, max_value=6))
@settings(max_examples=15, deadline=None)
def test_budget_stop_identical_across_pools(algorithm, budget, grid):
    problem = VirtualizationDesignProblem(
        machine=PhysicalMachine(), specs=[SPECS["alpha"], SPECS["beta"]],
        controlled_resources=(ResourceKind.CPU, ResourceKind.MEMORY),
    )

    def run(workers, pool):
        model = SyntheticCostModel()
        with EvaluationEngine(workers=workers, pool=pool) as engine:
            result = make_algorithm(algorithm, grid=grid,
                                    max_evaluations=budget,
                                    engine=engine).search(problem, model)
        return {
            "allocation": {
                name: result.allocation.vector_for(name).as_tuple()
                for name in result.allocation.workload_names()
            },
            "total_cost": result.total_cost,
            "evaluations": result.evaluations,
            "stopped": result.stopped,
        }

    baseline = run(1, "serial")
    assert run(4, "thread") == baseline
    assert run(4, "process") == baseline
