"""Property tests: the fleet placer's two structural guarantees.

Hypothesis draws random synthetic fleets (seed, host count, workload
count) and asserts, for every one of them:

* the cost trajectory is monotonically non-increasing — only strictly
  improving reassignment moves may be applied, for any fleet; and
* a serial run and a 3-worker thread-pool run of the same placement
  are **bit-identical** — parallelism fans out the per-host solves but
  must not change a single float of the outcome.
"""

from hypothesis import given, settings, strategies as st

from repro.fleet import FleetDesigner, synthetic_fleet
from repro.parallel import EvaluationEngine

seeds = st.integers(min_value=0, max_value=10_000)
host_counts = st.integers(min_value=2, max_value=4)
workload_counts = st.integers(min_value=4, max_value=10)


def make_problem(seed, hosts, workloads):
    return synthetic_fleet(hosts, workloads, seed=seed, grid=6)


@given(seeds, host_counts, workload_counts)
@settings(max_examples=15, deadline=None)
def test_trajectory_is_monotone_non_increasing(seed, hosts, workloads):
    problem = make_problem(seed, hosts, workloads)
    design = FleetDesigner(problem, max_rounds=4,
                           move_fraction=0.25).design()
    trajectory = design.cost_trajectory
    assert trajectory[-1] == design.total_cost
    for before, after in zip(trajectory, trajectory[1:]):
        assert after <= before + 1e-9, (
            f"fleet cost increased {before} -> {after} (seed {seed})")


@given(seeds, host_counts, workload_counts)
@settings(max_examples=10, deadline=None)
def test_serial_and_threaded_designs_are_bit_identical(seed, hosts,
                                                       workloads):
    problem = make_problem(seed, hosts, workloads)
    serial = FleetDesigner(problem, max_rounds=3,
                           move_fraction=0.25).design()
    engine = EvaluationEngine(workers=3, pool="thread")
    try:
        threaded = FleetDesigner(problem, max_rounds=3,
                                 move_fraction=0.25,
                                 engine=engine).design()
    finally:
        engine.close()
    assert threaded.assignment == serial.assignment
    assert threaded.cost_trajectory == serial.cost_trajectory
    assert threaded.host_designs == serial.host_designs
    assert threaded.total_cost == serial.total_cost
