"""Property tests: what-if batching never changes an answer.

The serve daemon merges concurrent what-ifs into single ``cost_many``
batches, sheds under load, and lets clients retry — none of which may
change a single float of any answer. Hypothesis draws request mixes
and seeded interleavings (batch partitions, orderings, duplicated
retries) and asserts that

* serial (one request per batch), batched (arbitrary partitions), and
  shed-and-retried (re-submitted later, after other traffic) sessions
  produce **bit-identical** costs and statuses per request; and
* every response stays typed and inside its deadline, whatever the
  interleaving.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.serve import ServeConfig, WhatIfRequest
from repro.serve.requests import ANSWERED, DEGRADED

from tests.serve.conftest import build_problem, make_service, tiny_workbench

SHARES = (0.02, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 0.98)

_STATE: dict = {}


def booted():
    """One shared boot fit (module-level: hypothesis re-calls the test)."""
    if not _STATE:
        from repro.calibration import CalibrationCache, CalibrationRunner
        from repro.surrogate import design_continuous

        problem = build_problem()
        runner = CalibrationRunner(problem.machine,
                                   workbench=tiny_workbench())
        outcome = design_continuous(
            problem, CalibrationCache(runner), algorithm="greedy",
            grid=3, tolerance=0.05, max_calibrations=12)
        _STATE["problem"] = problem
        _STATE["booted"] = {"surface": outcome.surface,
                            "incumbent": outcome.design, "runner": runner}
    return _STATE["problem"], _STATE["booted"]


def fresh_service():
    problem, boot = booted()
    return make_service(problem, boot, config=ServeConfig())


shapes = st.lists(
    st.tuples(st.sampled_from(["order-audit", "cust-report"]),
              st.sampled_from(SHARES)),
    min_size=1, max_size=12)


def requests_from(shape_list):
    return [WhatIfRequest(tenant=f"t{i % 3}", workload=name,
                          allocation=(share, 0.5, 0.5), arrival=0.0,
                          deadline_seconds=30.0)
            for i, (name, share) in enumerate(shape_list)]


def answers(service, batches):
    """(workload, allocation) -> (status, cost) over processed batches."""
    out = {}
    for batch in batches:
        for response in service.process_batch(batch):
            request = response.request
            key = (request.workload, request.allocation)
            assert response.status in (ANSWERED, DEGRADED)
            assert response.completed_at <= request.deadline_at
            previous = out.get(key)
            if previous is not None:
                # A repeated shape answers identically within a session.
                assert previous == (response.status, response.cost)
            out[key] = (response.status, response.cost)
    return out


def partition(items, cuts):
    batches, start = [], 0
    for cut in sorted(cuts):
        if start < cut < len(items):
            batches.append(items[start:cut])
            start = cut
    batches.append(items[start:])
    return [batch for batch in batches if batch]


@given(shapes, st.sets(st.integers(min_value=1, max_value=11), max_size=4),
       st.randoms(use_true_random=False))
@settings(max_examples=20, deadline=None)
def test_serial_batched_and_retried_answers_are_bit_identical(
        shape_list, cuts, rng):
    requests = requests_from(shape_list)

    serial = answers(fresh_service(), [[r] for r in requests])

    batched = answers(fresh_service(), partition(requests, cuts))

    # Shed-and-retried: a seeded interleaving where some requests are
    # "shed" in round one and retried after the rest of the traffic.
    shed = [r for r in requests if rng.random() < 0.4]
    kept = [r for r in requests if r not in shed]
    retried = answers(fresh_service(),
                      [batch for batch in (kept, shed, shed) if batch])

    assert serial == batched == retried


@given(shapes)
@settings(max_examples=10, deadline=None)
def test_batch_charge_is_bounded_by_unique_shapes(shape_list):
    # The whole point of batching: duplicates collapse, so the
    # simulated charge scales with unique shapes, not request count.
    requests = requests_from(shape_list)
    service = fresh_service()
    config = service.config
    service.process_batch(requests)
    unique = len({(r.workload, r.allocation) for r in requests})
    assert service.clock.now <= (config.batch_overhead_seconds
                                 + unique * config.eval_seconds + 1e-12)
