"""Property tests: SQL execution agrees with direct Python evaluation
on a generated table, across filters, grouping, and sorting."""

from hypothesis import given, settings, strategies as st

from repro.engine.database import Database
from repro.engine.schema import Column, ColumnType, TableSchema


def build_db(rows):
    db = Database("prop", memory_pages=1024)
    db.create_table(TableSchema("t", [
        Column("a", ColumnType.INT),
        Column("b", ColumnType.INT),
    ]))
    db.load_rows("t", rows)
    db.analyze()
    return db


rows_strategy = st.lists(
    st.tuples(st.integers(min_value=-50, max_value=50),
              st.integers(min_value=0, max_value=5)),
    min_size=0, max_size=120,
)


@given(rows_strategy, st.integers(min_value=-60, max_value=60))
@settings(max_examples=40, deadline=None)
def test_filter_count_matches_python(rows, threshold):
    db = build_db(rows)
    result = db.run_sql(f"select count(*) as n from t where a < {threshold}")
    assert result.rows[0][0] == sum(1 for a, _b in rows if a < threshold)


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_group_by_matches_python(rows):
    db = build_db(rows)
    result = db.run_sql(
        "select b, count(*) as n, sum(a) as s from t group by b order by b"
    )
    expected = {}
    for a, b in rows:
        n, s = expected.get(b, (0, 0))
        expected[b] = (n + 1, s + a)
    assert len(result.rows) == len(expected)
    for b, n, s in result.rows:
        exp_n, exp_s = expected[b]
        assert n == exp_n
        assert s == exp_s


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_order_by_sorts(rows):
    db = build_db(rows)
    result = db.run_sql("select a from t order by a desc")
    values = [row[0] for row in result.rows]
    assert values == sorted((a for a, _b in rows), reverse=True)


@given(rows_strategy, st.integers(min_value=0, max_value=10))
@settings(max_examples=40, deadline=None)
def test_limit_truncates(rows, n):
    db = build_db(rows)
    result = db.run_sql(f"select a from t order by a limit {n}")
    assert len(result.rows) == min(n, len(rows))


@given(rows_strategy)
@settings(max_examples=30, deadline=None)
def test_self_join_count(rows):
    db = build_db(rows)
    result = db.run_sql(
        "select count(*) as n from t t1, t t2 where t1.b = t2.b"
    )
    from collections import Counter

    counts = Counter(b for _a, b in rows)
    expected = sum(c * c for c in counts.values())
    assert result.rows[0][0] == expected
