"""Property tests for the raw-speed pass's fast paths.

Three contracts, each against generated tables (the "seeds"):

* the executor's batched inner loops produce the same rows *and* the
  same :class:`WorkTrace` as the per-tuple scalar fallback;
* a compiled re-cost program replays the same cost full re-planning
  computes, under arbitrary parameter perturbations;
* the what-if plan-shape cache never serves a program or plan across a
  catalog change — loads, new indexes, and fresh statistics all move
  the fingerprint, and post-change estimates match a fresh planner.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.engine import executor
from repro.engine.database import Database
from repro.engine.schema import Column, ColumnType, TableSchema
from repro.optimizer import whatif as whatif_module
from repro.optimizer.params import OptimizerParameters
from repro.optimizer.planner import Planner
from repro.optimizer.recost import PlanCostRecorder
from repro.optimizer.whatif import WhatIfOptimizer, full_planning_fallback


def build_db(rows, with_index=False):
    db = Database("prop", memory_pages=256)
    db.create_table(TableSchema("t", [
        Column("a", ColumnType.INT),
        Column("b", ColumnType.INT),
        Column("c", ColumnType.TEXT),
    ]))
    db.load_rows("t", rows)
    if with_index:
        db.create_index("t_a_idx", "t", "a")
    db.analyze()
    return db


rows_strategy = st.lists(
    st.tuples(st.integers(min_value=-50, max_value=50),
              st.integers(min_value=0, max_value=5),
              st.text(alphabet="abxyz", min_size=0, max_size=8)),
    min_size=0, max_size=120,
)

#: Queries covering the batched operators: scan+filter, aggregation,
#: sort+limit, LIKE byte-matching, and a hash/merge join.
SQLS = (
    "select count(*) as n from t where a < 10",
    "select b, count(*) as n, sum(a) as s from t group by b order by b",
    "select a from t order by a desc limit 7",
    "select count(*) as n from t where c like '%ab%'",
    "select count(*) as n from t t1, t t2 where t1.b = t2.b",
)


@given(rows_strategy)
@settings(max_examples=25, deadline=None)
def test_executor_fast_path_bit_identical_to_scalar(rows):
    """Rows and work traces match exactly, query by query."""
    fast_db = build_db(rows)
    scalar_db = build_db(rows)
    for sql in SQLS:
        fast = fast_db.run_sql(sql)
        with executor.scalar_fallback():
            scalar = scalar_db.run_sql(sql)
        assert fast.rows == scalar.rows, sql
        assert fast.trace == scalar.trace, sql


scale_strategy = st.floats(min_value=0.01, max_value=150.0,
                           allow_nan=False, allow_infinity=False)


@given(rows_strategy,
       st.tuples(scale_strategy, scale_strategy, scale_strategy,
                 scale_strategy))
@settings(max_examples=25, deadline=None)
def test_recost_program_matches_full_replanning(rows, scales):
    """Replayed program cost == full re-plan cost under perturbed P."""
    db = build_db(rows, with_index=True)
    base = OptimizerParameters.defaults()
    perturbed = dataclasses.replace(
        base,
        cpu_tuple_cost=base.cpu_tuple_cost * scales[0],
        cpu_operator_cost=base.cpu_operator_cost * scales[1],
        random_page_cost=base.random_page_cost * scales[2],
        cpu_like_byte_cost=base.cpu_like_byte_cost * scales[3],
    )
    for sql in SQLS:
        recorder = PlanCostRecorder()
        plan = Planner(db.catalog, base).plan_sql(sql, recorder)
        program = recorder.program(db.catalog.fingerprint(), plan.est_rows)
        assert program is not None, (sql, recorder.reason)
        for params in (base, perturbed):
            replayed = program.cost(params)
            full = Planner(db.catalog, params).plan_sql(sql).est_total_cost
            assert replayed == full, (sql, params)


@given(rows_strategy,
       st.lists(st.tuples(st.integers(min_value=-50, max_value=50),
                          st.integers(min_value=0, max_value=5),
                          st.text(alphabet="abxyz", max_size=8)),
                min_size=1, max_size=30))
@settings(max_examples=25, deadline=None)
def test_fingerprint_never_serves_stale_program(rows, extra):
    """Catalog mutations invalidate programs, plans, and estimates."""
    db = build_db(rows)
    optimizer = WhatIfOptimizer(db.catalog)
    sql = "select count(*) as n from t where a < 10"
    optimizer.estimate_query(sql)  # compiles and caches the program

    before = db.catalog.fingerprint()
    db.load_rows("t", extra)
    assert db.catalog.fingerprint() != before, \
        "loading rows must move the fingerprint"
    db.analyze()
    db.create_index("t_b_idx", "t", "b")
    after = db.catalog.fingerprint()
    assert after != before

    # Whatever path answers now (fresh program or fresh plan), it must
    # agree with a from-scratch planner over the mutated catalog.
    estimate = optimizer.estimate_query(sql)
    fresh = Planner(db.catalog, optimizer.params).plan_sql(sql)
    assert estimate.cost_units == fresh.est_total_cost
    # And the fallback path agrees too: the program compiled for the
    # new fingerprint replays the same cost planning computes.
    with full_planning_fallback():
        fallback = WhatIfOptimizer(db.catalog).estimate_query(sql)
    assert fallback.cost_units == estimate.cost_units


def test_full_planning_fallback_restores_flag():
    assert whatif_module.FAST_PATH is True
    with full_planning_fallback():
        assert whatif_module.FAST_PATH is False
    assert whatif_module.FAST_PATH is True
