"""CodesignDesigner: budget accounting, monotonicity, degeneracy."""

from __future__ import annotations

import pytest

from repro.codesign import CodesignDesigner
from repro.core import VirtualizationDesigner

from .conftest import GRID, STORAGE_BUDGET, make_cost_model, make_problem


def run_codesign(storage_budget, algorithm="greedy", max_rounds=6):
    problem = make_problem()
    model = make_cost_model(problem, config_aware=True)
    designer = CodesignDesigner(
        problem, model, storage_budget=storage_budget,
        algorithm=algorithm, grid=GRID, max_rounds=max_rounds)
    return designer.design()


class TestZeroBudgetDegeneracy:
    """With no pages to spend, co-tuning IS the allocation-only
    designer — same allocation, same cost, bit for bit.

    GRID is even, so the equal-share default allocation is on the
    search grid and both sides score the same incumbent; see the
    conftest note.
    """

    @pytest.mark.parametrize("algorithm", ["greedy", "exhaustive"])
    def test_degenerates_to_allocation_only(self, algorithm):
        codesign = run_codesign(0, algorithm=algorithm)
        baseline_problem = make_problem()
        baseline = VirtualizationDesigner(
            baseline_problem,
            make_cost_model(baseline_problem, config_aware=False),
        ).design(algorithm, grid=GRID)

        assert codesign.indexes == {"order-audit": [], "cust-report": []}
        assert codesign.pages_used == {"order-audit": 0, "cust-report": 0}
        for name in ("order-audit", "cust-report"):
            assert (codesign.allocation.vector_for(name).as_tuple()
                    == baseline.allocation.vector_for(name).as_tuple())
        assert codesign.total_cost == baseline.predicted_total_cost


class TestBudgetedSelection:
    def test_selects_indexes_and_beats_the_initial_design(self):
        design = run_codesign(STORAGE_BUDGET)
        chosen = [c for choices in design.indexes.values() for c in choices]
        assert chosen, "the SSD-regime scenario must select something"
        assert design.total_cost < design.initial_total_cost
        assert design.predicted_improvement > 0
        assert design.converged

    def test_budget_and_page_accounting_hold(self):
        design = run_codesign(STORAGE_BUDGET)
        for name, choices in design.indexes.items():
            assert design.pages_used[name] == sum(c.pages for c in choices)
            assert design.pages_used[name] <= design.storage_budget
        # Chosen indexes are left hypothesized in the spec's catalog so
        # the caller can inspect (or materialize) the configuration.
        for spec in design.problem.specs:
            for choice in design.indexes[spec.name]:
                info = spec.database.catalog.index_on_column(
                    choice.table, choice.column)
                assert info is not None and info.hypothetical

    def test_trajectory_is_monotone_and_bookended(self):
        design = run_codesign(STORAGE_BUDGET)
        trajectory = design.trajectory
        # One initial entry plus two half-steps per round.
        assert len(trajectory) == 1 + 2 * design.rounds
        assert trajectory[0] == design.initial_total_cost
        assert trajectory[-1] == design.total_cost
        assert all(b <= a for a, b in zip(trajectory, trajectory[1:]))

    def test_tiny_budget_respected(self):
        """A 1-page budget cannot fit any TPC-H index at this scale."""
        design = run_codesign(1)
        assert design.pages_used == {"order-audit": 0, "cust-report": 0}

    def test_summary_names_the_choices(self):
        design = run_codesign(STORAGE_BUDGET)
        text = design.summary()
        assert "Co-design via greedy" in text
        assert f"/{STORAGE_BUDGET} pages" in text
        assert "total predicted" in text


class TestValidation:
    def test_negative_budget_rejected(self):
        problem = make_problem()
        model = make_cost_model(problem, config_aware=True)
        with pytest.raises(ValueError, match="storage_budget"):
            CodesignDesigner(problem, model, storage_budget=-1)

    def test_zero_rounds_rejected(self):
        problem = make_problem()
        model = make_cost_model(problem, config_aware=True)
        with pytest.raises(ValueError, match="max_rounds"):
            CodesignDesigner(problem, model, storage_budget=0, max_rounds=0)


class TestParallelEquivalence:
    def test_threaded_codesign_is_bit_identical_to_serial(self):
        """Candidate what-ifs and search evaluations batch through
        cost_many; fanning the batches over an engine must not change
        a single bit of the design."""
        from repro.parallel import make_engine

        serial = run_codesign(STORAGE_BUDGET)
        problem = make_problem()
        engine = make_engine(2, "thread")
        try:
            threaded = CodesignDesigner(
                problem, make_cost_model(problem, config_aware=True),
                storage_budget=STORAGE_BUDGET, algorithm="greedy",
                grid=GRID, engine=engine).design()
        finally:
            engine.close()
        assert threaded.trajectory == serial.trajectory
        assert threaded.indexes == serial.indexes
        assert threaded.pages_used == serial.pages_used
        for name in ("order-audit", "cust-report"):
            assert (threaded.allocation.vector_for(name).as_tuple()
                    == serial.allocation.vector_for(name).as_tuple())
        assert threaded.total_cost == serial.total_cost
