"""Shared fixtures for the co-tuning (codesign) tests.

Same shape as the recovery suite's problem — two TPC-H workloads
competing for CPU on the laboratory machine at scale 0.002 — but every
spec gets its **own** database with **no** secondary indexes: index
selection mutates the spec's catalog with hypothetical DDL, so sharing
a catalog between workloads (or between tests) would leak what-if
indexes across runs. ``make_problem`` therefore builds fresh.

Calibration runs on the reduced synthetic workbench, whose measured
machine calibrates ``random_page_cost`` to ~1 (SSD-like) — the regime
where index paths can win. The real laboratory runner calibrates ~100
(spinning disk) and the optimizer correctly never picks an index scan
at this scale; see ``scripts/bench_codesign.py``.
"""

from __future__ import annotations

from repro.calibration import CalibrationCache, CalibrationRunner
from repro.calibration.synthetic import (
    HUGE_TABLE,
    SMALL_TABLE,
    CalibrationWorkbench,
)
from repro.core import OptimizerCostModel
from repro.core.problem import VirtualizationDesignProblem, WorkloadSpec
from repro.virt.machine import laboratory_machine
from repro.virt.resources import ResourceKind
from repro.workloads import Workload, build_tpch_database, tpch_query

#: Grid used everywhere here. Must be even: equal shares (0.5, 0.5) are
#: then on the grid, which the zero-budget degeneracy test relies on.
GRID = 4
SCALE = 0.002
STORAGE_BUDGET = 64


def tiny_workbench() -> CalibrationWorkbench:
    return CalibrationWorkbench(rows={
        SMALL_TABLE: 200,
        "cal_scan_a": 1_000,
        "cal_scan_b": 2_000,
        "cal_scan_c": 3_000,
        HUGE_TABLE: 4_000,
    })


def make_db(name: str):
    return build_tpch_database(
        scale_factor=SCALE, tables=["customer", "orders", "lineitem"],
        with_indexes=False, name=name)


def make_problem() -> VirtualizationDesignProblem:
    specs = [
        WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 1),
                     make_db("tpch-order-audit")),
        WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 2),
                     make_db("tpch-cust-report")),
    ]
    return VirtualizationDesignProblem(
        machine=laboratory_machine(), specs=specs,
        controlled_resources=(ResourceKind.CPU,),
    )


def make_cost_model(problem, *, config_aware: bool) -> OptimizerCostModel:
    runner = CalibrationRunner(problem.machine, workbench=tiny_workbench())
    return OptimizerCostModel(CalibrationCache(runner),
                              config_aware=config_aware)
