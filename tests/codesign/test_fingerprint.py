"""Index DDL must invalidate every cost cache, compiled or memoized.

The co-tuning loop re-costs the same (workload, allocation) pair under
many hypothetical index sets. Three layers cache those costs — the
what-if plan cache, the compiled recost ``CostProgram`` store, and the
``OptimizerCostModel`` memo — and each keys on
``Catalog.fingerprint()``. If any of them survived index DDL, a
candidate's what-if cost would be the *pre*-index cost and every
benefit would be zero. These are the regression tests that pin the
invalidation.
"""

from __future__ import annotations

import pytest

from repro.obs import metrics
from repro.optimizer.params import OptimizerParameters
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workloads import tpch_query

from .conftest import make_cost_model, make_db, make_problem


class TestCatalogFingerprint:
    def test_hypothetical_create_and_drop_change_the_fingerprint(self):
        catalog = make_db("t").catalog
        before = catalog.fingerprint()
        catalog.create_hypothetical_index(
            "cdx_orders_o_orderdate", "orders", "o_orderdate")
        with_index = catalog.fingerprint()
        assert with_index != before
        catalog.drop_index("cdx_orders_o_orderdate")
        assert catalog.fingerprint() == before

    def test_real_and_hypothetical_indexes_fingerprint_differently(self):
        """The hypothetical flag is part of the identity: a run that
        materializes a chosen index must not replay what-if programs."""
        real = make_db("a").catalog
        hypo = make_db("b").catalog
        real.create_index("cdx_orders_o_orderdate", "orders", "o_orderdate")
        hypo.create_hypothetical_index(
            "cdx_orders_o_orderdate", "orders", "o_orderdate")
        assert real.fingerprint() != hypo.fingerprint()


class TestStaleRecostPrograms:
    """A compiled CostProgram from before index DDL is never replayed."""

    def test_ddl_forces_a_fresh_estimate_not_a_recost(self):
        metrics.reset()
        catalog = make_db("t").catalog
        optimizer = WhatIfOptimizer(catalog, OptimizerParameters.defaults())
        sql = tpch_query("Q4")

        optimizer.estimate_query(sql)   # compiles the program
        optimizer.estimate_query(sql)   # same fingerprint: plan-cache hit
        estimates_before = metrics.counter("optimizer.whatif.estimates").value
        recosts_before = metrics.counter("optimizer.whatif.recosts").value

        catalog.create_hypothetical_index(
            "cdx_orders_o_orderdate", "orders", "o_orderdate")
        optimizer.estimate_query(sql)

        estimates = metrics.counter("optimizer.whatif.estimates").value
        recosts = metrics.counter("optimizer.whatif.recosts").value
        assert estimates == estimates_before + 1, (
            "post-DDL estimate must re-plan against the new catalog")
        assert recosts == recosts_before, (
            "a CostProgram compiled before index DDL was replayed after it")

    def test_recost_resumes_once_the_new_fingerprint_is_compiled(self):
        """Invalidation is per-fingerprint, not a global flush: the
        post-DDL plan compiles its own program and replays thereafter."""
        metrics.reset()
        catalog = make_db("t").catalog
        sql = tpch_query("Q4")
        base = WhatIfOptimizer(catalog, OptimizerParameters.defaults())
        base.estimate_query(sql)
        catalog.create_hypothetical_index(
            "cdx_orders_o_orderdate", "orders", "o_orderdate")
        base.estimate_query(sql)        # compiles for the new fingerprint
        recosts_before = metrics.counter("optimizer.whatif.recosts").value
        # A different P shares the program store; same fingerprint, so
        # this estimate is exactly the replay path the fast path exists
        # for — and it replays the *post*-DDL program.
        other = base.with_params(
            OptimizerParameters.defaults().with_values(cpu_tuple_cost=0.02))
        other.estimate_query(sql)
        assert (metrics.counter("optimizer.whatif.recosts").value
                == recosts_before + 1)


class TestConfigAwareMemo:
    """OptimizerCostModel memo keys fold in the catalog fingerprint."""

    @pytest.fixture()
    def problem(self):
        return make_problem()

    def test_stale_memo_entry_is_never_served_across_ddl(self, problem):
        model = make_cost_model(problem, config_aware=True)
        spec = problem.specs[0]
        vector = problem.default_allocation().vector_for(spec.name)

        first = model.cost_many([(spec, vector)])
        assert first.fresh == 1
        hit = model.cost_many([(spec, vector)])
        assert (hit.fresh, hit.hits) == (0, 1)

        spec.database.catalog.create_hypothetical_index(
            "cdx_orders_o_orderdate", "orders", "o_orderdate")
        after = model.cost_many([(spec, vector)])
        assert after.fresh == 1, (
            "index DDL did not invalidate the cost-model memo: a stale "
            "pre-index cost would zero every candidate benefit")

        spec.database.catalog.drop_index("cdx_orders_o_orderdate")
        back = model.cost_many([(spec, vector)])
        assert (back.fresh, back.hits) == (0, 1)
        assert back.costs == first.costs

    def test_config_blind_model_demonstrates_the_hazard(self, problem):
        """Without config_aware=True the memo *is* blind to DDL — the
        designer's constructor contract exists precisely because of
        this behaviour, so pin it."""
        model = make_cost_model(problem, config_aware=False)
        spec = problem.specs[0]
        vector = problem.default_allocation().vector_for(spec.name)
        model.cost_many([(spec, vector)])
        spec.database.catalog.create_hypothetical_index(
            "cdx_orders_o_orderdate", "orders", "o_orderdate")
        stale = model.cost_many([(spec, vector)])
        assert (stale.fresh, stale.hits) == (0, 1)
