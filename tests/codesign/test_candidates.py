"""Candidate extraction: predicates in, single-column candidates out."""

from __future__ import annotations

from repro.codesign.candidates import (
    IndexCandidate,
    candidate_indexes,
    candidate_key,
)
from repro.workloads import Workload, build_tpch_database, tpch_query

from .conftest import SCALE, make_db


class TestCandidateExtraction:
    def test_q4_yields_join_and_restriction_columns(self):
        """Q4's date restriction and EXISTS correlation both surface."""
        workload = Workload.repeat("w", tpch_query("Q4"), 1)
        found = candidate_indexes(workload, make_db("t").catalog)
        assert [str(c) for c in found] == [
            "lineitem.l_orderkey", "orders.o_orderdate", "orders.o_orderkey",
        ]

    def test_q13_yields_the_outer_join_columns(self):
        workload = Workload.repeat("w", tpch_query("Q13"), 1)
        found = candidate_indexes(workload, make_db("t").catalog)
        assert [str(c) for c in found] == [
            "customer.c_custkey", "orders.o_custkey",
        ]

    def test_candidates_are_sorted_and_deduplicated(self):
        """Repeating the statement adds nothing; order is stable."""
        once = Workload.repeat("w", tpch_query("Q4"), 1)
        thrice = Workload.repeat("w", tpch_query("Q4"), 3)
        catalog = make_db("t").catalog
        assert (candidate_indexes(once, catalog)
                == candidate_indexes(thrice, catalog))

    def test_real_indexes_suppress_their_candidates(self):
        """A column already carrying a materialized index has no
        remaining what-if upside; the stock TPC-H indexes cover every
        Q4 candidate column."""
        db = build_tpch_database(
            scale_factor=SCALE, tables=["customer", "orders", "lineitem"],
            with_indexes=True, name="indexed")
        workload = Workload.repeat("w", tpch_query("Q4"), 1)
        assert candidate_indexes(workload, db.catalog) == []

    def test_hypothetical_indexes_do_not_suppress(self):
        """Only *real* coverage removes a candidate: the selection pass
        itself creates hypothetical indexes mid-run and must still see
        the column as a candidate when re-seeding."""
        db = make_db("t")
        db.catalog.create_hypothetical_index(
            "cdx_orders_o_orderdate", "orders", "o_orderdate")
        workload = Workload.repeat("w", tpch_query("Q4"), 1)
        found = {str(c) for c in candidate_indexes(workload, db.catalog)}
        assert "orders.o_orderdate" in found

    def test_index_name_and_key_are_stable(self):
        cand = IndexCandidate(table="orders", column="o_orderdate")
        assert cand.index_name == "cdx_orders_o_orderdate"
        assert candidate_key(cand) == ("orders", "o_orderdate")
