"""CLI surface for co-tuning: exit codes, resume dispatch, output."""

from __future__ import annotations

import pytest

from repro.cli import main

ARGS = ["design", "--co-tune", "--scale", "0.002", "--grid", "4",
        "--algorithm", "greedy", "--storage-budget", "8"]


class TestCoTuneFlag:
    def test_co_tune_prints_the_codesign_summary(self, capsys):
        assert main(ARGS) == 0
        out = capsys.readouterr().out
        assert "Co-design via greedy" in out
        assert "Trajectory (total predicted seconds per half-step):" in out
        assert "Journal:" in out

    def test_co_tune_rejects_continuous_and_online(self, capsys):
        assert main([*ARGS, "--continuous"]) == 2
        assert "--co-tune cannot combine" in capsys.readouterr().err
        assert main([*ARGS, "--online"]) == 2

    @pytest.mark.recovery
    def test_kill_then_resume_round_trip(self, capsys, tmp_path):
        journal = tmp_path / "codesign.journal"
        assert main([*ARGS, "--journal", str(journal),
                     "--max-units", "4"]) == 4
        out = capsys.readouterr().out
        assert "resumable with: repro resume" in out
        assert journal.exists()

        assert main(["resume", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "Co-design via greedy" in out
        assert "4 unit(s) replayed" in out
