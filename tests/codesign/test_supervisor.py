"""CodesignSupervisor: journaled runs, kill/resume equivalence, identity.

The equivalence test is the co-tuning analogue of
``tests/recovery/test_resume_equivalence.py``: one uninterrupted
baseline run, then a kill at **every** unit boundary followed by a
resume, each required to leave a journal bit-identical to the
baseline's.
"""

from __future__ import annotations

import pytest

from repro.codesign import (
    CodesignSupervisor,
    choices_from_record,
    replay_result,
)
from repro.recovery.journal import RunJournal
from repro.util.errors import RecoveryError

from .conftest import GRID, STORAGE_BUDGET, make_problem, tiny_workbench


def make_supervisor(path, **kwargs):
    kwargs.setdefault("storage_budget", STORAGE_BUDGET)
    kwargs.setdefault("grid", GRID)
    kwargs.setdefault("workbench", tiny_workbench())
    return CodesignSupervisor(make_problem(), path, **kwargs)


def journal_fingerprint(path):
    """Everything a run commits, as plain data (bit-identical or bust)."""
    journal = RunJournal.open(path)
    return [
        (record.kind, sorted((k, repr(v)) for k, v in record.data.items()))
        for record in journal.records
    ]


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    path = tmp_path_factory.mktemp("baseline") / "codesign.journal"
    run = make_supervisor(path).run()
    assert run.completed
    return {"run": run, "path": path,
            "fingerprint": journal_fingerprint(path),
            "total_units": run.new_units}


@pytest.mark.recovery
class TestResumeEquivalence:
    def test_killed_then_resumed_is_bit_identical_everywhere(
            self, baseline, tmp_path):
        """Kill at every unit boundary; the resumed journal must match
        the uninterrupted one record for record."""
        total = baseline["total_units"]
        assert total >= 4, "problem too small to exercise resume"
        for kill_after in range(1, total):
            path = tmp_path / f"killed-{kill_after}.journal"
            killed = make_supervisor(path, max_units=kill_after).run()
            assert not killed.completed
            assert killed.design is None
            assert killed.new_units == kill_after

            resumed = make_supervisor(path).run(resume=True)
            assert resumed.completed
            assert resumed.replayed_units == kill_after
            assert resumed.new_units == total - kill_after
            assert journal_fingerprint(path) == baseline["fingerprint"], (
                f"journal diverged when killed after {kill_after} "
                f"of {total} units")

    def test_resumed_design_matches_the_baseline(self, baseline, tmp_path):
        run = baseline["run"]
        path = tmp_path / "halfway.journal"
        make_supervisor(path, max_units=baseline["total_units"] // 2).run()
        resumed = make_supervisor(path).run(resume=True)
        assert resumed.design.trajectory == run.design.trajectory
        assert resumed.design.indexes == run.design.indexes
        assert (resumed.design.allocation.as_dict()
                == run.design.allocation.as_dict())

    def test_resuming_a_finished_run_replays_everything(self, baseline):
        resumed = make_supervisor(baseline["path"]).run(resume=True)
        assert resumed.completed
        assert resumed.new_units == 0
        assert resumed.replayed_units == baseline["total_units"]
        # Still exactly one result record.
        journal = RunJournal.open(baseline["path"])
        assert len(journal.records_of("result")) == 1


@pytest.mark.recovery
class TestRunIdentity:
    def test_meta_mismatch_is_refused(self, baseline, tmp_path):
        import shutil

        path = tmp_path / "copy.journal"
        shutil.copy(baseline["path"], path)
        with pytest.raises(RecoveryError, match="storage_budget"):
            make_supervisor(path, storage_budget=STORAGE_BUDGET + 1).run(
                resume=True)
        with pytest.raises(RecoveryError, match="algorithm"):
            make_supervisor(path, algorithm="exhaustive").run(resume=True)

    def test_meta_records_the_run_kind(self, baseline):
        meta = RunJournal.open(baseline["path"]).meta
        assert meta["run_kind"] == "codesign"
        assert meta["storage_budget"] == STORAGE_BUDGET
        assert meta["workloads"] == ["order-audit", "cust-report"]


class TestResultRecord:
    def test_replay_result_round_trips_the_choices(self, baseline):
        record = replay_result(baseline["path"])
        assert record is not None
        design = baseline["run"].design
        assert record["total_cost"] == design.total_cost
        assert record["trajectory"] == design.trajectory
        decoded = choices_from_record(record)
        assert decoded == design.indexes

    def test_no_result_before_completion(self, tmp_path):
        path = tmp_path / "unfinished.journal"
        make_supervisor(path, max_units=2).run()
        assert replay_result(path) is None
