"""Tests for the virtual machine monitor."""

import pytest

from repro.util.errors import AdmissionError, AllocationError
from repro.virt.machine import PhysicalMachine
from repro.virt.monitor import VirtualMachineMonitor
from repro.virt.resources import ResourceKind, ResourceVector


def shares(cpu=0.25, memory=0.25, io=0.25):
    return ResourceVector.of(cpu=cpu, memory=memory, io=io)


@pytest.fixture
def vmm():
    return VirtualMachineMonitor.single_host(PhysicalMachine(memory_mib=1024.0))


class TestAdmission:
    def test_create_vm(self, vmm):
        vm = vmm.create_vm("db1", shares())
        assert vm.name == "db1"
        assert "db1" in vmm.vms

    def test_duplicate_name_rejected(self, vmm):
        vmm.create_vm("db1", shares())
        with pytest.raises(AdmissionError):
            vmm.create_vm("db1", shares())

    def test_oversubscription_rejected(self, vmm):
        vmm.create_vm("a", shares(cpu=0.7))
        with pytest.raises(AdmissionError):
            vmm.create_vm("b", shares(cpu=0.7))

    def test_full_allocation_accepted(self, vmm):
        vmm.create_vm("a", shares(cpu=0.5, memory=0.5, io=0.5))
        vmm.create_vm("b", shares(cpu=0.5, memory=0.5, io=0.5))
        totals = vmm.allocated_shares("host0")
        assert totals[ResourceKind.CPU] == pytest.approx(1.0)

    def test_destroy_releases_shares(self, vmm):
        vmm.create_vm("a", shares(cpu=0.9))
        vmm.destroy_vm("a")
        vmm.create_vm("b", shares(cpu=0.9))  # must succeed now

    def test_unknown_machine_rejected(self, vmm):
        with pytest.raises(AllocationError):
            vmm.create_vm("a", shares(), machine_name="nope")


class TestReconfiguration:
    def test_set_shares(self, vmm):
        vmm.create_vm("a", shares(cpu=0.25))
        vmm.set_shares("a", shares(cpu=0.75))
        assert vmm.vms["a"].shares.cpu == 0.75

    def test_set_shares_respects_other_vms(self, vmm):
        vmm.create_vm("a", shares(cpu=0.5))
        vmm.create_vm("b", shares(cpu=0.5))
        with pytest.raises(AdmissionError):
            vmm.set_shares("a", shares(cpu=0.75))

    def test_apply_allocation_atomic(self, vmm):
        vmm.create_vm("a", shares(cpu=0.5))
        vmm.create_vm("b", shares(cpu=0.5))
        # Swapping shares requires validating the whole matrix at once.
        vmm.apply_allocation({
            "a": shares(cpu=0.75),
            "b": shares(cpu=0.25),
        })
        assert vmm.vms["a"].shares.cpu == 0.75
        assert vmm.vms["b"].shares.cpu == 0.25

    def test_apply_allocation_rejects_oversubscription_untouched(self, vmm):
        vmm.create_vm("a", shares(cpu=0.5))
        vmm.create_vm("b", shares(cpu=0.5))
        with pytest.raises(AdmissionError):
            vmm.apply_allocation({"a": shares(cpu=0.75), "b": shares(cpu=0.5)})
        assert vmm.vms["a"].shares.cpu == 0.5  # unchanged

    def test_apply_allocation_unknown_vm(self, vmm):
        with pytest.raises(AllocationError):
            vmm.apply_allocation({"ghost": shares()})


class TestMigration:
    @pytest.fixture
    def two_hosts(self):
        return VirtualMachineMonitor([
            PhysicalMachine(name="h1", memory_mib=1024.0),
            PhysicalMachine(name="h2", memory_mib=1024.0),
        ])

    def test_migrate_moves_vm(self, two_hosts):
        vm = two_hosts.create_vm("a", shares(), machine_name="h1")
        vm.start()
        downtime = two_hosts.migrate("a", "h2")
        assert downtime > 0
        assert two_hosts.vms_on("h2")[0].name == "a"
        assert two_hosts.vms_on("h1") == []

    def test_migrate_preserves_guest_and_state(self, two_hosts):
        vm = two_hosts.create_vm("a", shares(), machine_name="h1")
        vm.attach_guest({"data": 1})
        vm.start()
        two_hosts.migrate("a", "h2")
        moved = two_hosts.vms["a"]
        assert moved.guest == {"data": 1}
        assert moved.state.value == "running"

    def test_migrate_to_same_host_is_free(self, two_hosts):
        two_hosts.create_vm("a", shares(), machine_name="h1")
        assert two_hosts.migrate("a", "h1") == 0.0

    def test_migrate_respects_target_capacity(self, two_hosts):
        two_hosts.create_vm("big", shares(cpu=0.9), machine_name="h2")
        two_hosts.create_vm("a", shares(cpu=0.5), machine_name="h1")
        with pytest.raises(AdmissionError):
            two_hosts.migrate("a", "h2")


class TestImages:
    def test_deploy_image(self, vmm):
        vm = vmm.create_vm("template", shares())
        vm.attach_guest({"appliance": True})
        image = vm.snapshot()
        vmm.destroy_vm("template")
        deployed = vmm.deploy_image(image, "prod")
        assert deployed.guest == {"appliance": True}
        assert deployed.state.value == "running"

    def test_deploy_image_with_new_shares(self, vmm):
        vm = vmm.create_vm("template", shares(cpu=0.25))
        image = vm.snapshot()
        vmm.destroy_vm("template")
        deployed = vmm.deploy_image(image, "prod", shares=shares(cpu=0.5))
        assert deployed.shares.cpu == 0.5

    def test_monitor_requires_machines(self):
        with pytest.raises(AllocationError):
            VirtualMachineMonitor([])
