"""Tests for the physical machine model."""

import pytest

from repro.util.errors import AllocationError
from repro.util.units import MIB, PAGE_SIZE
from repro.virt.machine import PhysicalMachine, laboratory_machine


class TestCapacities:
    def test_defaults_valid(self):
        machine = PhysicalMachine()
        assert machine.cpu_units_per_second > 0
        assert machine.memory_mib > 0

    def test_seq_page_read_seconds(self):
        machine = PhysicalMachine(io_seq_mib_per_second=64.0)
        expected = PAGE_SIZE / (64.0 * MIB)
        assert machine.seq_page_read_seconds == pytest.approx(expected)

    def test_random_page_read_seconds(self):
        machine = PhysicalMachine(io_random_ops_per_second=100.0)
        assert machine.random_page_read_seconds == pytest.approx(0.01)

    def test_memory_for_share(self):
        machine = PhysicalMachine(memory_mib=1000.0)
        assert machine.memory_for_share(0.25) == 250.0
        assert machine.memory_for_share(0.0) == 0.0

    def test_memory_for_negative_share_rejected(self):
        with pytest.raises(AllocationError):
            PhysicalMachine().memory_for_share(-0.1)


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("cpu_units_per_second", 0),
        ("memory_mib", -1),
        ("io_seq_mib_per_second", 0),
        ("io_random_ops_per_second", 0),
        ("n_cpus", 0),
    ])
    def test_rejects_non_positive_capacity(self, field, value):
        with pytest.raises(AllocationError):
            PhysicalMachine(**{field: value})


class TestLaboratoryMachine:
    def test_random_much_slower_than_sequential(self):
        machine = laboratory_machine()
        assert machine.random_page_read_seconds > 10 * machine.seq_page_read_seconds

    def test_memory_scaled_down(self):
        # The lab host deliberately shrinks memory so TPC-H at small
        # scale factors creates real cache pressure.
        assert laboratory_machine().memory_mib < 128
