"""Tests for the co-location simulator (capped vs work-conserving)."""

import pytest

from repro.engine.trace import WorkTrace
from repro.util.errors import AllocationError
from repro.virt.colocation import (
    ColocationSimulator,
    StatementDemand,
    TenantTimeline,
    timeline_from_runs,
)
from repro.virt.machine import PhysicalMachine
from repro.virt.resources import ResourceVector


@pytest.fixture
def machine():
    return PhysicalMachine(cpu_units_per_second=1_000_000.0, memory_mib=1024.0)


def cpu_statement(units):
    return StatementDemand(cpu_units=units, io_seconds_at_full_speed=0.0)


def io_statement(seconds):
    return StatementDemand(cpu_units=0.0, io_seconds_at_full_speed=seconds)


def tenant(name, cpu=0.5, io=0.5, statements=()):
    return TenantTimeline(
        name=name,
        shares=ResourceVector.of(cpu=cpu, memory=0.5, io=io),
        statements=list(statements),
    )


class TestCappedMode:
    def test_single_cpu_tenant(self, machine):
        sim = ColocationSimulator(machine, step_seconds=0.001)
        result = sim.run([tenant("a", cpu=0.5,
                                 statements=[cpu_statement(500_000.0)])])
        # 500k units at 50% of 1M units/s = 1 second.
        assert result.completion_seconds["a"] == pytest.approx(1.0, rel=0.02)

    def test_caps_ignore_idle_capacity(self, machine):
        sim = ColocationSimulator(machine, step_seconds=0.001)
        busy = tenant("busy", cpu=0.5, statements=[cpu_statement(500_000.0)])
        idle = tenant("idle", cpu=0.5, statements=[cpu_statement(1_000.0)])
        result = sim.run([busy, idle], work_conserving=False)
        # The idle tenant finishes almost immediately, but 'busy' is
        # still capped at 50%.
        assert result.completion_seconds["busy"] == pytest.approx(1.0, rel=0.02)

    def test_io_phase_after_cpu_phase(self, machine):
        sim = ColocationSimulator(machine, step_seconds=0.001)
        mixed = tenant("m", cpu=0.5, io=0.5, statements=[
            StatementDemand(cpu_units=250_000.0, io_seconds_at_full_speed=0.2),
        ])
        result = sim.run([mixed])
        # 0.5s of CPU at 50% plus 0.2s of I/O at 50% = 0.5 + 0.4.
        assert result.completion_seconds["m"] == pytest.approx(0.9, rel=0.05)

    def test_matches_perf_model_for_lone_tenant(self, machine):
        trace = WorkTrace()
        trace.add_cpu(400_000.0)
        trace.add_seq_read(100)
        timeline = timeline_from_runs(
            "solo", ResourceVector.of(cpu=0.5, memory=0.5, io=0.5),
            [trace], machine,
        )
        sim = ColocationSimulator(machine, step_seconds=0.0005)
        got = sim.run([timeline]).completion_seconds["solo"]
        # Serial CPU+I/O expectation (the perf model's overlap aside).
        expected_cpu = (400_000.0 + 100 * machine.hypervisor_page_overhead_units) \
            / (machine.cpu_units_per_second * 0.5)
        expected_io = 100 * machine.seq_page_read_seconds / 0.5
        assert got == pytest.approx(expected_cpu + expected_io, rel=0.05)


class TestWorkConservingMode:
    def test_idle_capacity_redistributed(self, machine):
        sim = ColocationSimulator(machine, step_seconds=0.001)
        busy = tenant("busy", cpu=0.5, statements=[cpu_statement(500_000.0)])
        idle = tenant("idle", cpu=0.5, statements=[cpu_statement(1_000.0)])
        result = sim.run([busy, idle], work_conserving=True)
        # After 'idle' finishes, 'busy' gets the whole CPU.
        assert result.completion_seconds["busy"] < 0.6

    def test_equal_demand_unchanged_by_mode(self, machine):
        tenants = [
            tenant("a", cpu=0.5, statements=[cpu_statement(300_000.0)]),
            tenant("b", cpu=0.5, statements=[cpu_statement(300_000.0)]),
        ]
        sim = ColocationSimulator(machine, step_seconds=0.001)
        capped = sim.run(tenants, work_conserving=False)
        tenants2 = [
            tenant("a", cpu=0.5, statements=[cpu_statement(300_000.0)]),
            tenant("b", cpu=0.5, statements=[cpu_statement(300_000.0)]),
        ]
        conserving = sim.run(tenants2, work_conserving=True)
        assert capped.completion_seconds["a"] == pytest.approx(
            conserving.completion_seconds["a"], rel=0.05
        )

    def test_disjoint_phases_overlap_fully(self, machine):
        # One tenant is pure CPU, the other pure I/O: work-conserving
        # mode lets each run at full speed concurrently.
        cpu_only = tenant("cpu", cpu=0.5, statements=[cpu_statement(500_000.0)])
        io_only = tenant("io", io=0.5, cpu=0.5,
                         statements=[io_statement(0.5)])
        sim = ColocationSimulator(machine, step_seconds=0.001)
        result = sim.run([cpu_only, io_only], work_conserving=True)
        assert result.completion_seconds["cpu"] == pytest.approx(0.5, rel=0.05)
        assert result.completion_seconds["io"] == pytest.approx(0.5, rel=0.05)

    def test_work_conserving_never_slower(self, machine):
        tenants_a = [
            tenant("a", cpu=0.7, statements=[cpu_statement(400_000.0),
                                             io_statement(0.1)]),
            tenant("b", cpu=0.3, statements=[cpu_statement(100_000.0)]),
        ]
        sim = ColocationSimulator(machine, step_seconds=0.001)
        capped = sim.run(tenants_a, work_conserving=False)
        tenants_b = [
            tenant("a", cpu=0.7, statements=[cpu_statement(400_000.0),
                                             io_statement(0.1)]),
            tenant("b", cpu=0.3, statements=[cpu_statement(100_000.0)]),
        ]
        conserving = sim.run(tenants_b, work_conserving=True)
        for name in ("a", "b"):
            assert conserving.completion_seconds[name] <= \
                capped.completion_seconds[name] + 0.01


class TestValidation:
    def test_empty_rejected(self, machine):
        with pytest.raises(AllocationError):
            ColocationSimulator(machine).run([])

    def test_bad_step_rejected(self, machine):
        with pytest.raises(AllocationError):
            ColocationSimulator(machine, step_seconds=0.0)

    def test_runaway_simulation_bounded(self, machine):
        stuck = tenant("stuck", cpu=0.0,
                       statements=[cpu_statement(1_000_000.0)])
        sim = ColocationSimulator(machine, step_seconds=0.01, max_seconds=0.5)
        with pytest.raises(AllocationError):
            sim.run([stuck], work_conserving=False)

    def test_statement_demand_from_trace(self, machine):
        trace = WorkTrace()
        trace.add_cpu(1000.0)
        trace.add_seq_read(10)
        trace.add_random_read(2)
        demand = StatementDemand.from_trace(trace, machine)
        assert demand.cpu_units > 1000.0  # hypervisor overhead added
        expected_io = 10 * machine.seq_page_read_seconds \
            + 2 * machine.random_page_read_seconds
        assert demand.io_seconds_at_full_speed == pytest.approx(expected_io)
