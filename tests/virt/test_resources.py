"""Tests for resource kinds and share vectors."""

import pytest

from repro.util.errors import AllocationError
from repro.virt.resources import (
    ALL_RESOURCES,
    ResourceKind,
    ResourceVector,
    equal_share,
    total_shares,
)


class TestResourceVector:
    def test_of_constructor(self):
        vec = ResourceVector.of(cpu=0.5, memory=0.25, io=0.75)
        assert vec.cpu == 0.5
        assert vec.memory == 0.25
        assert vec.io == 0.75

    def test_missing_kind_defaults_to_zero(self):
        vec = ResourceVector({ResourceKind.CPU: 0.4})
        assert vec.memory == 0.0
        assert vec.io == 0.0

    def test_full(self):
        vec = ResourceVector.full()
        assert vec.as_tuple() == (1.0, 1.0, 1.0)

    def test_rejects_negative_share(self):
        with pytest.raises(AllocationError):
            ResourceVector.of(cpu=-0.1)

    def test_rejects_over_one(self):
        with pytest.raises(AllocationError):
            ResourceVector.of(memory=1.5)

    def test_accepts_string_kind(self):
        vec = ResourceVector({"cpu": 0.3})
        assert vec.cpu == 0.3

    def test_with_share_returns_new_vector(self):
        vec = ResourceVector.of(cpu=0.5)
        updated = vec.with_share(ResourceKind.CPU, 0.7)
        assert updated.cpu == 0.7
        assert vec.cpu == 0.5  # original unchanged

    def test_scaled_clamps_at_one(self):
        vec = ResourceVector.of(cpu=0.6, memory=0.2)
        scaled = vec.scaled(2.0)
        assert scaled.cpu == 1.0
        assert scaled.memory == pytest.approx(0.4)

    def test_equality_tolerant(self):
        assert ResourceVector.of(cpu=0.1 + 0.2) == ResourceVector.of(cpu=0.3)

    def test_hashable(self):
        assert len({ResourceVector.of(cpu=0.5), ResourceVector.of(cpu=0.5)}) == 1

    def test_as_tuple_canonical_order(self):
        vec = ResourceVector.of(cpu=0.1, memory=0.2, io=0.3)
        assert vec.as_tuple() == (0.1, 0.2, 0.3)


class TestEqualShare:
    def test_splits_evenly(self):
        vec = equal_share(4)
        assert all(vec.share(kind) == 0.25 for kind in ALL_RESOURCES)

    def test_single_vm_gets_everything(self):
        assert equal_share(1) == ResourceVector.full()

    def test_rejects_non_positive(self):
        with pytest.raises(AllocationError):
            equal_share(0)


def test_total_shares_sums():
    total = total_shares([
        ResourceVector.of(cpu=0.25, memory=0.5),
        ResourceVector.of(cpu=0.5, io=0.5),
    ])
    assert total.share(ResourceKind.CPU) == pytest.approx(0.75)
    assert total.share(ResourceKind.MEMORY) == pytest.approx(0.5)
    assert total.share(ResourceKind.IO) == pytest.approx(0.5)
