"""Tests for virtual machines and images."""

import pytest

from repro.util.errors import AdmissionError
from repro.virt.machine import PhysicalMachine
from repro.virt.resources import ResourceVector
from repro.virt.vm import (
    GUEST_OS_MEMORY_FRACTION,
    MIN_GUEST_MEMORY_MIB,
    VirtualMachine,
    VMConfig,
    VMState,
)


@pytest.fixture
def machine():
    return PhysicalMachine(memory_mib=1024.0)


def make_vm(machine, cpu=0.5, memory=0.5, io=0.5, name="vm"):
    shares = ResourceVector.of(cpu=cpu, memory=memory, io=io)
    return VirtualMachine(machine, VMConfig(name=name, shares=shares))


class TestEffectiveResources:
    def test_memory_follows_share(self, machine):
        vm = make_vm(machine, memory=0.25)
        assert vm.memory_mib == pytest.approx(256.0)

    def test_buffer_pool_excludes_os_reserve(self, machine):
        vm = make_vm(machine, memory=0.5)
        expected_mib = 512.0 * (1 - GUEST_OS_MEMORY_FRACTION)
        assert vm.buffer_pool_pages == int(expected_mib * 128)

    def test_cpu_rate_scales(self, machine):
        fast = make_vm(machine, cpu=0.8, name="fast")
        slow = make_vm(machine, cpu=0.2, name="slow")
        assert fast.cpu_rate() > 3 * slow.cpu_rate()

    def test_io_times_scale_inversely_with_share(self, machine):
        vm_half = make_vm(machine, io=0.5)
        vm_full = make_vm(machine, io=1.0, name="full")
        assert vm_half.seq_page_read_seconds() == pytest.approx(
            2 * vm_full.seq_page_read_seconds()
        )
        assert vm_half.random_page_read_seconds() == pytest.approx(
            2 * vm_full.random_page_read_seconds()
        )

    def test_zero_io_share_rejected_on_read(self, machine):
        vm = make_vm(machine, io=0.0)
        with pytest.raises(Exception):
            vm.seq_page_read_seconds()


class TestLifecycle:
    def test_start_run_stop(self, machine):
        vm = make_vm(machine)
        assert vm.state is VMState.CREATED
        vm.start()
        assert vm.state is VMState.RUNNING
        vm.pause()
        assert vm.state is VMState.PAUSED
        vm.resume()
        assert vm.state is VMState.RUNNING
        vm.stop()
        assert vm.state is VMState.STOPPED

    def test_start_requires_minimum_memory(self):
        tiny_machine = PhysicalMachine(memory_mib=MIN_GUEST_MEMORY_MIB * 2)
        vm = make_vm(tiny_machine, memory=0.25)
        with pytest.raises(AdmissionError):
            vm.start()

    def test_pause_requires_running(self, machine):
        vm = make_vm(machine)
        with pytest.raises(AdmissionError):
            vm.pause()

    def test_resume_requires_paused(self, machine):
        vm = make_vm(machine)
        vm.start()
        with pytest.raises(AdmissionError):
            vm.resume()


class TestGuestInteraction:
    class FakeGuest:
        def __init__(self):
            self.memory_pages = None

        def resize_memory(self, pages):
            self.memory_pages = pages

    def test_attach_sizes_guest(self, machine):
        vm = make_vm(machine, memory=0.5)
        guest = self.FakeGuest()
        vm.attach_guest(guest)
        assert guest.memory_pages == vm.buffer_pool_pages

    def test_set_shares_resizes_guest(self, machine):
        vm = make_vm(machine, memory=0.5)
        guest = self.FakeGuest()
        vm.attach_guest(guest)
        vm.set_shares(ResourceVector.of(cpu=0.5, memory=0.25, io=0.5))
        assert guest.memory_pages == vm.buffer_pool_pages
        assert vm.memory_mib == pytest.approx(256.0)


class TestImages:
    def test_snapshot_roundtrip(self, machine):
        vm = make_vm(machine)
        vm.attach_guest({"tables": ["orders"]})
        image = vm.snapshot()
        clone = VirtualMachine.from_image(machine, image, name="clone")
        assert clone.name == "clone"
        assert clone.guest == {"tables": ["orders"]}

    def test_image_instances_independent(self, machine):
        vm = make_vm(machine)
        vm.attach_guest({"count": 0})
        image = vm.snapshot()
        first = VirtualMachine.from_image(machine, image, name="a")
        second = VirtualMachine.from_image(machine, image, name="b")
        first.guest["count"] = 99
        assert second.guest["count"] == 0

    def test_snapshot_after_guest_mutation_is_current(self, machine):
        vm = make_vm(machine)
        vm.attach_guest({"v": 1})
        vm.guest["v"] = 2
        assert vm.snapshot().instantiate_guest() == {"v": 2}
