"""Tests for the watchdog (``repro.virt.health``) and the VM/host
failure model it drives (``VMState.FAILED``, host capacity factors)."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.obs import metrics
from repro.util.errors import AdmissionError, AllocationError
from repro.virt import (
    HealthMonitor,
    PhysicalMachine,
    VirtualMachineMonitor,
    VMState,
)
from repro.virt.resources import ResourceVector


def two_host_vmm():
    return VirtualMachineMonitor([
        PhysicalMachine(name="host-a", memory_mib=64.0),
        PhysicalMachine(name="host-b", memory_mib=64.0),
    ])


def shares(value):
    return ResourceVector.of(cpu=value, memory=value, io=value)


class TestVMFailureModel:
    def test_fail_and_restart_round_trip(self):
        vmm = two_host_vmm()
        vm = vmm.create_vm("tenant", shares(0.5), machine_name="host-a")
        vm.start()
        vmm.mark_failed("tenant", reason="kernel panic")
        assert vm.state == VMState.FAILED
        assert vm.failure_reason == "kernel panic"
        assert not vm.is_alive
        vmm.restart_vm("tenant")
        assert vm.state == VMState.RUNNING
        assert vm.failure_reason is None

    def test_cannot_fail_a_stopped_vm(self):
        vmm = two_host_vmm()
        vm = vmm.create_vm("tenant", shares(0.5))
        vm.start()
        vm.stop()
        with pytest.raises(AdmissionError, match="cannot fail"):
            vm.fail()

    def test_cannot_restart_a_running_vm(self):
        vmm = two_host_vmm()
        vm = vmm.create_vm("tenant", shares(0.5))
        vm.start()
        with pytest.raises(AdmissionError, match="cannot restart"):
            vm.restart()

    def test_restart_restores_guest_from_image(self):
        vmm = two_host_vmm()
        vm = vmm.create_vm("tenant", shares(0.5))
        vm.attach_guest({"rows": [1, 2, 3]})
        vm.start()
        image = vm.snapshot()
        vm.guest["rows"].append(4)  # crash corrupts in-memory state
        vmm.mark_failed("tenant")
        vmm.restart_vm("tenant", image=image)
        assert vm.guest == {"rows": [1, 2, 3]}


class TestHostDegradation:
    def test_degrade_lowers_admission_ceiling(self):
        vmm = two_host_vmm()
        vmm.degrade_host("host-a", 0.5)
        assert vmm.host_capacity_factor("host-a") == pytest.approx(0.5)
        with pytest.raises(AdmissionError, match="oversubscribed"):
            vmm.create_vm("big", shares(0.6), machine_name="host-a")
        vmm.create_vm("small", shares(0.4), machine_name="host-a")

    def test_degradation_is_multiplicative_and_restorable(self):
        vmm = two_host_vmm()
        vmm.degrade_host("host-a", 0.5)
        vmm.degrade_host("host-a", 0.5)
        assert vmm.host_capacity_factor("host-a") == pytest.approx(0.25)
        vmm.restore_host("host-a")
        assert vmm.host_capacity_factor("host-a") == pytest.approx(1.0)

    def test_degrade_factor_validated(self):
        vmm = two_host_vmm()
        with pytest.raises(AllocationError):
            vmm.degrade_host("host-a", 1.5)

    def test_existing_tenants_survive_degradation(self):
        vmm = two_host_vmm()
        vm = vmm.create_vm("tenant", shares(0.8), machine_name="host-a")
        vm.start()
        vmm.degrade_host("host-a", 0.5)
        assert vm.state == VMState.RUNNING


class TestWatchdogRestart:
    def test_probe_restarts_externally_failed_vm(self):
        vmm = two_host_vmm()
        vm = vmm.create_vm("tenant", shares(0.5), machine_name="host-a")
        vm.attach_guest({"state": "good"})
        vm.start()
        health = HealthMonitor(vmm)
        health.register("tenant")
        vm.guest["state"] = "corrupted"
        vmm.mark_failed("tenant")
        actions = health.probe()
        assert [a.action for a in actions] == ["restart"]
        assert vm.state == VMState.RUNNING
        # Restart-in-place restored the registration-time snapshot.
        assert vm.guest == {"state": "good"}

    def test_injected_crash_is_probed_and_restarted(self):
        vmm = two_host_vmm()
        vm = vmm.create_vm("tenant", shares(0.5), machine_name="host-a")
        vm.start()
        injector = FaultInjector(FaultPlan(name="t", vm_crash_rate=1.0))
        health = HealthMonitor(vmm, injector=injector)
        health.register("tenant")
        actions = health.probe()
        assert [(a.event, a.action) for a in actions] == [
            ("vm_crash", "restart")]
        assert vm.state == VMState.RUNNING

    def test_probe_advances_simulated_clock_only(self):
        vmm = two_host_vmm()
        health = HealthMonitor(vmm, probe_interval_seconds=2.5)
        health.probe()
        health.probe()
        assert health.clock_seconds == pytest.approx(5.0)

    def test_recovery_actions_are_counted(self):
        metrics.get_registry().reset()
        vmm = two_host_vmm()
        vm = vmm.create_vm("tenant", shares(0.5))
        vm.start()
        health = HealthMonitor(vmm)
        health.register("tenant")
        vmm.mark_failed("tenant")
        health.probe()
        snapshot = metrics.get_registry().snapshot()
        restart = [entry for entry in snapshot["counters"]
                   if entry["name"] == "resilience.recovery"
                   and entry["labels"].get("action") == "restart"]
        assert restart and restart[0]["value"] == 1.0


class TestWatchdogMigration:
    def test_degraded_host_offloads_to_standby(self):
        vmm = two_host_vmm()
        vm = vmm.create_vm("tenant", shares(0.6), machine_name="host-a")
        vm.start()
        health = HealthMonitor(vmm)
        health.register("tenant")
        vmm.degrade_host("host-a", 0.5)
        actions = health.probe()
        assert [(a.event, a.action) for a in actions] == [
            ("host_degrade", "migrate")]
        assert vmm.vms_on("host-b")[0].name == "tenant"
        assert vmm.vms["tenant"].state == VMState.RUNNING

    def test_smallest_vm_is_migrated_first(self):
        vmm = two_host_vmm()
        for name, share in (("big", 0.5), ("small", 0.3)):
            vmm.create_vm(name, shares(share), machine_name="host-a").start()
        vmm.degrade_host("host-a", 0.6)  # ceiling 0.6 < 0.8 allocated
        health = HealthMonitor(vmm)
        actions = health.probe()
        migrations = [a for a in actions if a.action == "migrate"]
        assert [a.subject for a in migrations] == ["small"]
        assert vmm.vms_on("host-b")[0].name == "small"

    def test_evict_and_requeue_when_no_host_fits(self):
        vmm = two_host_vmm()
        vmm.create_vm("resident", shares(0.6), machine_name="host-b").start()
        vm = vmm.create_vm("tenant", shares(0.6), machine_name="host-a")
        vm.start()
        health = HealthMonitor(vmm)
        health.register("tenant")
        vmm.degrade_host("host-a", 0.5)
        actions = health.probe()
        assert ("host_degrade", "evict") in [
            (a.event, a.action) for a in actions]
        assert "tenant" not in vmm.vms
        assert [name for name, _image in health.requeued] == ["tenant"]

    def test_requeued_vm_is_readmitted_when_capacity_returns(self):
        vmm = two_host_vmm()
        vmm.create_vm("resident", shares(0.6), machine_name="host-b").start()
        vm = vmm.create_vm("tenant", shares(0.6), machine_name="host-a")
        vm.attach_guest({"id": 42})
        vm.start()
        health = HealthMonitor(vmm)
        health.register("tenant")
        vmm.degrade_host("host-a", 0.5)
        health.probe()  # evicts
        vmm.restore_host("host-a")
        actions = health.probe()
        assert [(a.event, a.action) for a in actions] == [
            ("requeue", "readmit")]
        assert health.requeued == []
        readmitted = vmm.vms["tenant"]
        assert readmitted.state == VMState.RUNNING
        assert readmitted.guest == {"id": 42}

    def test_migration_failures_are_retried_deterministically(self):
        plan = FaultPlan(name="t", migration_failure_rate=0.5, seed=7)

        def run():
            vmm = two_host_vmm()
            vmm.create_vm("tenant", shares(0.6),
                          machine_name="host-a").start()
            vmm.degrade_host("host-a", 0.5)
            health = HealthMonitor(vmm, injector=FaultInjector(plan))
            return [(a.event, a.action, a.detail) for a in health.probe()]

        first, second = run(), run()
        assert first == second
        assert any(action == "migrate" or action == "evict"
                   for _e, action, _d in first)


class TestDeterminism:
    def test_equal_plans_give_identical_action_sequences(self):
        plan = FaultPlan(name="t", vm_crash_rate=0.4, host_degrade_rate=0.2,
                        seed=11)

        def run():
            vmm = two_host_vmm()
            for name in ("w1", "w2"):
                vmm.create_vm(name, shares(0.3),
                              machine_name="host-a").start()
            health = HealthMonitor(vmm, injector=FaultInjector(plan))
            for name in ("w1", "w2"):
                health.register(name)
            for _ in range(8):
                health.probe()
            return [a.as_dict() for a in health.actions]

        assert run() == run()

    def test_ops_stream_does_not_perturb_measurement_stream(self):
        plan = FaultPlan(name="t", transient_rate=0.5, vm_crash_rate=0.5)
        quiet = FaultInjector(plan)
        probed = FaultInjector(plan)
        for i in range(20):
            probed.on_vm_probe(f"vm{i}")  # ops draws interleaved

        def stream(injector):
            out = []
            for _ in range(30):
                try:
                    out.append(injector.on_measurement((0.5, 0.5, 0.5), 1.0))
                except Exception:
                    out.append("fault")
            return out

        assert stream(quiet) == stream(probed)
