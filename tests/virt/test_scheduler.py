"""Tests for the credit scheduler model."""

import pytest

from repro.util.errors import AllocationError
from repro.virt.machine import PhysicalMachine
from repro.virt.scheduler import CreditScheduler


@pytest.fixture
def scheduler():
    return CreditScheduler(PhysicalMachine(cpu_units_per_second=1_000_000.0))


class TestEffectiveRate:
    def test_rate_scales_with_share(self, scheduler):
        assert scheduler.effective_rate(0.5) > scheduler.effective_rate(0.25)
        assert scheduler.effective_rate(1.0) > scheduler.effective_rate(0.5)

    def test_zero_share_zero_rate(self, scheduler):
        assert scheduler.effective_rate(0.0) == 0.0

    def test_negative_share_rejected(self, scheduler):
        with pytest.raises(AllocationError):
            scheduler.effective_rate(-0.5)

    def test_rate_below_proportional(self, scheduler):
        # Scheduling overhead means a 50% share yields less than 50% of
        # the machine's raw rate.
        raw = scheduler.machine.cpu_units_per_second
        assert scheduler.effective_rate(0.5) < 0.5 * raw

    def test_overhead_fraction_grows_as_share_shrinks(self, scheduler):
        assert scheduler.overhead_fraction(0.1) > scheduler.overhead_fraction(0.9)

    def test_overhead_fraction_bounded(self, scheduler):
        assert scheduler.overhead_fraction(0.001) <= 0.9
        assert scheduler.overhead_fraction(0.0) == 1.0

    def test_share_clamped_at_one(self, scheduler):
        assert scheduler.effective_rate(1.5) == scheduler.effective_rate(1.0)


class TestCpuSeconds:
    def test_linear_in_work(self, scheduler):
        one = scheduler.cpu_seconds(1000, 0.5)
        two = scheduler.cpu_seconds(2000, 0.5)
        assert two == pytest.approx(2 * one)

    def test_zero_work_is_free(self, scheduler):
        assert scheduler.cpu_seconds(0, 0.5) == 0.0

    def test_zero_share_with_work_rejected(self, scheduler):
        with pytest.raises(AllocationError):
            scheduler.cpu_seconds(1000, 0.0)

    def test_negative_work_rejected(self, scheduler):
        with pytest.raises(AllocationError):
            scheduler.cpu_seconds(-1, 0.5)

    def test_halving_share_roughly_doubles_time(self, scheduler):
        fast = scheduler.cpu_seconds(1_000_000, 0.8)
        slow = scheduler.cpu_seconds(1_000_000, 0.4)
        assert 1.8 < slow / fast < 2.3


class TestSimulate:
    def test_single_vm_finishes(self, scheduler):
        finish = scheduler.simulate({"vm1": 500_000.0}, {"vm1": 1.0})
        expected = scheduler.cpu_seconds(500_000.0, 1.0)
        assert finish["vm1"] == pytest.approx(expected, rel=0.2)

    def test_proportional_sharing(self, scheduler):
        finish = scheduler.simulate(
            {"big": 300_000.0, "small": 300_000.0},
            {"big": 0.75, "small": 0.25},
        )
        assert finish["big"] < finish["small"]

    def test_work_conserving_redistribution(self, scheduler):
        # After the small job finishes, the big job gets the whole
        # machine, so it beats a fixed-share lower bound.
        finish = scheduler.simulate(
            {"big": 1_000_000.0, "small": 10_000.0},
            {"big": 0.5, "small": 0.5},
        )
        fixed_share_time = scheduler.cpu_seconds(1_000_000.0, 0.5)
        assert finish["big"] < fixed_share_time

    def test_zero_demand_finishes_immediately(self, scheduler):
        finish = scheduler.simulate({"idle": 0.0, "busy": 1000.0},
                                    {"idle": 0.5, "busy": 0.5})
        assert finish["idle"] == 0.0

    def test_mismatched_vm_sets_rejected(self, scheduler):
        with pytest.raises(AllocationError):
            scheduler.simulate({"a": 1.0}, {"b": 1.0})

    def test_zero_total_share_rejected(self, scheduler):
        with pytest.raises(AllocationError):
            scheduler.simulate({"a": 1.0}, {"a": 0.0})
