"""Tests for the VM performance model (trace -> simulated seconds)."""

import pytest

from repro.engine.trace import WorkTrace
from repro.util.rng import DeterministicRng
from repro.virt.machine import PhysicalMachine
from repro.virt.perf import VMPerfModel
from repro.virt.resources import ResourceVector
from repro.virt.vm import VirtualMachine, VMConfig


def make_perf(cpu=0.5, memory=0.5, io=0.5, overlap=0.0, **kwargs):
    machine = PhysicalMachine(memory_mib=1024.0)
    vm = VirtualMachine(machine, VMConfig(
        name="vm", shares=ResourceVector.of(cpu=cpu, memory=memory, io=io)
    ))
    return VMPerfModel(vm, readahead_overlap=overlap, **kwargs)


def cpu_trace(units=1_000_000.0):
    trace = WorkTrace()
    trace.add_cpu(units)
    return trace


def io_trace(seq=100, rand=10):
    trace = WorkTrace()
    trace.add_seq_read(seq)
    trace.add_random_read(rand)
    return trace


class TestChannels:
    def test_empty_trace_is_free(self):
        assert make_perf().elapsed(WorkTrace()) == 0.0

    def test_cpu_time_scales_with_share(self):
        trace = cpu_trace()
        slow = make_perf(cpu=0.25).elapsed(trace)
        fast = make_perf(cpu=0.75).elapsed(trace)
        assert slow > 2.5 * fast

    def test_io_time_scales_with_share(self):
        trace = io_trace()
        slow = make_perf(io=0.25).elapsed(trace)
        fast = make_perf(io=0.75).elapsed(trace)
        assert slow > 2.5 * fast

    def test_memory_share_does_not_directly_change_time(self):
        # Memory acts through the buffer pool (fewer misses), never as a
        # direct multiplier on a fixed trace.
        trace = io_trace()
        assert make_perf(memory=0.25).elapsed(trace) == \
            make_perf(memory=0.75).elapsed(trace)

    def test_random_reads_cost_more_than_sequential(self):
        perf = make_perf()
        seq_only = WorkTrace()
        seq_only.add_seq_read(50)
        rand_only = WorkTrace()
        rand_only.add_random_read(50)
        assert perf.elapsed(rand_only) > perf.elapsed(seq_only)

    def test_physical_reads_charge_hypervisor_cpu(self):
        perf = make_perf()
        trace = io_trace(seq=1000, rand=0)
        breakdown = perf.breakdown(trace)
        assert breakdown.cpu_seconds > 0  # hypervisor page handling

    def test_page_writes_cost_io(self):
        perf = make_perf()
        trace = WorkTrace()
        trace.add_page_write(100)
        assert perf.breakdown(trace).write_io_seconds > 0


class TestOverlap:
    def test_overlap_reduces_total(self):
        trace = WorkTrace()
        trace.add_cpu(10_000_000.0)
        trace.add_seq_read(500)
        none = make_perf(overlap=0.0).elapsed(trace)
        half = make_perf(overlap=0.5).elapsed(trace)
        assert half < none

    def test_overlap_bounded_by_smaller_side(self):
        trace = WorkTrace()
        trace.add_cpu(1000.0)  # tiny CPU
        trace.add_seq_read(1000)
        full = make_perf(overlap=1.0)
        breakdown = full.breakdown(trace)
        assert breakdown.overlap_seconds <= breakdown.cpu_seconds + 1e-12

    def test_random_io_never_overlapped(self):
        trace = WorkTrace()
        trace.add_cpu(100_000_000.0)
        trace.add_random_read(100)
        breakdown = make_perf(overlap=1.0).breakdown(trace)
        assert breakdown.overlap_seconds == 0.0

    def test_invalid_overlap_rejected(self):
        with pytest.raises(ValueError):
            make_perf(overlap=1.5)

    def test_total_never_negative(self):
        breakdown = make_perf(overlap=1.0).breakdown(io_trace())
        assert breakdown.total_seconds >= 0.0


class TestNoise:
    def test_noise_perturbs_deterministically(self):
        trace = cpu_trace()
        a = make_perf(noise_rng=DeterministicRng(4), noise_sigma=0.05)
        b = make_perf(noise_rng=DeterministicRng(4), noise_sigma=0.05)
        assert a.elapsed(trace) == b.elapsed(trace)

    def test_noise_stays_near_truth(self):
        trace = cpu_trace()
        clean = make_perf().elapsed(trace)
        noisy = make_perf(noise_rng=DeterministicRng(4), noise_sigma=0.05)
        values = [noisy.elapsed(trace) for _ in range(50)]
        mean = sum(values) / len(values)
        assert abs(mean - clean) / clean < 0.1

    def test_zero_sigma_is_exact(self):
        trace = cpu_trace()
        clean = make_perf().elapsed(trace)
        nosigma = make_perf(noise_rng=DeterministicRng(4), noise_sigma=0.0)
        assert nosigma.elapsed(trace) == clean


class TestBreakdownConsistency:
    def test_breakdown_sums_to_total(self):
        perf = make_perf(overlap=0.3)
        trace = WorkTrace()
        trace.add_cpu(5_000_000.0)
        trace.add_seq_read(200)
        trace.add_random_read(20)
        trace.add_page_write(10)
        b = perf.breakdown(trace)
        expected = b.cpu_seconds + b.io_seconds - b.overlap_seconds
        assert b.total_seconds == pytest.approx(expected)
        assert perf.elapsed(trace) == pytest.approx(expected)
