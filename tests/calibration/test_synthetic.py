"""Tests for the calibration workbench."""

import pytest

from repro.calibration.synthetic import (
    HUGE_TABLE,
    SCAN_TABLES,
    SMALL_TABLE,
    CalibrationWorkbench,
)
from repro.engine.plans import Aggregate, IndexScan, SeqScan, walk


@pytest.fixture(scope="module")
def workbench():
    return CalibrationWorkbench(rows={
        SMALL_TABLE: 200,
        "cal_scan_a": 1000,
        "cal_scan_b": 2000,
        "cal_scan_c": 3000,
        HUGE_TABLE: 4000,
    })


@pytest.fixture(scope="module")
def db(workbench):
    return workbench.build_database()


class TestDatabase:
    def test_all_tables_present(self, db):
        expected = {SMALL_TABLE, HUGE_TABLE, *SCAN_TABLES}
        assert set(db.catalog.table_names()) == expected

    def test_row_counts_honoured(self, db, workbench):
        for table, n_rows in workbench.rows.items():
            assert db.catalog.table(table).heap.n_rows == n_rows

    def test_b_column_is_permutation(self, db):
        info = db.catalog.table(SMALL_TABLE)
        b_values = sorted(row[1] for _rid, row in info.heap.scan_rids())
        assert b_values == list(range(info.heap.n_rows))

    def test_indexes_built(self, db):
        assert db.catalog.index_on_column(HUGE_TABLE, "b") is not None
        assert db.catalog.index_on_column(SMALL_TABLE, "b") is not None

    def test_statistics_ready(self, db):
        stats = db.catalog.stats(HUGE_TABLE)
        assert stats.column("a").n_distinct == 4000

    def test_deterministic(self, workbench):
        other = CalibrationWorkbench(rows=dict(workbench.rows)).build_database()
        mine = workbench.build_database()
        a = list(mine.catalog.table(SMALL_TABLE).heap.scan_rids())
        b = list(other.catalog.table(SMALL_TABLE).heap.scan_rids())
        assert [row for _r, row in a] == [row for _r, row in b]


class TestDesignedQueries:
    def test_always_true_predicate_is_always_true(self, workbench, db):
        predicate = workbench.always_true_predicate(4, SMALL_TABLE)
        plan = workbench.plan_small_pred(db)
        result = db.run_plan(plan)
        assert result.rows[0][0] == workbench.rows[SMALL_TABLE]

    def test_like_never_matches(self, workbench, db):
        result = db.run_plan(workbench.plan_small_like(db))
        assert result.rows[0][0] == 0
        assert result.trace.like_bytes > 0

    def test_index_plan_has_intended_shape(self, workbench, db):
        plan = workbench.plan_huge_index(db)
        kinds = [type(node) for node in walk(plan)]
        assert Aggregate in kinds and IndexScan in kinds
        assert SeqScan not in kinds

    def test_ladder_scans_cover_all_sizes(self, workbench):
        assert workbench.scan_ladder() == list(SCAN_TABLES) + [HUGE_TABLE]

    def test_suite_names_unique(self, workbench):
        names = [q.name for q in workbench.suite()]
        assert len(names) == len(set(names))

    def test_suite_queries_executable(self, workbench, db):
        for query in workbench.suite():
            result = db.run_plan(query.build_plan(db))
            assert len(result.rows) == 1  # all are count(*) aggregates
