"""Tests for the calibration cache and interpolation."""

import pytest

from repro.calibration import CalibrationCache
from repro.virt.resources import ResourceVector


def alloc(cpu=0.5, memory=0.5, io=0.5):
    return ResourceVector.of(cpu=cpu, memory=memory, io=io)


class _CountingRunner:
    """Wraps a real runner, counting actual calibrations."""

    def __init__(self, real):
        self._real = real
        self.calls = 0

    def parameters_for(self, allocation):
        self.calls += 1
        return self._real.parameters_for(allocation)


@pytest.fixture
def counting(calibration_runner):
    return _CountingRunner(calibration_runner)


class TestMemoization:
    def test_second_lookup_is_free(self, counting):
        cache = CalibrationCache(counting)
        cache.params_for(alloc())
        cache.params_for(alloc())
        assert counting.calls == 1
        assert cache.n_calibrations == 1

    def test_distinct_allocations_calibrate_separately(self, counting):
        cache = CalibrationCache(counting)
        cache.params_for(alloc(cpu=0.25))
        cache.params_for(alloc(cpu=0.75))
        assert counting.calls == 2

    def test_calibrate_grid_counts(self, counting):
        cache = CalibrationCache(counting)
        n = cache.calibrate_grid([0.25, 0.75], [0.5], [0.5])
        assert n == 2
        assert counting.calls == 2
        assert len(cache.calibrated_points) == 2


class TestPersistence:
    def test_save_load_roundtrip(self, counting, tmp_path):
        cache = CalibrationCache(counting)
        original = cache.params_for(alloc())
        path = tmp_path / "calibration.json"
        assert cache.save(path) == 1

        fresh = CalibrationCache(counting)
        assert fresh.load(path) == 1
        calls_before = counting.calls
        restored = fresh.params_for(alloc())
        assert counting.calls == calls_before  # served from the file
        assert restored == original

    def test_load_merges_without_overwriting(self, counting, tmp_path):
        cache = CalibrationCache(counting)
        cache.params_for(alloc(cpu=0.25))
        path = tmp_path / "c.json"
        cache.save(path)
        cache.params_for(alloc(cpu=0.75))
        assert cache.load(path) == 0  # already present
        assert cache.n_calibrations == 2

    def test_load_rejects_unknown_format(self, counting, tmp_path):
        import json

        from repro.util.errors import CalibrationError

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other", "points": []}))
        with pytest.raises(CalibrationError):
            CalibrationCache(counting).load(path)

    def test_saved_parameters_validate(self, counting, tmp_path):
        cache = CalibrationCache(counting)
        cache.calibrate_grid([0.25, 0.75], [0.5], [0.5])
        path = tmp_path / "grid.json"
        cache.save(path)
        fresh = CalibrationCache(counting)
        fresh.load(path)
        for point in fresh.calibrated_points:
            fresh.params_for(alloc(*point)).validate()


class TestInterpolation:
    @pytest.fixture
    def grid_cache(self, counting):
        cache = CalibrationCache(counting, interpolate=True)
        cache.calibrate_grid([0.25, 0.75], [0.25, 0.75], [0.5])
        return cache

    def test_interpolates_between_corners(self, grid_cache, counting):
        calls_before = counting.calls
        params = grid_cache.params_for(alloc(cpu=0.5, memory=0.5))
        assert counting.calls == calls_before  # no new calibration
        params.validate()

    def test_interpolated_value_between_corners(self, grid_cache):
        low = grid_cache.params_for(alloc(cpu=0.25, memory=0.25))
        high = grid_cache.params_for(alloc(cpu=0.75, memory=0.25))
        mid = grid_cache.params_for(alloc(cpu=0.5, memory=0.25))
        lo, hi = sorted((low.cpu_tuple_cost, high.cpu_tuple_cost))
        assert lo <= mid.cpu_tuple_cost <= hi

    def test_grid_point_returned_exactly(self, grid_cache):
        direct = grid_cache.params_for(alloc(cpu=0.25, memory=0.25))
        again = grid_cache.params_for(alloc(cpu=0.25, memory=0.25))
        assert direct == again

    def test_outside_grid_falls_back_to_calibration(self, grid_cache, counting):
        calls_before = counting.calls
        grid_cache.params_for(alloc(cpu=0.9, memory=0.25))  # beyond the hull
        assert counting.calls == calls_before + 1

    def test_exact_flag_forces_calibration(self, grid_cache, counting):
        calls_before = counting.calls
        grid_cache.params_for(alloc(cpu=0.5, memory=0.5), exact=True)
        assert counting.calls == calls_before + 1

    def test_no_interpolation_without_flag(self, counting):
        cache = CalibrationCache(counting, interpolate=False)
        cache.calibrate_grid([0.25, 0.75], [0.5], [0.5])
        calls_before = counting.calls
        cache.params_for(alloc(cpu=0.5))
        assert counting.calls == calls_before + 1
