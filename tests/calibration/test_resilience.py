"""Resilience tests: the calibration pipeline under injected faults.

Covers the contract ``docs/robustness.md`` documents — transient faults
are retried away without changing results, injected outliers are
rejected by MAD filtering, and permanent failures degrade through the
fallback chain (nearest calibrated point, then defaults) instead of
raising.
"""

import pytest

from repro.calibration import CalibrationCache, CalibrationRunner
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.obs import metrics
from repro.util.errors import CalibrationError
from repro.virt.resources import ResourceVector

pytestmark = pytest.mark.chaos


def alloc(cpu=0.5, memory=0.5, io=0.5):
    return ResourceVector.of(cpu=cpu, memory=memory, io=io)


class TestRetryConvergence:
    def test_fail_first_n_converges_to_fault_free_report(self, lab_machine,
                                                         calibration_runner):
        faulty = CalibrationRunner(
            lab_machine,
            injector=FaultInjector(FaultPlan(name="t", fail_first_n=2)),
        )
        clean_report = calibration_runner.calibrate(alloc())
        faulty_report = faulty.calibrate(alloc())

        # Retries absorbed the failures: same measurements, same solution.
        assert len(faulty_report.measurements) == len(clean_report.measurements)
        for ours, theirs in zip(faulty_report.measurements,
                                clean_report.measurements):
            assert ours.query_name == theirs.query_name
            assert ours.measured_seconds == pytest.approx(
                theirs.measured_seconds)
        clean = clean_report.parameters.as_dict()
        for name, value in faulty_report.parameters.as_dict().items():
            assert value == pytest.approx(clean[name])

    def test_retries_counted_and_backoff_simulated(self, lab_machine):
        before = metrics.get_registry().total("resilience.retries")
        runner = CalibrationRunner(
            lab_machine,
            injector=FaultInjector(FaultPlan(name="t", fail_first_n=2)),
        )
        runner.calibrate(alloc())
        after = metrics.get_registry().total("resilience.retries")
        assert after - before == 2
        assert runner.backoff_seconds_total > 0

    def test_exhausted_retries_become_permanent_error(self, lab_machine):
        runner = CalibrationRunner(
            lab_machine,
            injector=FaultInjector(FaultPlan(name="t", transient_rate=1.0)),
            retry_policy=RetryPolicy(max_attempts=2),
        )
        with pytest.raises(CalibrationError) as excinfo:
            runner.calibrate(alloc())
        assert "after 2 attempt(s)" in str(excinfo.value)
        assert excinfo.value.__cause__ is not None  # transient cause chained


class TestOutlierRejection:
    def test_mad_rejects_injected_outliers(self, lab_machine,
                                           calibration_runner):
        before = metrics.get_registry().total("resilience.outliers_rejected")
        noisy = CalibrationRunner(
            lab_machine,
            injector=FaultInjector(FaultPlan(
                name="t", outlier_rate=0.1, outlier_magnitude=20.0)),
            retry_policy=RetryPolicy(trials=5),
        )
        report = noisy.calibrate(alloc())
        after = metrics.get_registry().total("resilience.outliers_rejected")
        assert after > before  # some trials were rejected

        # The surviving medians match the fault-free measurements.
        clean = calibration_runner.calibrate(alloc())
        for ours, theirs in zip(report.measurements, clean.measurements):
            assert ours.measured_seconds == pytest.approx(
                theirs.measured_seconds, rel=0.01)

    def test_hangs_converted_to_timeouts_and_retried(self, lab_machine,
                                                     calibration_runner):
        hanging = CalibrationRunner(
            lab_machine,
            injector=FaultInjector(FaultPlan(
                name="t", hang_rate=0.1, hang_seconds=600.0)),
            retry_policy=RetryPolicy(max_attempts=6,
                                     measurement_deadline_seconds=120.0),
        )
        report = hanging.calibrate(alloc())
        clean = calibration_runner.calibrate(alloc())
        for ours, theirs in zip(report.measurements, clean.measurements):
            # No 600-second hang ever leaks into a design row.
            assert ours.measured_seconds == pytest.approx(
                theirs.measured_seconds, rel=0.01)


class _FailingRunner:
    """Duck-typed runner whose experiments always die permanently."""

    def __init__(self):
        self.calls = 0

    def parameters_for(self, allocation):
        self.calls += 1
        raise CalibrationError("experiment died")


class TestFallbackChain:
    def test_dead_allocation_degrades_to_nearest(self, lab_machine):
        plan = FaultPlan(name="t", dead_allocations=((0.5, 0.5, 0.5),))
        runner = CalibrationRunner(
            lab_machine, injector=FaultInjector(plan),
            retry_policy=RetryPolicy(max_attempts=2),
        )
        cache = CalibrationCache(runner)
        good = cache.params_for(alloc(cpu=0.25))

        degraded = cache.params_for(alloc())  # the dead point: no raise
        assert degraded is good  # nearest calibrated point stood in
        assert len(cache.fallback_log) == 1
        event = cache.fallback_log[0]
        assert event.kind == "nearest"
        assert event.source == (0.25, 0.5, 0.5)
        assert event.allocation == (0.5, 0.5, 0.5)

    def test_empty_cache_degrades_to_defaults(self):
        from repro.optimizer.params import OptimizerParameters

        failing = _FailingRunner()
        cache = CalibrationCache(failing, max_experiment_attempts=2)
        params = cache.params_for(alloc())
        assert params == OptimizerParameters.defaults()
        assert failing.calls == 2  # the experiment retry ran first
        assert cache.fallback_log[0].kind == "default"

    def test_fallback_order_nearest_before_default(self, calibration_runner):
        # One good point, everything else permanently failing: the
        # chain must land on "nearest", never "default".
        class _SelectiveRunner:
            def parameters_for(self, allocation):
                if allocation.cpu == 0.75:
                    return calibration_runner.parameters_for(allocation)
                raise CalibrationError("dead")

        cache = CalibrationCache(_SelectiveRunner(), max_experiment_attempts=1)
        cache.params_for(alloc(cpu=0.75))
        cache.params_for(alloc(cpu=0.25))
        assert [e.kind for e in cache.fallback_log] == ["nearest"]

    def test_degraded_answer_is_remembered_not_reattempted(self):
        failing = _FailingRunner()
        cache = CalibrationCache(failing, max_experiment_attempts=1)
        cache.params_for(alloc())
        calls_after_first = failing.calls
        cache.params_for(alloc())  # second probe: no new experiment
        assert failing.calls == calls_after_first
        assert len(cache.fallback_log) == 1

    def test_fallbacks_never_persisted(self, tmp_path):
        failing = _FailingRunner()
        cache = CalibrationCache(failing, max_experiment_attempts=1)
        cache.params_for(alloc())
        assert cache.n_calibrations == 0
        assert cache.save(tmp_path / "cal.json") == 0

    def test_fallbacks_counted(self):
        before = metrics.get_registry().total("resilience.fallbacks")
        cache = CalibrationCache(_FailingRunner(), max_experiment_attempts=1)
        cache.params_for(alloc())
        after = metrics.get_registry().total("resilience.fallbacks")
        assert after - before == 1

    def test_rescued_retry_counts_as_fallback_tier(self):
        # A whole-experiment retry that succeeds is the chain's first
        # tier: it must count on resilience.fallbacks{kind=retry} and
        # log an event, while the answer stays a real calibration.
        from repro.optimizer.params import OptimizerParameters

        class _FlakyOnceRunner:
            def __init__(self):
                self.calls = 0

            def parameters_for(self, allocation):
                self.calls += 1
                if self.calls == 1:
                    raise CalibrationError("died once")
                return OptimizerParameters.defaults()

        registry = metrics.get_registry()
        before = registry.total("resilience.fallbacks")
        cache = CalibrationCache(_FlakyOnceRunner(),
                                 max_experiment_attempts=2)
        cache.params_for(alloc())
        assert registry.total("resilience.fallbacks") - before == 1
        assert [e.kind for e in cache.fallback_log] == ["retry"]
        assert "attempt 2" in cache.fallback_log[0].reason
        # The rescued point is calibrated, not degraded: it persists
        # and interpolates like any other.
        assert cache.n_calibrations == 1

    def test_clean_experiment_logs_no_fallback(self, calibration_runner):
        cache = CalibrationCache(calibration_runner)
        cache.params_for(alloc())
        assert cache.fallback_log == []
