"""Tests for the least-squares calibration solver."""

import pytest

from repro.calibration.solver import CATEGORIES, solve_parameters
from repro.util.errors import CalibrationError, IllConditionedError

#: A plausible ground-truth parameter vector (seconds per unit).
TRUTH = {
    "seq_pages": 2e-4,
    "rand_pages": 8e-3,
    "tuples": 2e-6,
    "index_tuples": 1e-6,
    "ops": 5e-8,
    "like_bytes": 2e-8,
}


def synth_rows():
    """Well-conditioned synthetic measurements from TRUTH."""
    rows = [
        [1000, 0, 90_000, 0, 0, 0],
        [1000, 0, 90_000, 0, 450_000, 0],
        [1000, 0, 90_000, 0, 90_000, 4_000_000],
        [0, 500, 5_000, 5_000, 0, 0],
        # A warm index scan: mostly cached, so few random pages per
        # index tuple — this breaks the rand/index-tuple collinearity.
        [0, 50, 5_000, 5_000, 0, 0],
        [20, 0, 2_000, 0, 8_000, 0],
        [20, 0, 2_000, 0, 2_000, 90_000],
        [500, 200, 40_000, 2_000, 100_000, 0],
    ]
    times = [
        sum(row[i] * TRUTH[c] for i, c in enumerate(CATEGORIES))
        for row in rows
    ]
    return rows, times


class TestRecovery:
    def test_exact_system_recovers_truth(self):
        rows, times = synth_rows()
        solution = solve_parameters(rows, times)
        for category in ("seq_pages", "tuples", "ops", "like_bytes"):
            assert solution.unit_seconds[category] == pytest.approx(
                TRUTH[category], rel=0.15
            )

    def test_residual_small_on_exact_system(self):
        rows, times = synth_rows()
        solution = solve_parameters(rows, times)
        scale = max(times)
        assert solution.residual_rms < 0.05 * scale

    def test_noise_tolerated(self):
        rows, times = synth_rows()
        noisy = [t * (1.02 if i % 2 else 0.98) for i, t in enumerate(times)]
        solution = solve_parameters(rows, noisy)
        # ±2% alternating noise amplifies through the nearly collinear
        # page columns; 30% parameter error is the realistic envelope.
        assert solution.unit_seconds["seq_pages"] == pytest.approx(
            TRUTH["seq_pages"], rel=0.3
        )

    def test_parameters_never_negative(self):
        rows, times = synth_rows()
        # Adversarial: zero out one time to push lstsq negative.
        times[3] = 0.0
        solution = solve_parameters(rows, times)
        assert all(v > 0 for v in solution.unit_seconds.values())


class TestConversionToParameters:
    def test_ratios_normalized_by_seq_page(self):
        rows, times = synth_rows()
        solution = solve_parameters(rows, times)
        params = solution.to_parameters(effective_cache_size=1000,
                                        sort_mem_pages=128)
        assert params.seq_page_cost == 1.0
        assert params.cpu_tuple_cost == pytest.approx(
            solution.unit_seconds["tuples"] / solution.unit_seconds["seq_pages"]
        )
        assert params.seconds_per_seq_page == solution.unit_seconds["seq_pages"]
        assert params.effective_cache_size == 1000

    def test_random_page_ratio(self):
        rows, times = synth_rows()
        params = solve_parameters(rows, times).to_parameters(1000, 128)
        assert params.random_page_cost == pytest.approx(
            TRUTH["rand_pages"] / TRUTH["seq_pages"], rel=0.3
        )


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(CalibrationError):
            solve_parameters([[1, 0, 0, 0, 0, 0]], [1.0, 2.0])

    def test_too_few_measurements(self):
        with pytest.raises(CalibrationError):
            solve_parameters([[1, 0, 0, 0, 0, 0]] * 3, [1.0] * 3)

    def test_wrong_column_count(self):
        with pytest.raises(CalibrationError):
            solve_parameters([[1, 2]] * 8, [1.0] * 8)

    def test_negative_time_rejected(self):
        rows, times = synth_rows()
        times[0] = -1.0
        with pytest.raises(CalibrationError):
            solve_parameters(rows, times)

    def test_no_sequential_pages_rejected(self):
        rows = [[0, 1, 1, 1, 1, 1]] * 8
        with pytest.raises(CalibrationError):
            solve_parameters(rows, [1.0] * 8)


class TestConditioningDiagnostics:
    def test_well_conditioned_solution_reports_diagnostics(self):
        rows, times = synth_rows()
        solution = solve_parameters(rows, times)
        assert solution.rank == len(CATEGORIES)
        assert 1.0 <= solution.condition_number < 1e10

    def test_collinear_columns_raise_naming_categories(self):
        rows, _times = synth_rows()
        # Make operator work perfectly collinear with tuple work: the
        # two can no longer be separately identified.
        for row in rows:
            row[4] = 2 * row[2]
        times = [
            sum(row[i] * TRUTH[c] for i, c in enumerate(CATEGORIES))
            for row in rows
        ]
        names = [f"q{i}" for i in range(len(rows))]
        with pytest.raises(IllConditionedError) as excinfo:
            solve_parameters(rows, times, query_names=names)
        error = excinfo.value
        assert "tuples" in str(error) and "ops" in str(error)
        assert "q0" in error.query_names
        assert error.row_indices  # the offending rows are identified
        assert isinstance(error, CalibrationError)  # permanent by contract

    def test_zero_column_raises_rank_deficiency(self):
        rows, _times = synth_rows()
        for row in rows:
            row[1] = 0  # no query ever touches random pages
        times = [
            sum(row[i] * TRUTH[c] for i, c in enumerate(CATEGORIES))
            for row in rows
        ]
        with pytest.raises(IllConditionedError) as excinfo:
            solve_parameters(rows, times)
        assert "rand_pages" in str(excinfo.value)

    def test_condition_ceiling_enforced(self):
        rows, times = synth_rows()
        with pytest.raises(IllConditionedError) as excinfo:
            solve_parameters(rows, times, max_condition=1.0)
        assert excinfo.value.condition_number > 1.0

    def test_corrupted_row_flagged_by_residual_check(self):
        rows, times = synth_rows()
        times[3] *= 10  # one measurement survived filtering corrupted
        names = [f"q{i}" for i in range(len(rows))]
        with pytest.raises(IllConditionedError) as excinfo:
            solve_parameters(rows, times, query_names=names,
                             max_relative_residual=0.5)
        assert "q3" in excinfo.value.query_names

    def test_residual_check_passes_clean_data(self):
        rows, times = synth_rows()
        solution = solve_parameters(rows, times, max_relative_residual=0.5)
        assert solution.residual_rms < 0.05 * max(times)
