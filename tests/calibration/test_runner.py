"""Tests for the calibration runner (both protocols).

These run real (simulated) calibrations on the laboratory machine, so
they are the slowest unit tests in the suite; the session-scoped runner
amortizes the synthetic database build.
"""

import pytest

from repro.calibration import CalibrationRunner
from repro.util.errors import CalibrationError
from repro.virt.resources import ResourceVector


def alloc(cpu=0.5, memory=0.5, io=0.5):
    return ResourceVector.of(cpu=cpu, memory=memory, io=io)


@pytest.fixture(scope="module")
def mid_report(calibration_runner):
    return calibration_runner.calibrate(alloc())


class TestSequentialProtocol:
    def test_produces_valid_parameters(self, mid_report):
        params = mid_report.parameters
        params.validate()
        assert params.seq_page_cost == 1.0
        assert params.seconds_per_seq_page > 0

    def test_measurements_recorded(self, mid_report):
        names = {m.query_name.split("#")[0] for m in mid_report.measurements}
        assert "small_count" in names
        assert "huge_index" in names
        assert any(name.startswith("scan_") for name in names)

    def test_design_rows_match_category_count(self, mid_report):
        assert all(len(m.design_row) == 6 for m in mid_report.measurements)

    def test_cpu_share_changes_cpu_parameters(self, calibration_runner):
        low = calibration_runner.parameters_for(alloc(cpu=0.25))
        high = calibration_runner.parameters_for(alloc(cpu=0.75))
        # Less CPU -> each tuple costs more relative to a page fetch.
        assert low.cpu_tuple_cost > high.cpu_tuple_cost
        assert low.cpu_operator_cost > high.cpu_operator_cost

    def test_memory_share_changes_seq_page_time(self, calibration_runner):
        low = calibration_runner.parameters_for(alloc(memory=0.25))
        high = calibration_runner.parameters_for(alloc(memory=0.75))
        # More memory -> more of the scan ladder cached -> faster pages.
        assert high.seconds_per_seq_page < low.seconds_per_seq_page
        # ... which makes CPU work relatively more expensive.
        assert high.cpu_tuple_cost > low.cpu_tuple_cost

    def test_io_share_changes_page_times(self, calibration_runner):
        low = calibration_runner.parameters_for(alloc(io=0.25))
        high = calibration_runner.parameters_for(alloc(io=0.75))
        assert high.seconds_per_seq_page < low.seconds_per_seq_page

    def test_effective_cache_size_tracks_memory(self, calibration_runner):
        low = calibration_runner.parameters_for(alloc(memory=0.25))
        high = calibration_runner.parameters_for(alloc(memory=0.75))
        assert high.effective_cache_size > low.effective_cache_size

    def test_random_page_cost_above_sequential(self, mid_report):
        assert mid_report.parameters.random_page_cost >= 1.0

    def test_deterministic(self, calibration_runner):
        a = calibration_runner.parameters_for(alloc())
        b = calibration_runner.parameters_for(alloc())
        assert a == b


class TestLstsqProtocol:
    def test_lstsq_runs_and_validates(self, lab_machine):
        runner = CalibrationRunner(lab_machine, method="lstsq")
        report = runner.calibrate(alloc())
        report.parameters.validate()
        assert report.method == "lstsq"

    def test_unknown_method_rejected(self, lab_machine):
        with pytest.raises(CalibrationError):
            CalibrationRunner(lab_machine, method="magic")
