"""Batched calibration trials are bit-identical across worker counts.

A :class:`CalibrationRunner` with an engine attached runs each
repetition's trials as one batch of hermetic tasks (per-trial forked
fault and noise streams). These tests pin the contract: under a seeded
fault plan *and* measurement noise, a 4-worker run produces the same
measurements, the same solved parameters, the same retry/backoff
accounting, and the same fault metrics as a 1-worker run — for both
pool kinds.
"""

import pytest

from repro import obs
from repro.calibration.runner import CalibrationRunner
from repro.calibration.synthetic import (
    HUGE_TABLE,
    SMALL_TABLE,
    CalibrationWorkbench,
)
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.parallel import EvaluationEngine
from repro.virt.machine import laboratory_machine
from repro.virt.resources import ResourceVector

ALLOCATION = ResourceVector.of(cpu=0.5, memory=0.5, io=0.5)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


def tiny_workbench() -> CalibrationWorkbench:
    return CalibrationWorkbench(rows={
        SMALL_TABLE: 200,
        "cal_scan_a": 1_000,
        "cal_scan_b": 2_000,
        "cal_scan_c": 3_000,
        HUGE_TABLE: 4_000,
    })


def run_calibration(workers, pool="thread", plan_name="turbulent"):
    engine = EvaluationEngine(workers=workers, pool=pool)
    runner = CalibrationRunner(
        laboratory_machine(), workbench=tiny_workbench(),
        noise_sigma=0.05, seed=99,
        injector=FaultInjector(FaultPlan.named(plan_name)),
        retry_policy=RetryPolicy.resilient(),
        engine=engine,
    )
    try:
        report = runner.calibrate(ALLOCATION)
    finally:
        engine.close()
    return report, runner


def report_data(report):
    return {
        "measurements": [
            (m.query_name, m.design_row, m.measured_seconds)
            for m in report.measurements
        ],
        "unit_seconds": report.solution.unit_seconds,
        "parameters": report.parameters.as_dict(),
    }


def fault_metrics():
    registry = obs.get_registry()
    snapshot = registry.snapshot()
    injected = {
        entry["labels"]["kind"]: entry["value"]
        for entry in snapshot["counters"]
        if entry["name"] == "faults.injected"
    }
    return {
        "injected": injected,
        "retries": registry.total("resilience.retries"),
        "rejected": registry.total("resilience.outliers_rejected"),
        "backoff": registry.value("sim.seconds", source="backoff"),
    }


class TestBitIdentity:
    @pytest.mark.parametrize("pool", ["thread", "process"])
    def test_four_workers_match_one(self, pool):
        baseline, base_runner = run_calibration(workers=1)
        base_metrics = fault_metrics()
        obs.reset()
        report, runner = run_calibration(workers=4, pool=pool)
        assert report_data(report) == report_data(baseline)
        assert runner.backoff_seconds_total == base_runner.backoff_seconds_total
        # Injected-fault counts and retry accounting are part of the
        # contract too: the coordinator applies the workers' buffered
        # side effects serially, so the metrics agree exactly.
        assert fault_metrics() == base_metrics

    def test_benign_plan_matches_too(self):
        baseline, _ = run_calibration(workers=1, plan_name="none")
        obs.reset()
        report, runner = run_calibration(workers=4, plan_name="none")
        assert report_data(report) == report_data(baseline)
        assert runner.backoff_seconds_total == 0.0


class TestTrialHermeticity:
    def test_forked_trial_streams_are_label_deterministic(self):
        # The same run twice: identical everything, which only holds if
        # each trial's fault/noise streams derive from its label alone
        # (a worker-order dependence would make reruns diverge under
        # thread scheduling).
        first, _ = run_calibration(workers=4)
        obs.reset()
        second, _ = run_calibration(workers=4)
        assert report_data(first) == report_data(second)

    def test_engineless_runner_unchanged(self):
        # No engine: the original sequential-stream path. It is NOT
        # expected to equal the batched path (different stream layout);
        # it must simply keep working and stay self-consistent.
        runner = CalibrationRunner(
            laboratory_machine(), workbench=tiny_workbench(),
            injector=FaultInjector(FaultPlan.named("turbulent")),
            retry_policy=RetryPolicy.resilient(),
        )
        report = runner.calibrate(ALLOCATION)
        assert report.parameters is not None
        assert len(report.measurements) > 0
