"""Unit tests for the evaluation engine itself.

The engine's one promise is the determinism contract: ``map(fn, items)``
returns results in item order, and failures surface as the earliest
failing item's exception — for every pool kind and worker count.
"""

import os

import pytest

from repro import obs
from repro.parallel import POOL_KINDS, EvaluationEngine, make_engine
from repro.util.errors import AllocationError


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


def square(x):
    return x * x


def fail_on_multiples_of_three(x):
    if x % 3 == 0 and x > 0:
        raise ValueError(f"boom at {x}")
    return x


def count_and_square(x):
    obs.get_registry().counter("test.work_done", parity=str(x % 2)).inc()
    return x * x


class TestOrdering:
    @pytest.mark.parametrize("pool", POOL_KINDS)
    @pytest.mark.parametrize("workers", [1, 2, 4, 7])
    def test_results_in_item_order(self, pool, workers):
        items = list(range(23))
        with EvaluationEngine(workers=workers, pool=pool) as engine:
            assert engine.map(square, items) == [i * i for i in items]

    @pytest.mark.parametrize("pool", POOL_KINDS)
    def test_empty_batch(self, pool):
        with EvaluationEngine(workers=4, pool=pool) as engine:
            assert engine.map(square, []) == []

    @pytest.mark.parametrize("pool", POOL_KINDS)
    def test_single_item(self, pool):
        with EvaluationEngine(workers=4, pool=pool) as engine:
            assert engine.map(square, [7]) == [49]

    def test_closures_cross_the_process_boundary(self):
        # The fork pool ships the callable by copy-on-write, so even a
        # closure over local state works (nothing is pickled outbound).
        offset = 100
        with EvaluationEngine(workers=4, pool="process") as engine:
            assert engine.map(lambda x: x + offset, [1, 2, 3]) == [101, 102, 103]


class TestErrors:
    @pytest.mark.parametrize("pool", POOL_KINDS)
    def test_earliest_failing_item_wins(self, pool):
        # Items 3, 6, 9, ... all raise; every pool must report item 3's
        # exception so parallel runs fail the same way serial runs do.
        with EvaluationEngine(workers=4, pool=pool) as engine:
            with pytest.raises(ValueError, match="boom at 3"):
                engine.map(fail_on_multiples_of_three, list(range(11)))


class TestValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(AllocationError, match="at least 1"):
            EvaluationEngine(workers=0)

    def test_unknown_pool_rejected(self):
        with pytest.raises(AllocationError, match="unknown pool"):
            EvaluationEngine(workers=2, pool="gpu")

    def test_one_worker_coerces_to_serial(self):
        engine = EvaluationEngine(workers=1, pool="process")
        assert engine.pool == "serial"


class TestMakeEngine:
    def test_none_means_no_engine(self):
        assert make_engine(None) is None

    def test_zero_sizes_to_cpu_count(self):
        engine = make_engine(0)
        assert engine is not None
        assert engine.workers == (os.cpu_count() or 1)
        engine.close()

    def test_explicit_count(self):
        engine = make_engine(3, pool="thread")
        assert (engine.workers, engine.pool) == (3, "thread")
        engine.close()


class TestObservability:
    def test_worker_gauge_set_on_creation(self):
        with EvaluationEngine(workers=4, pool="thread"):
            registry = obs.get_registry()
            assert registry.value("parallel.workers", pool="thread") == 4

    def test_batches_and_tasks_counted(self):
        with EvaluationEngine(workers=2, pool="thread") as engine:
            engine.map(square, [1, 2, 3])
            engine.map(square, [4, 5])
        registry = obs.get_registry()
        assert registry.value("parallel.batches", pool="thread") == 2
        assert registry.value("parallel.tasks", pool="thread") == 5

    def test_empty_batches_not_counted(self):
        with EvaluationEngine(workers=2, pool="thread") as engine:
            engine.map(square, [])
        assert obs.get_registry().total("parallel.batches") == 0

    @pytest.mark.parametrize("pool", POOL_KINDS)
    def test_task_counter_increments_survive_every_pool(self, pool):
        # Forked workers increment a copy-on-write clone of the
        # registry; the engine must marshal those deltas back so
        # counters stay bit-identical to a serial run (regression:
        # process-pool runs used to lose optimizer/calibration counts).
        with EvaluationEngine(workers=4, pool=pool) as engine:
            assert engine.map(count_and_square, list(range(10))) == \
                [i * i for i in range(10)]
        registry = obs.get_registry()
        assert registry.value("test.work_done", parity="0") == 5
        assert registry.value("test.work_done", parity="1") == 5

    def test_counter_increments_before_a_worker_failure_survive(self):
        with EvaluationEngine(workers=4, pool="process") as engine:
            with pytest.raises(ValueError, match="boom at 3"):
                engine.map(
                    lambda x: count_and_square(fail_on_multiples_of_three(x)),
                    list(range(5)))
        # Items 0,1,2,4 completed their increment; item 3 raised first.
        assert obs.get_registry().total("test.work_done") == 4


class TestLifecycle:
    def test_close_is_idempotent(self):
        engine = EvaluationEngine(workers=2, pool="thread")
        engine.map(square, [1, 2])
        engine.close()
        engine.close()

    def test_usable_again_after_close(self):
        engine = EvaluationEngine(workers=2, pool="thread")
        engine.close()
        assert engine.map(square, [3, 4]) == [9, 16]
        engine.close()
