"""Serial-vs-parallel equivalence for the batched search strategies.

The contract under test: a search run through an
:class:`EvaluationEngine` with N workers is *bit-identical* — same
allocation, same total cost, same evaluation count, same stopped flag —
to the same search at 1 worker, for every algorithm and pool kind.

Also home to the evaluation-accounting regression test: two searches
interleaving on one shared cost model must each report exactly their
own spend (the old implementation diffed the shared
``CostModel.evaluations`` counter across the run, attributing the other
search's work to whoever finished last).
"""

import threading

import pytest

from repro.core.cost_model import CostModel
from repro.core.problem import VirtualizationDesignProblem, WorkloadSpec
from repro.core.search import ALGORITHMS, make_algorithm
from repro.engine.database import Database
from repro.parallel import EvaluationEngine
from repro.virt.machine import PhysicalMachine
from repro.virt.resources import ResourceKind, ResourceVector
from repro.workloads.workload import Workload


class SyntheticCostModel(CostModel):
    """cost_i(R) = cpu_weight_i / cpu + mem_weight_i / memory.

    Pure and stateless per pair, so it is honestly ``parallel_safe`` —
    the same property the optimizer cost model has.
    """

    kind = "synthetic"
    parallel_safe = True

    def __init__(self, weights):
        super().__init__()
        self._weights = weights

    def _cost(self, spec, allocation: ResourceVector) -> float:
        cpu_weight, mem_weight = self._weights[spec.name]
        cost = 0.0
        if cpu_weight:
            cost += cpu_weight / max(allocation.cpu, 1e-9)
        if mem_weight:
            cost += mem_weight / max(allocation.memory, 1e-9)
        return cost


WEIGHTS = {"cpu-hungry": (10.0, 1.0), "mem-hungry": (1.0, 10.0)}


def make_problem(weights, controlled=(ResourceKind.CPU, ResourceKind.MEMORY)):
    specs = [
        WorkloadSpec(Workload(name, ["select 1 from t"]), Database(name))
        for name in weights
    ]
    problem = VirtualizationDesignProblem(
        machine=PhysicalMachine(), specs=specs,
        controlled_resources=controlled,
    )
    return problem, SyntheticCostModel(weights)


def run_search(algorithm, engine, grid=6, weights=WEIGHTS, **kwargs):
    problem, model = make_problem(weights)
    result = make_algorithm(algorithm, grid=grid, engine=engine,
                            **kwargs).search(problem, model)
    return result, model


def fingerprint(result):
    """Everything a search reports, as comparable plain data."""
    return {
        "allocation": {
            name: result.allocation.vector_for(name).as_tuple()
            for name in result.allocation.workload_names()
        },
        "total_cost": result.total_cost,
        "per_workload": result.per_workload_costs,
        "evaluations": result.evaluations,
        "stopped": result.stopped,
    }


class TestBitIdentity:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    @pytest.mark.parametrize("pool", ["thread", "process"])
    def test_four_workers_match_one(self, algorithm, pool):
        with EvaluationEngine(workers=1) as serial:
            baseline, _ = run_search(algorithm, serial)
        with EvaluationEngine(workers=4, pool=pool) as engine:
            result, _ = run_search(algorithm, engine)
        assert fingerprint(result) == fingerprint(baseline)

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_budget_stop_parity(self, algorithm):
        # A tight budget must trip at the same point (same spend, same
        # best-so-far allocation) regardless of the worker count,
        # because batch boundaries never depend on it.
        with EvaluationEngine(workers=1) as serial:
            baseline, _ = run_search(algorithm, serial, max_evaluations=5)
        with EvaluationEngine(workers=4, pool="thread") as engine:
            result, _ = run_search(algorithm, engine, max_evaluations=5)
        assert baseline.stopped
        assert fingerprint(result) == fingerprint(baseline)

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_batched_engine_path_matches_unbatched_legacy_path(self, algorithm):
        # The engine-attached strategies rework the evaluation order but
        # must land on the same design, cost, and spend as the original
        # unbatched code path (engine=None).
        legacy, _ = run_search(algorithm, None)
        with EvaluationEngine(workers=1) as serial:
            batched, _ = run_search(algorithm, serial)
        assert fingerprint(batched) == fingerprint(legacy)


class TestEvaluationAccounting:
    """Regression: interleaved searches must not steal each other's spend."""

    def test_interleaved_searches_report_their_own_counts(self):
        weights = {"a": (3.0, 1.0), "b": (1.0, 3.0),
                   "c": (8.0, 2.0), "d": (2.0, 8.0)}
        specs = {
            name: WorkloadSpec(Workload(name, ["select 1 from t"]),
                               Database(name))
            for name in weights
        }
        machine = PhysicalMachine()

        def problem_for(names):
            return VirtualizationDesignProblem(
                machine=machine, specs=[specs[n] for n in names],
                controlled_resources=(ResourceKind.CPU, ResourceKind.MEMORY),
            )

        # Expected spend: each search alone on a fresh model.
        expected = {}
        for names in (("a", "b"), ("c", "d")):
            solo = make_algorithm("exhaustive", grid=6).search(
                problem_for(names), SyntheticCostModel(weights))
            expected[names] = solo.evaluations
            assert solo.evaluations > 0

        # Now interleave both searches on ONE shared model, from two
        # threads, so their cost_many calls genuinely overlap.
        shared = SyntheticCostModel(weights)
        results = {}
        barrier = threading.Barrier(2)

        def run(names):
            barrier.wait()
            results[names] = make_algorithm("exhaustive", grid=6).search(
                problem_for(names), shared)

        threads = [threading.Thread(target=run, args=(names,))
                   for names in (("a", "b"), ("c", "d"))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Disjoint workloads -> disjoint memo keys -> each search's
        # reported spend equals its solo spend, and the shared model's
        # total is exactly the sum (nothing double- or mis-counted).
        for names, result in results.items():
            assert result.evaluations == expected[names]
        assert shared.evaluations == sum(expected.values())

    def test_sequential_searches_on_shared_model_stay_disjoint(self):
        # Second search over the same problem is all memo hits: it must
        # report zero spend, not inherit the first search's.
        problem, model = make_problem(WEIGHTS)
        first = make_algorithm("exhaustive", grid=5).search(problem, model)
        second = make_algorithm("exhaustive", grid=5).search(problem, model)
        assert first.evaluations > 0
        assert second.evaluations == 0
        assert second.total_cost == first.total_cost
