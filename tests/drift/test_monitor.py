"""Unit tests for the observation log and the Page–Hinkley monitor."""

import math

import pytest

from repro.drift import (
    DriftMonitor,
    Observation,
    ObservationLog,
    PageHinkley,
)
from repro.util.errors import DriftError

pytestmark = pytest.mark.drift


def obs(epoch, observed, predicted=1.0, workload="w", alloc=(0.5, 0.5, 0.5)):
    return Observation(epoch=epoch, workload=workload, allocation=alloc,
                       predicted=predicted, observed=observed)


class TestObservation:
    def test_residual_is_log_ratio(self):
        assert obs(0, observed=1.0).residual == 0.0
        assert obs(0, observed=math.e).residual == pytest.approx(1.0)
        # Symmetric: over- and under-prediction of the same factor are
        # equally far from zero.
        slow = obs(0, observed=1.2).residual
        fast = obs(0, observed=1 / 1.2).residual
        assert slow == pytest.approx(-fast)

    def test_residual_is_scale_stable(self):
        small = obs(0, observed=1.2, predicted=1.0).residual
        large = obs(0, observed=120.0, predicted=100.0).residual
        assert small == pytest.approx(large)

    def test_non_positive_times_raise(self):
        with pytest.raises(DriftError):
            obs(0, observed=0.0)
        with pytest.raises(DriftError):
            obs(0, observed=1.0, predicted=-1.0)


class TestObservationLog:
    def test_record_and_query(self):
        log = ObservationLog()
        log.record(obs(0, 1.0, workload="a"))
        log.record(obs(0, 2.0, workload="b"))
        log.record(obs(1, 3.0, workload="a"))
        assert len(log) == 3
        assert [o.observed for o in log.for_workload("a")] == [1.0, 3.0]
        assert log.residuals("b") == [pytest.approx(math.log(2.0))]
        assert log.epoch_total(0) == pytest.approx(3.0)
        assert log.epoch_total(7) == 0.0


class TestPageHinkley:
    def test_stable_stream_never_alarms(self):
        test = PageHinkley(threshold=0.1)
        assert not any(test.update(0.0) for _ in range(100))

    def test_level_shift_alarms_in_both_directions(self):
        for direction in (+1.0, -1.0):
            test = PageHinkley(threshold=0.1, delta=0.005)
            for _ in range(5):
                assert not test.update(0.0)
            fired = [test.update(direction * 0.3) for _ in range(10)]
            assert any(fired), f"no alarm for direction {direction}"

    def test_min_observations_suppresses_early_alarm(self):
        test = PageHinkley(threshold=0.01, min_observations=5)
        # A huge residual burst inside the warm-up window stays silent.
        assert not test.update(0.0)
        assert not test.update(5.0)
        assert test.statistic > 0.01

    def test_reset_clears_state(self):
        test = PageHinkley(threshold=0.1)
        for _ in range(5):
            test.update(0.5)
        test.reset()
        assert test.observations == 0
        assert test.statistic == 0.0

    def test_invalid_parameters_raise(self):
        with pytest.raises(DriftError):
            PageHinkley(threshold=0.0)
        with pytest.raises(DriftError):
            PageHinkley(threshold=0.1, delta=-0.1)
        with pytest.raises(DriftError):
            PageHinkley(threshold=0.1, min_observations=0)


class TestDriftMonitor:
    REGION = (0, 0, 0)

    def _drift_region(self, monitor, region, epochs=12):
        """Feed a stable prefix then a shifted stream; return events."""
        events = []
        for epoch in range(epochs):
            observed = 1.0 if epoch < 4 else 1.5
            event = monitor.observe(obs(epoch, observed), region)
            if event is not None:
                events.append(event)
        return events

    def test_detects_shift_and_reports_the_region(self):
        monitor = DriftMonitor(threshold=0.1)
        events = self._drift_region(monitor, self.REGION)
        assert events
        event = events[0]
        assert event.region == self.REGION
        assert event.statistic >= event.threshold == 0.1
        assert event.mean_residual > 0  # the world got slower
        assert event.observations >= 3

    def test_detection_resets_the_region_test(self):
        monitor = DriftMonitor(threshold=0.1)
        self._drift_region(monitor, self.REGION)
        # After the alarm the test restarted: its statistic is back
        # below the threshold even though drifted residuals keep coming.
        assert monitor.signals()[self.REGION] < 0.1

    def test_regions_are_independent(self):
        monitor = DriftMonitor(threshold=0.1)
        other = (1, 0, 0)
        for epoch in range(12):
            monitor.observe(obs(epoch, 1.0), other)
        events = self._drift_region(monitor, self.REGION)
        assert events
        assert all(event.region == self.REGION for event in events)
        assert monitor.regions() == sorted([self.REGION, other])

    def test_reset_forgets_everything(self):
        monitor = DriftMonitor(threshold=0.1)
        self._drift_region(monitor, self.REGION)
        monitor.reset()
        assert monitor.signals() == {}
        assert monitor.regions() == []

    def test_deterministic_replay(self):
        """The same observation stream produces identical events —
        the property that lets a resumed loop re-derive its detection
        state instead of journaling it."""
        def run():
            monitor = DriftMonitor(threshold=0.1)
            return self._drift_region(monitor, self.REGION)

        assert run() == run()
