"""Crash-recovery equivalence for the online loop: a killed-and-resumed
run must be **bit-identical** to an uninterrupted one at *every*
journaled unit boundary.

The online journal interleaves five unit kinds — calibrations of the
initial fit, per-epoch observations, drift events, recalibrations on
the degraded host, and redesigns — so the kill sweep exercises every
transition: mid-fit, between observation and detection, between
detection and repair, mid-repair (budget partially spent), and between
repair and redesign. Exact equality on the parsed records is the
point: resume must not perturb the fault stream, the capacity
trajectory, the detection state, or a single float.
"""

import pytest

from repro.recovery import RunJournal

from tests.drift.conftest import (
    design_allocation,
    journal_fingerprint,
    make_supervisor,
)

pytestmark = pytest.mark.drift


class TestOnlineResumeEquivalence:
    def test_journal_covers_every_unit_kind(self, baseline):
        kinds = {kind for kind, _data in baseline["fingerprint"]}
        assert kinds == {"calibration", "observation", "drift",
                         "recalibration", "redesign", "result"}

    def test_kill_at_every_unit_boundary_then_resume(
            self, baseline, drift_problem, degrading_plan, tmp_path):
        """The tentpole property: for every k, kill after k units,
        resume, and get the baseline journal and design back bit for
        bit."""
        total = baseline["total_units"]
        assert total >= 10
        base_run = baseline["run"]
        base_design = design_allocation(base_run.design)
        for k in range(1, total):
            path = tmp_path / f"kill-at-{k}.journal"
            killed = make_supervisor(drift_problem, path, degrading_plan,
                                     max_units=k).run()
            assert not killed.completed, f"kill at k={k} did not stop"
            assert killed.new_units == k

            resumed = make_supervisor(drift_problem, path,
                                      degrading_plan).run(resume=True)
            assert resumed.completed, f"resume after k={k} did not finish"
            assert resumed.replayed_units == k

            fingerprint = journal_fingerprint(RunJournal.open(path))
            assert fingerprint == baseline["fingerprint"], (
                f"resumed journal diverged from the uninterrupted run "
                f"after a kill at unit {k}")
            assert design_allocation(resumed.design) == base_design
            assert (resumed.design.predicted_total_cost
                    == base_run.design.predicted_total_cost)
            assert resumed.budget_spent == base_run.budget_spent
            assert [e.region for e in resumed.events] \
                == [e.region for e in base_run.events]

    def test_torn_tail_resume_is_equivalent(
            self, baseline, drift_problem, degrading_plan, tmp_path):
        """A kill mid-append leaves a torn final line; resume truncates
        it, re-runs that unit, and still matches the baseline."""
        path = tmp_path / "torn.journal"
        make_supervisor(drift_problem, path, degrading_plan,
                        max_units=7).run()
        with open(path, "a") as handle:
            handle.write('{"seq": 99, "kind": "observation", "da')
        resumed = make_supervisor(drift_problem, path,
                                  degrading_plan).run(resume=True)
        assert resumed.completed
        assert resumed.replayed_units == 7
        fingerprint = journal_fingerprint(RunJournal.open(path))
        assert fingerprint == baseline["fingerprint"]

    def test_double_resume_is_idempotent(
            self, baseline, drift_problem, degrading_plan, tmp_path):
        """Resuming an already-completed run replays everything and
        commits nothing new."""
        path = tmp_path / "complete.journal"
        run = make_supervisor(drift_problem, path, degrading_plan).run()
        assert run.completed
        again = make_supervisor(drift_problem, path,
                                degrading_plan).run(resume=True)
        assert again.completed
        assert again.new_units == 0
        fingerprint = journal_fingerprint(RunJournal.open(path))
        assert fingerprint == baseline["fingerprint"]
