"""Closed-loop behavior of the online supervisor (and its primitives)."""

import pytest

from repro.drift import DegradingWorld, OnlineSupervisor
from repro.faults import FaultPlan
from repro.obs import metrics
from repro.surrogate import design_continuous, warm_start
from repro.util.errors import DriftError, RecoveryError
from repro.virt.machine import laboratory_machine

from tests.drift.conftest import (
    EPOCHS,
    GRID,
    RECAL_BUDGET,
    design_allocation,
    make_supervisor,
    tiny_workbench,
)

pytestmark = pytest.mark.drift


class TestDegradingWorld:
    def test_benign_plan_never_degrades(self):
        world = DegradingWorld(laboratory_machine(), FaultPlan(name="none"))
        for _ in range(10):
            assert world.advance() == 1.0
        assert world.machine is world._base

    def test_degradation_is_cumulative_cpu_only_and_floored(self):
        plan = FaultPlan.named("turbulent").with_overrides(
            host_degrade_rate=1.0, host_degrade_factor=0.5)
        base = laboratory_machine()
        world = DegradingWorld(base, plan)
        first = world.advance()
        assert first == pytest.approx(0.5)
        degraded = world.machine
        assert (degraded.cpu_units_per_second
                == pytest.approx(base.cpu_units_per_second * 0.5))
        # Only the CPU channel moves — I/O stays healthy, so the
        # optimal share split genuinely shifts.
        assert degraded.io_seq_mib_per_second == base.io_seq_mib_per_second
        assert (degraded.io_random_ops_per_second
                == base.io_random_ops_per_second)
        for _ in range(20):
            world.advance()
        assert world.capacity >= 0.05

    def test_trajectory_is_a_pure_function_of_the_plan(self):
        plan = FaultPlan.named("turbulent").with_overrides(
            host_degrade_rate=0.35)
        runs = []
        for _ in range(2):
            world = DegradingWorld(laboratory_machine(), plan)
            runs.append([world.advance() for _ in range(8)])
        assert runs[0] == runs[1]


class TestWarmStart:
    def test_descends_from_the_incumbent_deterministically(
            self, drift_problem, degrading_plan):
        from repro.calibration import CalibrationCache, CalibrationRunner

        cache = CalibrationCache(CalibrationRunner(
            laboratory_machine(), workbench=tiny_workbench()))
        outcome = design_continuous(drift_problem, cache, grid=GRID,
                                    max_calibrations=12)
        start = drift_problem.default_allocation()
        first = warm_start(drift_problem, outcome.surface, start, grid=GRID)
        second = warm_start(drift_problem, outcome.surface, start, grid=GRID)
        assert design_allocation(first) == design_allocation(second)
        assert first.predicted_total_cost == second.predicted_total_cost
        # Descent never loses to its own starting point.
        assert (first.predicted_total_cost
                <= first.default_total_cost + 1e-12)
        assert first.algorithm == "warm-start"


class TestOnlineRun:
    @pytest.fixture(scope="class")
    def run(self, baseline):
        return baseline["run"]

    def test_closed_loop_detects_and_repairs(self, run):
        assert run.completed
        assert run.epochs == EPOCHS
        assert run.events, "the degrading world never tripped the monitor"
        assert run.recalibrations > 0
        assert run.redesigns > 0
        assert run.design is not None
        assert run.surface is not None

    def test_budget_accounting(self, run):
        assert 0 < run.budget_spent <= RECAL_BUDGET
        assert run.budget_remaining == RECAL_BUDGET - run.budget_spent

    def test_trajectory_tracks_every_epoch(self, run):
        assert [point["epoch"] for point in run.trajectory] \
            == list(range(EPOCHS))
        capacities = [point["capacity"] for point in run.trajectory]
        assert all(later <= earlier + 1e-12 for earlier, later
                   in zip(capacities, capacities[1:]))
        assert capacities[-1] < 1.0, "the plan never degraded the host"
        observed = sum(point["observed_seconds"] for point in run.trajectory)
        assert observed == pytest.approx(
            sum(o.observed for o in run.observations.observations))

    def test_repairs_zero_the_refit_knots_uncertainty(self, run):
        """Refit knots were just calibrated: their uncertainty is 0 on
        the final surface."""
        refit_regions = {tuple(event.region) for event in run.events}
        assert refit_regions
        # At least the best-ranked drifted region was fully repaired.
        assert any(run.surface.region_uncertainty(region) == 0.0
                   for region in refit_regions)

    def test_counters(self, drift_problem, degrading_plan, tmp_path):
        metrics.reset()
        supervisor = make_supervisor(
            drift_problem, tmp_path / "counters.journal", degrading_plan)
        run = supervisor.run()
        snapshot = {
            (entry["name"],): entry["value"]
            for entry in metrics.get_registry().snapshot()["counters"]
            if entry["name"].startswith("drift.")
        }
        assert snapshot[("drift.epochs",)] == EPOCHS
        assert snapshot[("drift.observations",)] == EPOCHS * 2
        assert snapshot[("drift.events",)] == len(run.events)
        assert snapshot[("drift.redesigns",)] == run.redesigns
        assert snapshot[("drift.recalibrations",)] == run.recalibrations
        gauges = {entry["name"]: entry["value"]
                  for entry in metrics.get_registry().snapshot()["gauges"]}
        assert gauges["drift.budget_remaining"] == run.budget_remaining


class TestContracts:
    def test_benign_plan_raises_no_alarms(self, drift_problem, tmp_path):
        supervisor = make_supervisor(
            drift_problem, tmp_path / "benign.journal",
            FaultPlan(name="none"), epochs=3,
            drift_threshold=0.15)
        run = supervisor.run()
        assert run.completed
        assert run.events == []
        assert run.recalibrations == 0
        assert run.redesigns == 0

    def test_unit_budget_stops_resumably(self, drift_problem,
                                         degrading_plan, tmp_path):
        supervisor = make_supervisor(
            drift_problem, tmp_path / "stopped.journal", degrading_plan,
            max_units=5)
        run = supervisor.run()
        assert not run.completed
        assert run.new_units == 5

    def test_resume_identity_is_checked(self, drift_problem,
                                        degrading_plan, tmp_path):
        path = tmp_path / "identity.journal"
        make_supervisor(drift_problem, path, degrading_plan,
                        max_units=5).run()
        other = make_supervisor(drift_problem, path, degrading_plan,
                                drift_threshold=0.42)
        with pytest.raises(RecoveryError, match="drift_threshold"):
            other.run(resume=True)

    def test_invalid_configuration_raises(self, drift_problem,
                                          degrading_plan, tmp_path):
        with pytest.raises(DriftError):
            make_supervisor(drift_problem, tmp_path / "x.journal",
                            degrading_plan, epochs=0)
        with pytest.raises(DriftError):
            make_supervisor(drift_problem, tmp_path / "x.journal",
                            degrading_plan, recal_budget=0)
