"""Planner tests: rank by drift signal × uncertainty, repair on budget."""

import pytest

from repro.calibration import CalibrationCache, CalibrationRunner
from repro.drift import DriftEvent, RecalibrationPlanner
from repro.surrogate import ParameterSurface, SurrogateBuilder
from repro.util.errors import CalibrationError, DriftError
from repro.virt.machine import laboratory_machine

from tests.drift.conftest import tiny_workbench

pytestmark = pytest.mark.drift


def params(t_seq=0.001):
    from repro.optimizer.params import OptimizerParameters

    return OptimizerParameters(
        seq_page_cost=1.0, random_page_cost=4.0, cpu_tuple_cost=0.01,
        cpu_index_tuple_cost=0.005, cpu_operator_cost=0.0025,
        cpu_like_byte_cost=0.001, effective_cache_size=1000,
        sort_mem_pages=64, seconds_per_seq_page=t_seq)


def surface(uncertainty=None):
    """A 3x1x1 lattice: two CPU regions, one knot column each side."""
    knots = {(cpu, 0.5, 0.5): params() for cpu in (0.25, 0.5, 0.75)}
    return ParameterSurface(knots, uncertainty=uncertainty)


def event(region, statistic, epoch=0):
    return DriftEvent(epoch=epoch, region=region, statistic=statistic,
                      threshold=0.1, mean_residual=0.2, observations=4)


def builder(budget=None):
    cache = CalibrationCache(CalibrationRunner(
        laboratory_machine(), workbench=tiny_workbench()))
    return SurrogateBuilder(cache, max_calibrations=budget)


class TestPlan:
    def test_uncertainty_weights_the_drift_signal(self):
        """Equal drift statistics: the uncertain region outranks the
        confident one — the budget goes where the fit already knew it
        was interpolating poorly."""
        surf = surface(uncertainty={(0.75, 0.5, 0.5): 0.2})
        planner = RecalibrationPlanner(builder())
        plan = planner.plan(surf, [event((0, 0, 0), 0.3),
                                   event((1, 0, 0), 0.3)])
        assert plan.regions == [(1, 0, 0), (0, 0, 0)]
        assert plan.scores[(1, 0, 0)] == pytest.approx(0.3 * 0.2)
        # The confident region is floored, not zeroed.
        assert plan.scores[(0, 0, 0)] == pytest.approx(0.3 * 0.01)

    def test_knots_are_region_corners_deduplicated(self):
        surf = surface()
        planner = RecalibrationPlanner(builder())
        plan = planner.plan(surf, [event((0, 0, 0), 0.5),
                                   event((1, 0, 0), 0.2)])
        # The shared corner column (cpu=0.5) stays at its best rank.
        assert plan.knots == [(0.25, 0.5, 0.5), (0.5, 0.5, 0.5),
                              (0.75, 0.5, 0.5)]

    def test_pre_alarm_signals_rank_behind_alarms(self):
        surf = surface()
        planner = RecalibrationPlanner(builder())
        plan = planner.plan(surf, [event((0, 0, 0), 0.5)],
                            signals={(1, 0, 0): 0.1})
        assert plan.regions == [(0, 0, 0), (1, 0, 0)]

    def test_no_events_no_plan(self):
        planner = RecalibrationPlanner(builder())
        assert planner.plan(surface(), []).is_empty

    def test_invalid_floor_raises(self):
        with pytest.raises(DriftError):
            RecalibrationPlanner(builder(), uncertainty_floor=0.0)


class TestExecute:
    def _plan(self, planner, surf):
        return planner.plan(surf, [event((0, 0, 0), 0.5),
                                   event((1, 0, 0), 0.2)])

    def test_refits_overwrite_and_spend_budget(self):
        surf = surface()
        planner = RecalibrationPlanner(builder(budget=10))
        fresh = params(t_seq=0.002)
        report = planner.execute(surf, self._plan(planner, surf),
                                 lambda knot: fresh)
        assert report.refits == 3
        assert not report.stopped
        assert planner.spent == 3
        assert planner.remaining == 7
        for knot in surf.knots:
            assert (report.surface.knot_params(knot).seconds_per_seq_page
                    == 0.002)

    def test_budget_stops_mid_plan_best_ranked_first(self):
        surf = surface()
        planner = RecalibrationPlanner(builder(budget=2))
        seen = []

        def calibrate(knot):
            seen.append(knot)
            return params(t_seq=0.002)

        report = planner.execute(surf, self._plan(planner, surf), calibrate)
        assert report.stopped
        assert report.refits == 2
        assert planner.remaining == 0
        # The best-ranked region's corners were repaired first.
        assert seen == [(0.25, 0.5, 0.5), (0.5, 0.5, 0.5)]

    def test_permanent_failure_keeps_the_stale_knot(self):
        surf = surface()
        planner = RecalibrationPlanner(builder(budget=10))

        def calibrate(knot):
            if knot == (0.5, 0.5, 0.5):
                raise CalibrationError("host unreachable")
            return params(t_seq=0.002)

        report = planner.execute(surf, self._plan(planner, surf), calibrate)
        assert report.fallbacks == 1
        assert report.refits == 2
        # Failed knot kept stale; the budget still paid for the attempt.
        assert (report.surface.knot_params((0.5, 0.5, 0.5))
                .seconds_per_seq_page == 0.001)
        assert report.requests == 3
