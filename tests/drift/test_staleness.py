"""Surrogate staleness edges: overwriting drifted knots must not
loosen any interpolation guard, and a partially recalibrated fit must
survive the v3 cache round trip checksum-intact."""

import pytest

from repro.calibration import CalibrationCache, CalibrationRunner
from repro.obs import metrics
from repro.surrogate import ParameterSurface
from repro.util.errors import SurrogateError
from repro.virt.machine import laboratory_machine
from repro.virt.resources import ResourceVector

from tests.drift.conftest import tiny_workbench
from tests.drift.test_planner import params

pytestmark = pytest.mark.drift


def cpu_surface(uncertainty=None):
    """3 CPU levels x 1 x 1, with per-knot cpu_tuple_cost spreads."""
    knots = {}
    for index, cpu in enumerate((0.25, 0.5, 0.75)):
        p = params(t_seq=0.001 * (index + 1))
        knots[(cpu, 0.5, 0.5)] = p
    return ParameterSurface(knots, uncertainty=uncertainty)


class TestWithKnots:
    def test_overwrite_preserves_monotonicity_clamps(self):
        """After a refit the blended parameters between knots still sit
        inside the [min, max] range of the *new* corner values."""
        surf = cpu_surface()
        refit = surf.with_knots({(0.25, 0.5, 0.5): params(t_seq=0.01)})
        query = ResourceVector.of(cpu=0.375, memory=0.5, io=0.5)
        blended = refit.params_for(query)
        lo = min(0.01, 0.002)
        hi = max(0.01, 0.002)
        assert lo <= blended.seconds_per_seq_page <= hi
        corners = [refit.knot_params((0.25, 0.5, 0.5)),
                   refit.knot_params((0.5, 0.5, 0.5))]
        for name in ("random_page_cost", "cpu_tuple_cost"):
            observed = [c.as_dict()[name] for c in corners]
            assert (min(observed) <= blended.as_dict()[name]
                    <= max(observed))

    def test_overwrite_preserves_hull_guards(self):
        """Out-of-hull lookups still clamp (never extrapolate) after a
        boundary knot is overwritten with very different values."""
        surf = cpu_surface().with_knots(
            {(0.75, 0.5, 0.5): params(t_seq=0.05)})
        metrics.reset()
        outside = ResourceVector.of(cpu=0.95, memory=0.5, io=0.5)
        clamped = surf.params_for(outside)
        # Clamped onto the refreshed boundary knot, not extrapolated
        # beyond it.
        assert clamped.seconds_per_seq_page == 0.05
        snapshot = metrics.get_registry().snapshot()["counters"]
        assert any(entry["name"] == "surrogate.lookups"
                   and entry["labels"].get("result") == "clamped"
                   for entry in snapshot)

    def test_off_lattice_overwrite_raises(self):
        surf = cpu_surface()
        with pytest.raises(SurrogateError):
            surf.with_knots({(0.3, 0.5, 0.5): params()})

    def test_overwrite_zeroes_uncertainty(self):
        surf = cpu_surface(uncertainty={(0.5, 0.5, 0.5): 0.3})
        assert surf.region_uncertainty((0, 0, 0)) == 0.3
        refit = surf.with_knots({(0.5, 0.5, 0.5): params()})
        assert refit.knot_uncertainty((0.5, 0.5, 0.5)) == 0.0
        # The original surface is untouched (refits return new surfaces).
        assert surf.knot_uncertainty((0.5, 0.5, 0.5)) == 0.3


class TestRegionAddressing:
    def test_region_of_brackets_and_clamps(self):
        surf = cpu_surface()
        at = ResourceVector.of
        assert surf.region_of(at(cpu=0.3, memory=0.5, io=0.5)) == (0, 0, 0)
        assert surf.region_of(at(cpu=0.6, memory=0.5, io=0.5)) == (1, 0, 0)
        # Knots belong to the region they start: cpu=0.5 opens cell 1.
        assert surf.region_of(at(cpu=0.5, memory=0.5, io=0.5)) == (1, 0, 0)
        # Out-of-hull queries clamp onto the boundary cells.
        assert surf.region_of(at(cpu=0.05, memory=0.5, io=0.5)) == (0, 0, 0)
        assert surf.region_of(at(cpu=0.95, memory=0.5, io=0.5)) == (1, 0, 0)

    def test_region_corners_validates(self):
        surf = cpu_surface()
        assert surf.region_corners((0, 0, 0)) == [(0.25, 0.5, 0.5),
                                                  (0.5, 0.5, 0.5)]
        with pytest.raises(SurrogateError):
            surf.region_corners((5, 0, 0))


class TestCacheRoundTrip:
    def _cache(self):
        return CalibrationCache(CalibrationRunner(
            laboratory_machine(), workbench=tiny_workbench()))

    def test_v3_round_trip_after_partial_recalibration(self, tmp_path):
        """save → load → targeted refit → save → load: checksums hold
        and the refreshed values (and uncertainties) survive."""
        surf = cpu_surface(uncertainty={(0.75, 0.5, 0.5): 0.2})
        cache = self._cache()
        cache.attach_surrogate(surf)
        first = tmp_path / "fit.json"
        cache.save(first)

        loaded = self._cache()
        loaded.load(first)
        restored = loaded.surrogate
        assert restored.knot_uncertainty((0.75, 0.5, 0.5)) == 0.2
        assert restored.has_uncertainty

        # A drift repair overwrites one knot of the *loaded* fit.
        repaired = restored.with_knots(
            {(0.75, 0.5, 0.5): params(t_seq=0.02)})
        loaded.attach_surrogate(repaired)
        second = tmp_path / "repaired.json"
        loaded.save(second)

        final = self._cache()
        final.load(second)
        surface = final.surrogate
        assert surface.knot_params((0.75, 0.5, 0.5)).seconds_per_seq_page \
            == 0.02
        assert surface.knot_uncertainty((0.75, 0.5, 0.5)) == 0.0
        # Untouched knots round-trip bit-identically.
        for knot in ((0.25, 0.5, 0.5), (0.5, 0.5, 0.5)):
            assert (surface.knot_params(knot).as_dict()
                    == surf.knot_params(knot).as_dict())

    def test_tampered_surrogate_block_is_detected(self, tmp_path):
        import json

        cache = self._cache()
        cache.attach_surrogate(cpu_surface())
        path = tmp_path / "fit.json"
        cache.save(path)
        payload = json.loads(path.read_text())
        payload["surrogate"]["knots"][0]["parameters"][
            "cpu_tuple_cost"] = 99.0
        path.write_text(json.dumps(payload))
        from repro.util.errors import CalibrationError

        with pytest.raises(CalibrationError):
            self._cache().load(path)

    def test_zero_uncertainty_serializes_like_legacy_fits(self):
        """Surfaces without uncertainty keep the pre-drift on-disk
        shape: no per-knot uncertainty fields at all."""
        payload = cpu_surface().as_dict()
        assert all("uncertainty" not in entry
                   for entry in payload["knots"])
        restored = ParameterSurface.from_dict(payload)
        assert not restored.has_uncertainty
