"""Shared fixtures for the drift-aware online recalibration tests.

Same affordability trick as the recovery suite: one TPC-H query per
workload, the reduced calibration workbench, a 3-level grid. The fault
plan cranks the turbulent plan's host-degrade channel up (35% per
epoch, each event keeping 80% of CPU) so a five-epoch run reliably
drifts; the Page–Hinkley threshold drops to 0.05 so detection happens
within the few residuals such a short run produces.
"""

from __future__ import annotations

import pytest

from repro.calibration.synthetic import (
    HUGE_TABLE,
    SMALL_TABLE,
    CalibrationWorkbench,
)
from repro.core.problem import VirtualizationDesignProblem, WorkloadSpec
from repro.drift import OnlineSupervisor
from repro.faults import FaultPlan
from repro.virt.machine import laboratory_machine
from repro.virt.resources import ResourceKind
from repro.workloads import Workload, build_tpch_database, tpch_query

GRID = 3
EPOCHS = 5
DRIFT_THRESHOLD = 0.05
RECAL_BUDGET = 8
SURROGATE_BUDGET = 12


def tiny_workbench() -> CalibrationWorkbench:
    return CalibrationWorkbench(rows={
        SMALL_TABLE: 200,
        "cal_scan_a": 1_000,
        "cal_scan_b": 2_000,
        "cal_scan_c": 3_000,
        HUGE_TABLE: 4_000,
    })


@pytest.fixture(scope="package")
def drift_problem() -> VirtualizationDesignProblem:
    db = build_tpch_database(scale_factor=0.002,
                             tables=["customer", "orders", "lineitem"])
    specs = [
        WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 1), db),
        WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 2), db),
    ]
    return VirtualizationDesignProblem(
        machine=laboratory_machine(), specs=specs,
        controlled_resources=(ResourceKind.CPU,),
    )


@pytest.fixture(scope="package")
def degrading_plan() -> FaultPlan:
    return FaultPlan.named("turbulent").with_overrides(
        host_degrade_rate=0.35, host_degrade_factor=0.8)


def make_supervisor(problem, path, plan, **kwargs) -> OnlineSupervisor:
    kwargs.setdefault("epochs", EPOCHS)
    kwargs.setdefault("grid", GRID)
    kwargs.setdefault("drift_threshold", DRIFT_THRESHOLD)
    kwargs.setdefault("recal_budget", RECAL_BUDGET)
    kwargs.setdefault("surrogate_budget", SURROGATE_BUDGET)
    kwargs.setdefault("workbench", tiny_workbench())
    return OnlineSupervisor(problem, path, plan=plan, **kwargs)


def journal_fingerprint(journal):
    """Every committed record, in order, as plain data."""
    return [(record.kind, record.data) for record in journal.records]


def design_allocation(design):
    return {name: design.allocation.vector_for(name).as_tuple()
            for name in design.allocation.workload_names()}


@pytest.fixture(scope="package")
def baseline(drift_problem, degrading_plan, tmp_path_factory):
    """One uninterrupted online run, shared by the equivalence tests."""
    from repro.recovery import RunJournal

    path = tmp_path_factory.mktemp("drift-baseline") / "online.journal"
    supervisor = make_supervisor(drift_problem, path, degrading_plan)
    run = supervisor.run()
    assert run.completed
    return {
        "run": run,
        "supervisor": supervisor,
        "fingerprint": journal_fingerprint(RunJournal.open(path)),
        "total_units": run.new_units,
    }
