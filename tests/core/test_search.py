"""Tests for the combinatorial search algorithms.

A synthetic, analytically known cost model keeps these fast and lets
optimality be checked exactly: DP and exhaustive search must agree, and
greedy must never beat them.
"""

import itertools

import pytest

from repro.core.cost_model import CostModel
from repro.core.problem import VirtualizationDesignProblem, WorkloadSpec
from repro.core.search import (
    DynamicProgrammingSearch,
    ExhaustiveSearch,
    GreedySearch,
    compositions,
    make_algorithm,
)
from repro.engine.database import Database
from repro.util.errors import AllocationError
from repro.virt.machine import PhysicalMachine
from repro.virt.resources import ResourceKind, ResourceVector
from repro.workloads.workload import Workload


class SyntheticCostModel(CostModel):
    """cost_i(R) = cpu_weight_i / cpu + mem_weight_i / memory."""

    def __init__(self, weights):
        super().__init__()
        self._weights = weights  # name -> (cpu_weight, mem_weight)

    def _cost(self, spec, allocation: ResourceVector) -> float:
        cpu_weight, mem_weight = self._weights[spec.name]
        cost = 0.0
        if cpu_weight:
            cost += cpu_weight / max(allocation.cpu, 1e-9)
        if mem_weight:
            cost += mem_weight / max(allocation.memory, 1e-9)
        return cost


def make_problem(weights, controlled=(ResourceKind.CPU, ResourceKind.MEMORY)):
    specs = [
        WorkloadSpec(Workload(name, ["select 1 from t"]), Database(name))
        for name in weights
    ]
    problem = VirtualizationDesignProblem(
        machine=PhysicalMachine(), specs=specs,
        controlled_resources=controlled,
    )
    return problem, SyntheticCostModel(weights)


def brute_force_optimum(weights, grid, controlled=2):
    """Independent reference optimum over the same discretization."""
    names = sorted(weights)
    best = float("inf")
    splits = list(compositions(grid, len(names)))
    axes = [splits] * controlled
    for combo in itertools.product(*axes):
        total = 0.0
        for i, name in enumerate(names):
            cpu = combo[0][i] / grid
            mem = (combo[1][i] / grid) if controlled > 1 else 1.0 / len(names)
            cpu_w, mem_w = weights[name]
            total += cpu_w / cpu + (mem_w / mem if mem_w else 0.0)
        best = min(best, total)
    return best


class TestCompositions:
    def test_enumerates_all(self):
        assert sorted(compositions(4, 2)) == [(1, 3), (2, 2), (3, 1)]

    def test_minimum_respected(self):
        assert all(min(c) >= 2 for c in compositions(8, 3, minimum=2))

    def test_infeasible_is_empty(self):
        assert list(compositions(2, 3)) == []

    def test_single_part(self):
        assert list(compositions(5, 1)) == [(5,)]


WEIGHTS_SKEWED = {"cpu-hungry": (10.0, 1.0), "mem-hungry": (1.0, 10.0)}
WEIGHTS_EQUAL = {"a": (5.0, 5.0), "b": (5.0, 5.0)}


class TestExhaustive:
    def test_finds_brute_force_optimum(self):
        problem, model = make_problem(WEIGHTS_SKEWED)
        result = ExhaustiveSearch(grid=4).search(problem, model)
        assert result.total_cost == pytest.approx(
            brute_force_optimum(WEIGHTS_SKEWED, 4)
        )

    def test_skewed_demands_get_skewed_shares(self):
        problem, model = make_problem(WEIGHTS_SKEWED)
        result = ExhaustiveSearch(grid=4).search(problem, model)
        assert result.allocation.vector_for("cpu-hungry").cpu > 0.5
        assert result.allocation.vector_for("mem-hungry").memory > 0.5

    def test_equal_demands_get_equal_shares(self):
        problem, model = make_problem(WEIGHTS_EQUAL)
        result = ExhaustiveSearch(grid=4).search(problem, model)
        assert result.allocation.vector_for("a").cpu == pytest.approx(0.5)

    def test_allocation_always_full(self):
        problem, model = make_problem(WEIGHTS_SKEWED)
        result = ExhaustiveSearch(grid=5).search(problem, model)
        result.allocation.validate(require_full=True)

    def test_uncontrolled_resource_fixed(self):
        problem, model = make_problem(WEIGHTS_SKEWED,
                                      controlled=(ResourceKind.CPU,))
        result = ExhaustiveSearch(grid=4).search(problem, model)
        assert result.allocation.vector_for("cpu-hungry").memory == 0.5

    def test_three_workloads(self):
        weights = {"a": (8.0, 1.0), "b": (1.0, 8.0), "c": (4.0, 4.0)}
        problem, model = make_problem(weights)
        result = ExhaustiveSearch(grid=6).search(problem, model)
        assert result.total_cost == pytest.approx(
            brute_force_optimum(weights, 6)
        )


class TestDynamicProgramming:
    def test_matches_exhaustive(self):
        problem, model = make_problem(WEIGHTS_SKEWED)
        exhaustive = ExhaustiveSearch(grid=6).search(problem, model)
        dp = DynamicProgrammingSearch(grid=6).search(problem, model)
        assert dp.total_cost == pytest.approx(exhaustive.total_cost)

    def test_matches_exhaustive_three_workloads(self):
        weights = {"a": (9.0, 2.0), "b": (2.0, 9.0), "c": (5.0, 5.0)}
        problem, model = make_problem(weights)
        exhaustive = ExhaustiveSearch(grid=6).search(problem, model)
        dp = DynamicProgrammingSearch(grid=6).search(problem, model)
        assert dp.total_cost == pytest.approx(exhaustive.total_cost)

    def test_allocation_full(self):
        problem, model = make_problem(WEIGHTS_SKEWED)
        result = DynamicProgrammingSearch(grid=5).search(problem, model)
        result.allocation.validate(require_full=True)

    def test_reconstruction_consistent_with_cost(self):
        problem, model = make_problem(WEIGHTS_SKEWED)
        result = DynamicProgrammingSearch(grid=6).search(problem, model)
        recomputed = sum(
            model.cost(problem.spec(name), result.allocation.vector_for(name))
            for name in problem.workload_names()
        )
        assert recomputed == pytest.approx(result.total_cost)


class TestGreedy:
    def test_never_beats_exhaustive(self):
        for weights in (WEIGHTS_SKEWED, WEIGHTS_EQUAL,
                        {"a": (3.0, 7.0), "b": (6.0, 2.0)}):
            problem, model = make_problem(weights)
            exhaustive = ExhaustiveSearch(grid=6).search(problem, model)
            greedy = GreedySearch(grid=6).search(problem, model)
            assert greedy.total_cost >= exhaustive.total_cost - 1e-9

    def test_improves_on_default_for_skewed(self):
        problem, model = make_problem(WEIGHTS_SKEWED)
        greedy = GreedySearch(grid=6).search(problem, model)
        default_cost = sum(
            model.cost(spec, problem.default_allocation().vector_for(spec.name))
            for spec in problem.specs
        )
        assert greedy.total_cost < default_cost

    def test_finds_optimum_on_convex_costs(self):
        # 1/x costs are convex, so single-unit hill climbing is exact.
        problem, model = make_problem(WEIGHTS_SKEWED)
        exhaustive = ExhaustiveSearch(grid=8).search(problem, model)
        greedy = GreedySearch(grid=8).search(problem, model)
        assert greedy.total_cost == pytest.approx(exhaustive.total_cost)

    def test_fewer_evaluations_than_exhaustive(self):
        weights = {"a": (8.0, 1.0), "b": (1.0, 8.0), "c": (4.0, 4.0)}
        problem_g, model_g = make_problem(weights)
        greedy = GreedySearch(grid=8).search(problem_g, model_g)
        problem_e, model_e = make_problem(weights)
        exhaustive = ExhaustiveSearch(grid=8).search(problem_e, model_e)
        assert greedy.evaluations < exhaustive.evaluations


class TestValidation:
    def test_grid_too_coarse(self):
        weights = {"a": (1, 1), "b": (1, 1), "c": (1, 1)}
        problem, model = make_problem(weights)
        with pytest.raises(AllocationError):
            GreedySearch(grid=2).search(problem, model)

    def test_grid_must_be_positive(self):
        with pytest.raises(AllocationError):
            ExhaustiveSearch(grid=0)

    def test_make_algorithm(self):
        assert isinstance(make_algorithm("greedy", 4), GreedySearch)
        assert isinstance(make_algorithm("exhaustive", 4), ExhaustiveSearch)
        assert isinstance(make_algorithm("dynamic-programming", 4),
                          DynamicProgrammingSearch)
        with pytest.raises(AllocationError):
            make_algorithm("annealing", 4)


class TestBudgets:
    """Evaluation budgets and deadlines stop searches gracefully."""

    WEIGHTS = {"a": (3.0, 1.0), "b": (1.0, 2.0), "c": (2.0, 1.0)}

    def test_unbudgeted_search_never_stops_early(self):
        problem, model = make_problem(self.WEIGHTS)
        result = ExhaustiveSearch(grid=6).search(problem, model)
        assert result.stopped is False

    def test_exhaustive_stops_on_evaluation_budget(self):
        problem, model = make_problem(self.WEIGHTS)
        result = ExhaustiveSearch(grid=6, max_evaluations=5).search(
            problem, model)
        assert result.stopped is True
        # Best-so-far is still a feasible full allocation.
        shares = [result.allocation.vector_for(n).cpu for n in self.WEIGHTS]
        assert sum(shares) == pytest.approx(1.0)

    def test_greedy_stops_on_evaluation_budget(self):
        problem, model = make_problem(self.WEIGHTS)
        result = GreedySearch(grid=6, max_evaluations=4).search(problem, model)
        assert result.stopped is True

    def test_dp_degrades_to_equal_shares(self):
        problem, model = make_problem(self.WEIGHTS)
        result = DynamicProgrammingSearch(grid=6, max_evaluations=1).search(
            problem, model)
        assert result.stopped is True
        shares = [result.allocation.vector_for(n).cpu for n in self.WEIGHTS]
        assert shares == pytest.approx([2 / 6] * 3)

    def test_deadline_stops_search(self):
        problem, model = make_problem(self.WEIGHTS)
        result = ExhaustiveSearch(grid=6, deadline_seconds=1e-9).search(
            problem, model)
        assert result.stopped is True

    def test_budget_stop_counted(self):
        from repro.obs import metrics

        before = metrics.get_registry().total("search.budget_stops")
        problem, model = make_problem(self.WEIGHTS)
        ExhaustiveSearch(grid=6, max_evaluations=2).search(problem, model)
        after = metrics.get_registry().total("search.budget_stops")
        assert after - before == 1  # counted once, not per check

    def test_budgeted_result_no_worse_than_equal_shares(self):
        problem, model = make_problem(self.WEIGHTS)
        budgeted = GreedySearch(grid=6, max_evaluations=6).search(
            problem, model)
        equal = 0.0
        for name, (cpu_w, mem_w) in self.WEIGHTS.items():
            equal += cpu_w / (2 / 6) + mem_w / (2 / 6)
        assert budgeted.total_cost <= equal + 1e-9

    def test_make_algorithm_forwards_budget(self):
        algorithm = make_algorithm("greedy", 4, max_evaluations=7,
                                   deadline_seconds=2.5)
        assert algorithm.max_evaluations == 7
        assert algorithm.deadline_seconds == 2.5

    def test_budget_validation(self):
        with pytest.raises(AllocationError):
            ExhaustiveSearch(grid=4, max_evaluations=0)
        with pytest.raises(AllocationError):
            ExhaustiveSearch(grid=4, deadline_seconds=0.0)
