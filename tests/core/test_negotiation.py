"""Tests for guest-advisory memory negotiation."""

import pytest

from repro.core.negotiation import (
    MemoryNegotiator,
    working_set_pages,
)
from repro.engine.database import Database
from repro.util.errors import AllocationError
from repro.virt.machine import PhysicalMachine
from repro.virt.monitor import VirtualMachineMonitor
from repro.virt.resources import ResourceVector
from tests.conftest import simple_schema


def small_db(name, rows):
    db = Database(name, memory_pages=1024)
    db.create_table(simple_schema())
    db.load_rows("t", [(i, i, "x" * 10) for i in range(rows)])
    db.analyze()
    return db


class TestWorkingSet:
    def test_counts_heap_and_index_pages(self):
        db = small_db("a", 5000)
        before = working_set_pages(db)
        db.create_index("t_a", "t", "a")
        after = working_set_pages(db)
        assert after > before > 0

    def test_scales_with_data(self):
        assert working_set_pages(small_db("big", 8000)) > \
            working_set_pages(small_db("small", 500))


class TestPropose:
    def test_proportional_to_advisories(self):
        shares = MemoryNegotiator(min_share=0.1).propose({"a": 300, "b": 100})
        assert shares["a"] > shares["b"]
        assert sum(shares.values()) == pytest.approx(1.0)
        # a gets the floor + 3/4 of the rest.
        assert shares["a"] == pytest.approx(0.1 + 0.8 * 0.75)

    def test_floor_respected(self):
        shares = MemoryNegotiator(min_share=0.2).propose({"a": 10_000, "b": 1})
        assert shares["b"] >= 0.2

    def test_zero_advisories_split_evenly(self):
        shares = MemoryNegotiator().propose({"a": 0, "b": 0})
        assert shares == {"a": 0.5, "b": 0.5}

    def test_empty_rejected(self):
        with pytest.raises(AllocationError):
            MemoryNegotiator().propose({})

    def test_too_many_guests_for_floor(self):
        with pytest.raises(AllocationError):
            MemoryNegotiator(min_share=0.4).propose({"a": 1, "b": 1, "c": 1})

    def test_bad_min_share(self):
        with pytest.raises(AllocationError):
            MemoryNegotiator(min_share=0.0)


class TestNegotiate:
    @pytest.fixture
    def vmm(self):
        vmm = VirtualMachineMonitor.single_host(
            PhysicalMachine(memory_mib=1024.0)
        )
        big = vmm.create_vm("big", ResourceVector.of(cpu=0.5, memory=0.5, io=0.5))
        big.attach_guest(small_db("big", 8000))
        small = vmm.create_vm("small",
                              ResourceVector.of(cpu=0.5, memory=0.5, io=0.5))
        small.attach_guest(small_db("small", 500))
        return vmm

    def test_memory_follows_working_sets(self, vmm):
        result = MemoryNegotiator().negotiate(vmm)
        assert result.shares["big"] > result.shares["small"]
        assert vmm.vms["big"].shares.memory == pytest.approx(result.shares["big"])
        # Other resources untouched.
        assert vmm.vms["big"].shares.cpu == 0.5

    def test_guest_buffer_pools_resized(self, vmm):
        pool_before = vmm.vms["small"].guest.buffer_pool.capacity
        MemoryNegotiator().negotiate(vmm)
        assert vmm.vms["small"].guest.buffer_pool.capacity < pool_before

    def test_summary(self, vmm):
        text = MemoryNegotiator().negotiate(vmm).summary()
        assert "big" in text and "pages" in text

    def test_requires_database_guests(self):
        vmm = VirtualMachineMonitor.single_host(PhysicalMachine())
        vmm.create_vm("empty", ResourceVector.of(cpu=0.5, memory=0.5, io=0.5))
        with pytest.raises(AllocationError):
            MemoryNegotiator().negotiate(vmm)
