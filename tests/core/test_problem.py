"""Tests for the problem formulation."""

import pytest

from repro.core.problem import (
    AllocationMatrix,
    VirtualizationDesignProblem,
    WorkloadSpec,
)
from repro.engine.database import Database
from repro.util.errors import AllocationError
from repro.virt.machine import PhysicalMachine
from repro.virt.resources import ResourceKind, ResourceVector
from repro.workloads.workload import Workload


def spec(name):
    return WorkloadSpec(Workload(name, ["select 1 from t"]), Database(name))


@pytest.fixture
def problem():
    return VirtualizationDesignProblem(
        machine=PhysicalMachine(),
        specs=[spec("w1"), spec("w2")],
    )


class TestAllocationMatrix:
    def test_equal_default(self):
        matrix = AllocationMatrix.equal(["a", "b", "c", "d"])
        assert matrix.vector_for("a").cpu == pytest.approx(0.25)
        matrix.validate(require_full=True)

    def test_totals(self):
        matrix = AllocationMatrix({
            "a": ResourceVector.of(cpu=0.7, memory=0.5, io=0.5),
            "b": ResourceVector.of(cpu=0.3, memory=0.5, io=0.5),
        })
        totals = matrix.resource_totals()
        assert totals[ResourceKind.CPU] == pytest.approx(1.0)
        matrix.validate(require_full=True)

    def test_oversubscription_rejected(self):
        matrix = AllocationMatrix({
            "a": ResourceVector.of(cpu=0.7),
            "b": ResourceVector.of(cpu=0.7),
        })
        with pytest.raises(AllocationError):
            matrix.validate()

    def test_partial_allocation_rejected_when_full_required(self):
        matrix = AllocationMatrix({"a": ResourceVector.of(cpu=0.5)})
        matrix.validate()  # feasible
        with pytest.raises(AllocationError):
            matrix.validate(require_full=True)

    def test_with_vector_copies(self):
        matrix = AllocationMatrix.equal(["a", "b"])
        updated = matrix.with_vector("a", ResourceVector.of(cpu=0.9))
        assert updated.vector_for("a").cpu == 0.9
        assert matrix.vector_for("a").cpu == 0.5

    def test_unknown_workload(self):
        with pytest.raises(AllocationError):
            AllocationMatrix.equal(["a"]).vector_for("ghost")

    def test_empty_rejected(self):
        with pytest.raises(AllocationError):
            AllocationMatrix({})

    def test_equality(self):
        assert AllocationMatrix.equal(["a", "b"]) == AllocationMatrix.equal(["a", "b"])


class TestProblem:
    def test_basic_accessors(self, problem):
        assert problem.n_workloads == 2
        assert problem.workload_names() == ["w1", "w2"]
        assert problem.spec("w1").name == "w1"

    def test_unknown_spec(self, problem):
        with pytest.raises(AllocationError):
            problem.spec("ghost")

    def test_duplicate_names_rejected(self):
        with pytest.raises(AllocationError):
            VirtualizationDesignProblem(
                machine=PhysicalMachine(), specs=[spec("w"), spec("w")]
            )

    def test_needs_workloads(self):
        with pytest.raises(AllocationError):
            VirtualizationDesignProblem(machine=PhysicalMachine(), specs=[])

    def test_needs_controlled_resources(self):
        with pytest.raises(AllocationError):
            VirtualizationDesignProblem(
                machine=PhysicalMachine(), specs=[spec("w")],
                controlled_resources=(),
            )

    def test_default_allocation_full(self, problem):
        problem.default_allocation().validate(require_full=True)

    def test_fixed_shares_respected(self):
        problem = VirtualizationDesignProblem(
            machine=PhysicalMachine(),
            specs=[spec("w1"), spec("w2")],
            controlled_resources=(ResourceKind.CPU,),
            fixed_shares={ResourceKind.MEMORY: {"w1": 0.7, "w2": 0.3}},
        )
        default = problem.default_allocation()
        assert default.vector_for("w1").memory == 0.7
        assert default.vector_for("w2").memory == 0.3
        assert default.vector_for("w1").cpu == 0.5  # controlled: equal
        # Unspecified fixed resource falls back to equal shares.
        assert default.vector_for("w1").io == 0.5
