"""Tests for service-level objectives."""

import pytest

from repro.core.designer import VirtualizationDesigner
from repro.core.slo import ServiceLevelObjective, SloCostModel, SloPolicy
from tests.core.test_search import make_problem

WEIGHTS = {"gold": (10.0, 1.0), "batch": (10.0, 1.0)}


class TestObjective:
    def test_defaults_unbounded(self):
        slo = ServiceLevelObjective()
        assert slo.ceiling(baseline_seconds=100.0) is None

    def test_max_seconds_ceiling(self):
        slo = ServiceLevelObjective(max_seconds=10.0)
        assert slo.ceiling(None) == 10.0

    def test_degradation_ceiling(self):
        slo = ServiceLevelObjective(max_degradation=0.2)
        assert slo.ceiling(10.0) == pytest.approx(12.0)

    def test_tightest_bound_wins(self):
        slo = ServiceLevelObjective(max_seconds=11.0, max_degradation=0.5)
        assert slo.ceiling(10.0) == 11.0

    @pytest.mark.parametrize("kwargs", [
        {"weight": -1.0}, {"max_seconds": 0.0}, {"max_degradation": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServiceLevelObjective(**kwargs)


class TestPolicy:
    def test_default_objective_for_unknown(self):
        policy = SloPolicy()
        assert policy.objective_for("anything").weight == 1.0

    def test_is_satisfied(self):
        policy = SloPolicy({"w": ServiceLevelObjective(max_seconds=5.0)})
        assert policy.is_satisfied("w", 4.0, None)
        assert not policy.is_satisfied("w", 6.0, None)
        assert policy.is_satisfied("unbounded", 1e9, None)


class TestSloDesign:
    def test_weight_shifts_allocation(self):
        # Identical workloads, but gold's seconds count 10x: the design
        # should hand gold the larger CPU share.
        problem, model = make_problem(WEIGHTS)
        policy = SloPolicy({"gold": ServiceLevelObjective(weight=10.0)})
        designer = VirtualizationDesigner(problem, model, slo=policy)
        design = designer.design("exhaustive", grid=8)
        gold_cpu = design.allocation.vector_for("gold").cpu
        batch_cpu = design.allocation.vector_for("batch").cpu
        assert gold_cpu > batch_cpu

    def test_degradation_bound_protects_workload(self):
        # Unweighted, the optimum starves 'batch'; a degradation bound
        # must keep its cost near the equal-share baseline.
        weights = {"gold": (100.0, 1.0), "batch": (1.0, 1.0)}
        problem, model = make_problem(weights)
        unconstrained = VirtualizationDesigner(problem, model) \
            .design("exhaustive", grid=8)
        batch_baseline = unconstrained.default_costs["batch"]

        problem2, model2 = make_problem(weights)
        policy = SloPolicy({
            "batch": ServiceLevelObjective(max_degradation=0.10),
        })
        constrained = VirtualizationDesigner(problem2, model2, slo=policy) \
            .design("exhaustive", grid=8)
        assert constrained.predicted_costs["batch"] <= batch_baseline * 1.10 + 1e-9
        # The constraint binds: gold gets less than it would unconstrained.
        assert constrained.allocation.vector_for("gold").cpu <= \
            unconstrained.allocation.vector_for("gold").cpu

    def test_penalty_dominates_in_wrapped_model(self):
        problem, model = make_problem(WEIGHTS)
        policy = SloPolicy({"gold": ServiceLevelObjective(max_seconds=0.001)})
        baseline = {"gold": 1.0, "batch": 1.0}
        wrapped = SloCostModel(model, policy, baseline)
        spec = problem.spec("gold")
        violating = wrapped.cost(spec, problem.default_allocation().vector_for("gold"))
        assert violating > 1000  # penalty applied

    def test_weighted_cost_without_violation(self):
        problem, model = make_problem(WEIGHTS)
        policy = SloPolicy({"gold": ServiceLevelObjective(weight=3.0)})
        wrapped = SloCostModel(model, policy, {})
        spec = problem.spec("gold")
        allocation = problem.default_allocation().vector_for("gold")
        assert wrapped.cost(spec, allocation) == pytest.approx(
            3.0 * model.cost(spec, allocation)
        )
