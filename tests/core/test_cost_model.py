"""Tests for the optimizer-based and measured cost models."""

import pytest

from repro.core.cost_model import MeasuredCostModel, OptimizerCostModel
from repro.core.problem import WorkloadSpec
from repro.virt.resources import ResourceVector
from repro.workloads import build_tpch_database
from repro.workloads.workload import Workload


def alloc(cpu=0.5, memory=0.5, io=0.5):
    return ResourceVector.of(cpu=cpu, memory=memory, io=io)


@pytest.fixture(scope="module")
def spec():
    db = build_tpch_database(scale_factor=0.002, tables=["orders", "lineitem"],
                             name="costmodel")
    workload = Workload.of_queries("probe", ["Q4", "Q12"])
    return WorkloadSpec(workload, db)


class TestOptimizerCostModel:
    def test_positive_and_memoized(self, spec, calibration_cache):
        model = OptimizerCostModel(calibration_cache)
        first = model.cost(spec, alloc())
        evaluations = model.evaluations
        second = model.cost(spec, alloc())
        assert first > 0
        assert second == first
        assert model.evaluations == evaluations  # memo hit

    def test_nothing_executed(self, spec, calibration_cache):
        model = OptimizerCostModel(calibration_cache)
        hits_before = spec.database.buffer_pool.hits + spec.database.buffer_pool.misses
        model.cost(spec, alloc(cpu=0.3))
        after = spec.database.buffer_pool.hits + spec.database.buffer_pool.misses
        assert after == hits_before

    def test_less_cpu_costs_more(self, spec, calibration_cache):
        model = OptimizerCostModel(calibration_cache)
        assert model.cost(spec, alloc(cpu=0.25)) > model.cost(spec, alloc(cpu=0.75))

    def test_parameters_for_exposes_calibration(self, spec, calibration_cache):
        model = OptimizerCostModel(calibration_cache)
        params = model.parameters_for(alloc())
        params.validate()


class TestMeasuredCostModel:
    def test_measures_execution(self, spec, lab_machine):
        model = MeasuredCostModel(lab_machine)
        cost = model.cost(spec, alloc())
        assert cost > 0

    def test_less_cpu_never_faster(self, spec, lab_machine):
        model = MeasuredCostModel(lab_machine)
        slow = model.cost(spec, alloc(cpu=0.2))
        fast = model.cost(spec, alloc(cpu=0.8))
        assert slow >= fast

    def test_planning_with_calibrated_params(self, spec, lab_machine,
                                             calibration_cache):
        tuned = MeasuredCostModel(lab_machine, calibration=calibration_cache)
        cost = tuned.cost(spec, alloc())
        assert cost > 0

    def test_deterministic(self, spec, lab_machine):
        a = MeasuredCostModel(lab_machine)
        b = MeasuredCostModel(lab_machine)
        assert a.cost(spec, alloc()) == b.cost(spec, alloc())


class TestModelsAgreeOnRanking:
    def test_estimated_ranks_match_measured_for_cpu_sweep(self, spec,
                                                          lab_machine,
                                                          calibration_cache):
        estimated = OptimizerCostModel(calibration_cache)
        measured = MeasuredCostModel(lab_machine, calibration=calibration_cache)
        allocations = [alloc(cpu=c) for c in (0.25, 0.5, 0.75)]
        est = [estimated.cost(spec, a) for a in allocations]
        act = [measured.cost(spec, a) for a in allocations]
        est_rank = sorted(range(3), key=lambda i: est[i])
        act_rank = sorted(range(3), key=lambda i: act[i])
        assert est_rank == act_rank
