"""Tests for multi-machine placement."""

import pytest

from repro.core.cost_model import CostModel
from repro.core.placement import PlacementDesigner
from repro.core.problem import WorkloadSpec
from repro.engine.database import Database
from repro.util.errors import AllocationError
from repro.virt.machine import PhysicalMachine
from repro.virt.monitor import VirtualMachineMonitor
from repro.virt.resources import ResourceKind
from repro.workloads.workload import Workload


class MachineAwareCostModel(CostModel):
    """cost = weight / (machine speed factor * share).

    Workloads tagged 'cpu-*' run fast on the cpu machine; 'io-*' on the
    io machine — so the optimal placement is easy to verify.
    """

    SPEED = {
        ("cpu-box", "cpu"): 4.0, ("cpu-box", "io"): 1.0,
        ("io-box", "cpu"): 1.0, ("io-box", "io"): 4.0,
    }

    def __init__(self, machine: PhysicalMachine):
        super().__init__()
        self._machine = machine

    def _cost(self, spec, allocation):
        kind = spec.name.split("-")[0]  # 'cpu' or 'io'
        speed = self.SPEED.get((self._machine.name, kind), 1.0)
        return 10.0 / (speed * max(allocation.cpu, 1e-9))


def spec(name):
    return WorkloadSpec(Workload(name, ["select 1 from t"]), Database(name))


@pytest.fixture
def machines():
    return [PhysicalMachine(name="cpu-box", memory_mib=4096),
            PhysicalMachine(name="io-box", memory_mib=4096)]


@pytest.fixture
def designer(machines):
    specs = [spec("cpu-1"), spec("cpu-2"), spec("io-1"), spec("io-2")]
    return PlacementDesigner(
        machines, specs, MachineAwareCostModel,
        controlled_resources=(ResourceKind.CPU,), grid=4,
    )


class TestPlacement:
    def test_affinity_respected(self, designer):
        result = designer.place()
        assert result.machine_for("cpu-1") == "cpu-box"
        assert result.machine_for("cpu-2") == "cpu-box"
        assert result.machine_for("io-1") == "io-box"
        assert result.machine_for("io-2") == "io-box"

    def test_every_workload_placed(self, designer):
        result = designer.place()
        assert set(result.assignment) == {"cpu-1", "cpu-2", "io-1", "io-2"}

    def test_designs_cover_assignment(self, designer):
        result = designer.place()
        for machine_name, design in result.designs.items():
            tenants = {name for name, m in result.assignment.items()
                       if m == machine_name}
            if tenants:
                assert set(design.allocation.workload_names()) == tenants
                design.allocation.validate()
            else:
                assert design is None

    def test_total_matches_designs(self, designer):
        result = designer.place()
        recomputed = sum(
            design.predicted_total_cost
            for design in result.designs.values() if design is not None
        )
        assert result.total_cost == pytest.approx(recomputed)

    def test_beats_worst_single_machine(self, machines):
        specs = [spec("cpu-1"), spec("io-1")]
        designer = PlacementDesigner(
            machines, specs, MachineAwareCostModel,
            controlled_resources=(ResourceKind.CPU,), grid=4,
        )
        result = designer.place()
        # Everything crammed onto one box costs more.
        crammed, _ = designer._fleet_cost({"cpu-1": "io-box", "io-1": "io-box"})
        assert result.total_cost < crammed

    def test_summary_readable(self, designer):
        text = designer.place().summary()
        assert "cpu-box" in text and "io-box" in text

    def test_single_machine_degenerates_to_design(self):
        machine = PhysicalMachine(name="cpu-box", memory_mib=4096)
        designer = PlacementDesigner(
            [machine], [spec("cpu-1"), spec("cpu-2")], MachineAwareCostModel,
            controlled_resources=(ResourceKind.CPU,), grid=4,
        )
        result = designer.place()
        assert set(result.assignment.values()) == {"cpu-box"}


class TestValidationAndDeploy:
    def test_requires_machines_and_specs(self, machines):
        with pytest.raises(AllocationError):
            PlacementDesigner([], [spec("w")], MachineAwareCostModel)
        with pytest.raises(AllocationError):
            PlacementDesigner(machines, [], MachineAwareCostModel)

    def test_duplicate_machine_names(self):
        dupes = [PhysicalMachine(name="m"), PhysicalMachine(name="m")]
        with pytest.raises(AllocationError):
            PlacementDesigner(dupes, [spec("w")], MachineAwareCostModel)

    def test_apply_places_vms_on_assigned_hosts(self, designer, machines):
        result = designer.place()
        vmm = VirtualMachineMonitor(machines)
        designer.apply(vmm, result)
        for name, machine_name in result.assignment.items():
            placed = {vm.name for vm in vmm.vms_on(machine_name)}
            assert name in placed
            assert vmm.vms[name].state.value == "running"
