"""Tests for the workload runner (measured execution in a VM)."""

import pytest

from repro.core.measure import WorkloadRunner
from repro.optimizer.params import OptimizerParameters
from repro.virt.resources import ResourceVector
from repro.workloads import build_tpch_database
from repro.workloads.workload import Workload


def alloc(cpu=0.5, memory=0.5, io=0.5):
    return ResourceVector.of(cpu=cpu, memory=memory, io=io)


@pytest.fixture(scope="module")
def db():
    return build_tpch_database(scale_factor=0.002, tables=["orders", "lineitem"],
                               name="measure")


@pytest.fixture(scope="module")
def workload():
    return Workload.of_queries("probe", ["Q4", "Q4", "Q12"])


class TestRun:
    def test_per_statement_times(self, lab_machine, db, workload):
        runner = WorkloadRunner(lab_machine)
        run = runner.run(workload, db, alloc())
        assert len(run.statement_seconds) == 3
        assert all(t > 0 for t in run.statement_seconds)
        assert run.total_seconds == pytest.approx(sum(run.statement_seconds))

    def test_cold_start_then_warm(self, lab_machine, db, workload):
        runner = WorkloadRunner(lab_machine)
        run = runner.run(workload, db, alloc())
        # The second identical Q4 benefits from whatever caching the
        # allocation sustains, so it can never be slower than the first.
        assert run.statement_seconds[1] <= run.statement_seconds[0] + 1e-9

    def test_memory_share_resizes_buffer_pool(self, lab_machine, db, workload):
        runner = WorkloadRunner(lab_machine)
        runner.run(workload, db, alloc(memory=0.75))
        large = db.buffer_pool.capacity
        runner.run(workload, db, alloc(memory=0.25))
        small = db.buffer_pool.capacity
        assert small < large

    def test_planning_params_respected(self, lab_machine, db, workload):
        runner = WorkloadRunner(lab_machine)
        crazy = OptimizerParameters.defaults().with_values(random_page_cost=1e9)
        run = runner.run(workload, db, alloc(), planning_params=crazy)
        assert run.total_seconds > 0

    def test_more_cpu_helps_or_neutral(self, lab_machine, db, workload):
        runner = WorkloadRunner(lab_machine)
        slow = runner.run(workload, db, alloc(cpu=0.25)).total_seconds
        fast = runner.run(workload, db, alloc(cpu=0.75)).total_seconds
        assert fast <= slow

    def test_noise_deterministic_per_seed(self, lab_machine, db, workload):
        a = WorkloadRunner(lab_machine, noise_sigma=0.05, seed=7)
        b = WorkloadRunner(lab_machine, noise_sigma=0.05, seed=7)
        assert a.run(workload, db, alloc()).total_seconds == \
            b.run(workload, db, alloc()).total_seconds
