"""Tests for the designer facade (search + cost model + deployment)."""

import pytest

from repro.core.designer import VirtualizationDesigner
from repro.virt.machine import PhysicalMachine
from repro.virt.monitor import VirtualMachineMonitor
from tests.core.test_search import SyntheticCostModel, make_problem

WEIGHTS = {"cpu-hungry": (10.0, 1.0), "mem-hungry": (1.0, 10.0)}


@pytest.fixture
def designer():
    problem, model = make_problem(WEIGHTS)
    return VirtualizationDesigner(problem, model)


class TestDesign:
    def test_design_improves_on_default(self, designer):
        design = designer.design("exhaustive", grid=6)
        assert design.predicted_total_cost <= design.default_total_cost
        assert design.predicted_improvement >= 0

    def test_design_reports_per_workload(self, designer):
        design = designer.design("greedy", grid=6)
        assert set(design.predicted_costs) == set(WEIGHTS)
        assert set(design.default_costs) == set(WEIGHTS)

    def test_algorithm_instance_accepted(self, designer):
        from repro.core.search import GreedySearch

        design = designer.design(GreedySearch(grid=6))
        assert design.algorithm == "greedy"

    def test_summary_readable(self, designer):
        text = designer.design("exhaustive", grid=4).summary()
        assert "cpu-hungry" in text
        assert "better" in text

    def test_evaluate_uses_raw_costs(self, designer):
        default = designer.problem.default_allocation()
        costs = designer.evaluate(default)
        assert all(value > 0 for value in costs.values())


class TestApply:
    def test_apply_creates_vms(self, designer):
        design = designer.design("exhaustive", grid=4)
        vmm = VirtualMachineMonitor.single_host(PhysicalMachine(memory_mib=4096))
        designer.apply(vmm, design)
        assert set(vmm.vms) == set(WEIGHTS)
        for name in WEIGHTS:
            vm = vmm.vms[name]
            assert vm.shares == design.allocation.vector_for(name)
            assert vm.state.value == "running"
            assert vm.guest is designer.problem.spec(name).database

    def test_apply_reconfigures_existing(self, designer):
        design = designer.design("exhaustive", grid=4)
        vmm = VirtualMachineMonitor.single_host(PhysicalMachine(memory_mib=4096))
        designer.apply(vmm, design)
        # Re-apply a different design: same VMs, new shares.
        problem, model = make_problem(
            {"cpu-hungry": (1.0, 10.0), "mem-hungry": (10.0, 1.0)}
        )
        designer2 = VirtualizationDesigner(designer.problem,
                                           SyntheticCostModel(
                                               {"cpu-hungry": (1.0, 10.0),
                                                "mem-hungry": (10.0, 1.0)}))
        flipped = designer2.design("exhaustive", grid=4)
        designer2.apply(vmm, flipped)
        assert len(vmm.vms) == 2
        assert vmm.vms["mem-hungry"].shares == flipped.allocation.vector_for(
            "mem-hungry"
        )
