"""Tests for workload drift detection and the triggered strategy."""

import pytest

from repro.core.dynamic import DynamicReallocator, WorkloadPhase
from repro.core.monitor_workload import WorkloadMonitor
from repro.virt.machine import PhysicalMachine
from tests.core.test_dynamic import PhasedCostModel, spec


class TestWorkloadMonitor:
    def test_first_observation_sets_baseline(self):
        monitor = WorkloadMonitor()
        report = monitor.observe({"w": 10.0})
        assert not report.drifted
        assert monitor.baseline == {"w": 10.0}

    def test_small_change_ignored(self):
        monitor = WorkloadMonitor(threshold=0.25)
        monitor.observe({"w": 10.0})
        assert not monitor.observe({"w": 11.0}).drifted

    def test_large_change_fires(self):
        monitor = WorkloadMonitor(threshold=0.25)
        monitor.observe({"w": 10.0})
        report = monitor.observe({"w": 15.0})
        assert report.drifted
        assert report.per_workload_change["w"] == pytest.approx(0.5)

    def test_drop_also_fires(self):
        monitor = WorkloadMonitor(threshold=0.25)
        monitor.observe({"w": 10.0})
        assert monitor.observe({"w": 5.0}).drifted

    def test_baseline_resets_on_drift(self):
        monitor = WorkloadMonitor(threshold=0.25)
        monitor.observe({"w": 10.0})
        monitor.observe({"w": 20.0})  # fires and re-anchors
        assert not monitor.observe({"w": 21.0}).drifted

    def test_persistent_shift_fires_once(self):
        monitor = WorkloadMonitor(threshold=0.25)
        monitor.observe({"w": 10.0})
        fires = [monitor.observe({"w": 20.0}).drifted for _ in range(3)]
        assert fires == [True, False, False]

    def test_new_workload_counts_as_drift(self):
        monitor = WorkloadMonitor()
        monitor.observe({"w": 10.0})
        assert monitor.observe({"w": 10.0, "new": 5.0}).drifted

    def test_worst_change(self):
        monitor = WorkloadMonitor(threshold=10.0)
        monitor.observe({"a": 10.0, "b": 10.0})
        report = monitor.observe({"a": 12.0, "b": 5.0})
        assert report.worst_change() == pytest.approx(0.5)

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            WorkloadMonitor(threshold=0.0)


class TestTriggeredStrategy:
    @pytest.fixture
    def phases(self):
        return [
            WorkloadPhase("p1", [spec("w1", "heavy"), spec("w2", "light")]),
            WorkloadPhase("p2", [spec("w1", "light"), spec("w2", "heavy")]),
            WorkloadPhase("p3", [spec("w1", "light"), spec("w2", "heavy")]),
            WorkloadPhase("p4", [spec("w1", "light"), spec("w2", "heavy")]),
        ]

    @pytest.fixture
    def cost_model(self):
        return PhasedCostModel({
            ("w1", "heavy"): (10.0, 1.0), ("w1", "light"): (1.0, 1.0),
            ("w2", "heavy"): (10.0, 1.0), ("w2", "light"): (1.0, 1.0),
        })

    def test_triggered_lags_one_phase_then_adapts(self, phases, cost_model):
        reports = DynamicReallocator(
            PhysicalMachine(), cost_model, grid=6,
            reconfiguration_seconds=0.0,
        ).run(phases)
        triggered = reports["triggered"]
        # The swap at p2 is observed and answered once.
        assert triggered.reconfigurations == 1
        assert triggered.outcomes[1].reconfigured
        # After adapting, phases 3-4 match the oracle dynamic strategy.
        dynamic = reports["dynamic"]
        for i in (2, 3):
            assert triggered.outcomes[i].total_cost == pytest.approx(
                dynamic.outcomes[i].total_cost
            )

    def test_triggered_between_static_and_dynamic(self, phases, cost_model):
        reports = DynamicReallocator(
            PhysicalMachine(), cost_model, grid=6,
            reconfiguration_seconds=0.0,
        ).run(phases)
        assert reports["dynamic"].total_cost <= \
            reports["triggered"].total_cost + 1e-9
        assert reports["triggered"].total_cost <= \
            reports["static-designed"].total_cost + 1e-9

    def test_stable_workload_never_triggers(self, cost_model):
        stable = [
            WorkloadPhase(f"p{i}", [spec("w1", "heavy"), spec("w2", "light")])
            for i in range(3)
        ]
        reports = DynamicReallocator(
            PhysicalMachine(), cost_model, grid=6,
        ).run(stable)
        assert reports["triggered"].reconfigurations == 0
