"""Tests for the dynamic reallocation controller."""

import pytest

from repro.core.dynamic import DynamicReallocator, WorkloadPhase
from repro.core.problem import WorkloadSpec
from repro.engine.database import Database
from repro.util.errors import AllocationError
from repro.virt.machine import PhysicalMachine
from repro.workloads.workload import Workload
from tests.core.test_search import SyntheticCostModel


class PhasedCostModel(SyntheticCostModel):
    """Weights keyed by (workload name, statement tag)."""

    def __init__(self, weights_by_tag):
        super().__init__({})
        self._by_tag = weights_by_tag

    def _cost(self, spec, allocation):
        tag = spec.workload.statements[0]
        cpu_weight, mem_weight = self._by_tag[(spec.name, tag)]
        return (cpu_weight / max(allocation.cpu, 1e-9)
                + mem_weight / max(allocation.memory, 1e-9))


def spec(name, tag):
    return WorkloadSpec(Workload(name, [tag]), Database(name))


@pytest.fixture
def phases():
    # Phase 1: w1 is CPU hungry. Phase 2: roles reverse.
    return [
        WorkloadPhase("day", [spec("w1", "heavy"), spec("w2", "light")]),
        WorkloadPhase("night", [spec("w1", "light"), spec("w2", "heavy")]),
    ]


@pytest.fixture
def cost_model():
    return PhasedCostModel({
        ("w1", "heavy"): (10.0, 1.0),
        ("w1", "light"): (1.0, 1.0),
        ("w2", "heavy"): (10.0, 1.0),
        ("w2", "light"): (1.0, 1.0),
    })


class TestDynamicReallocation:
    def test_dynamic_beats_static_on_phase_shift(self, phases, cost_model):
        reallocator = DynamicReallocator(
            PhysicalMachine(), cost_model, grid=6,
            reconfiguration_seconds=0.0,
        )
        reports = reallocator.run(phases)
        assert reports["dynamic"].total_cost < \
            reports["static-designed"].total_cost
        assert reports["dynamic"].total_cost < \
            reports["static-default"].total_cost

    def test_reconfiguration_counted(self, phases, cost_model):
        reallocator = DynamicReallocator(
            PhysicalMachine(), cost_model, grid=6,
            reconfiguration_seconds=2.5,
        )
        reports = reallocator.run(phases)
        dynamic = reports["dynamic"]
        assert dynamic.reconfigurations == 1  # one phase boundary change
        assert dynamic.reconfiguration_seconds == pytest.approx(2.5)

    def test_static_strategies_never_reconfigure(self, phases, cost_model):
        reports = DynamicReallocator(
            PhysicalMachine(), cost_model, grid=6
        ).run(phases)
        assert reports["static-default"].reconfigurations == 0
        assert reports["static-designed"].reconfigurations == 0

    def test_stable_workload_needs_no_reconfiguration(self, cost_model):
        stable = [
            WorkloadPhase("p1", [spec("w1", "heavy"), spec("w2", "light")]),
            WorkloadPhase("p2", [spec("w1", "heavy"), spec("w2", "light")]),
        ]
        reports = DynamicReallocator(
            PhysicalMachine(), cost_model, grid=6,
            reconfiguration_seconds=100.0,
        ).run(stable)
        assert reports["dynamic"].reconfigurations == 0
        assert reports["dynamic"].total_cost == pytest.approx(
            reports["static-designed"].total_cost
        )

    def test_outcome_bookkeeping(self, phases, cost_model):
        reports = DynamicReallocator(
            PhysicalMachine(), cost_model, grid=6
        ).run(phases)
        for report in reports.values():
            assert [o.phase_name for o in report.outcomes] == ["day", "night"]
            for outcome in report.outcomes:
                assert set(outcome.workload_costs) == {"w1", "w2"}

    def test_phases_must_match_workloads(self, cost_model):
        bad = [
            WorkloadPhase("p1", [spec("w1", "heavy")]),
            WorkloadPhase("p2", [spec("other", "heavy")]),
        ]
        with pytest.raises(AllocationError):
            DynamicReallocator(PhysicalMachine(), cost_model).run(bad)

    def test_empty_phases_rejected(self, cost_model):
        with pytest.raises(AllocationError):
            DynamicReallocator(PhysicalMachine(), cost_model).run([])
