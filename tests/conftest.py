"""Shared fixtures.

Expensive artifacts (the TPC-H database, the calibration runner and its
synthetic database) are session-scoped; tests that mutate state take
care to restore it (or use cheap per-test copies).
"""

from __future__ import annotations

import pytest

from repro.calibration import CalibrationCache, CalibrationRunner
from repro.engine.database import Database
from repro.engine.schema import Column, ColumnType, TableSchema
from repro.virt.machine import PhysicalMachine, laboratory_machine
from repro.workloads import build_tpch_database

#: Tiny scale factor used by most engine/optimizer tests.
TEST_SCALE_FACTOR = 0.002


@pytest.fixture(scope="session")
def lab_machine() -> PhysicalMachine:
    return laboratory_machine()


@pytest.fixture(scope="session")
def tpch_db() -> Database:
    """A small TPC-H database shared by read-only tests."""
    return build_tpch_database(scale_factor=TEST_SCALE_FACTOR, memory_pages=4096)


@pytest.fixture(scope="session")
def calibration_runner(lab_machine) -> CalibrationRunner:
    return CalibrationRunner(lab_machine)


@pytest.fixture(scope="session")
def calibration_cache(calibration_runner) -> CalibrationCache:
    return CalibrationCache(calibration_runner)


def simple_schema(name: str = "t") -> TableSchema:
    return TableSchema(name, [
        Column("a", ColumnType.INT),
        Column("b", ColumnType.INT),
        Column("c", ColumnType.TEXT, avg_width=20),
    ])


@pytest.fixture
def simple_db() -> Database:
    """A fresh three-column table with 1000 rows and an index on ``a``."""
    db = Database("simple", memory_pages=2048)
    db.create_table(simple_schema())
    db.load_rows("t", [(i, i % 10, f"row {i}") for i in range(1000)])
    db.create_index("t_a_idx", "t", "a")
    db.analyze()
    return db
