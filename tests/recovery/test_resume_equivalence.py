"""Crash-recovery equivalence: a killed-and-resumed run must be
**bit-identical** to an uninterrupted one.

The property tests kill a grid-search design run and a calibration
sweep after every unit boundary k, resume from the journal, and compare
the complete journal contents — calibrated parameters, cost-model
evaluations, the final design, and the watchdog's recovery actions —
against the uninterrupted baseline. Exact equality (`==` on the parsed
records, no approx) is the point: resume must not perturb the fault
stream, the search order, or a single float.
"""

import pytest

from repro.calibration import CalibrationCache, CalibrationRunner
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.recovery import RunJournal
from repro.virt.machine import laboratory_machine
from repro.virt.resources import ResourceVector

from tests.recovery.conftest import (
    journal_fingerprint,
    make_supervisor,
    tiny_workbench,
)

pytestmark = pytest.mark.recovery


class TestGridSearchEquivalence:
    def test_kill_at_every_unit_boundary_then_resume(
            self, baseline, recovery_problem, turbulent_plan, tmp_path):
        """The tentpole property: for every k, kill after k units,
        resume, and get the baseline journal back bit for bit."""
        total = baseline["total_units"]
        assert total >= 2
        for k in range(1, total):
            path = tmp_path / f"kill-at-{k}.journal"
            killed = make_supervisor(recovery_problem, path, turbulent_plan,
                                     max_units=k).run()
            assert not killed.completed, f"kill at k={k} did not stop the run"
            assert killed.new_units == k

            resumed = make_supervisor(recovery_problem, path,
                                      turbulent_plan).run(resume=True)
            assert resumed.completed, f"resume after k={k} did not finish"
            assert resumed.replayed_units == k
            assert resumed.new_units == total - k

            fingerprint = journal_fingerprint(RunJournal.open(path))
            assert fingerprint == baseline["fingerprint"], (
                f"resumed journal diverged from the uninterrupted run "
                f"after a kill at unit {k}")

    def test_resumed_design_object_matches_baseline(
            self, baseline, recovery_problem, turbulent_plan, tmp_path):
        """Beyond the journal: the in-memory Design and watchdog actions
        of a resumed run equal the baseline's exactly."""
        path = tmp_path / "run.journal"
        make_supervisor(recovery_problem, path, turbulent_plan,
                        max_units=4).run()
        resumed = make_supervisor(recovery_problem, path,
                                  turbulent_plan).run(resume=True)
        base = baseline["run"]
        names = base.design.allocation.workload_names()
        assert resumed.design.allocation.workload_names() == names
        for name in names:
            assert (resumed.design.allocation.vector_for(name).as_tuple()
                    == base.design.allocation.vector_for(name).as_tuple())
        assert (resumed.design.predicted_total_cost
                == base.design.predicted_total_cost)
        assert ([a.as_dict() for a in resumed.actions]
                == [a.as_dict() for a in base.actions])

    def test_torn_tail_resume_is_equivalent(
            self, baseline, recovery_problem, turbulent_plan, tmp_path):
        """A kill *mid-append* leaves a torn final line; resume truncates
        it, re-runs that one unit, and still matches the baseline."""
        path = tmp_path / "run.journal"
        make_supervisor(recovery_problem, path, turbulent_plan,
                        max_units=3).run()
        with open(path, "a") as handle:
            handle.write('{"seq": 99, "kind": "calibration", "da')
        resumed = make_supervisor(recovery_problem, path,
                                  turbulent_plan).run(resume=True)
        assert resumed.completed
        assert resumed.replayed_units == 3
        fingerprint = journal_fingerprint(RunJournal.open(path))
        assert fingerprint == baseline["fingerprint"]


class TestCalibrationSweepEquivalence:
    """The other half of the satellite: kill a journaled calibration
    sweep (no search involved) after each unit and resume it."""

    PLAN = FaultPlan(name="sweep", transient_rate=0.2, outlier_rate=0.1,
                     seed=23)
    ALLOCATIONS = ((0.25, 0.5, 0.5), (0.5, 0.5, 0.5), (0.75, 0.5, 0.5))

    def _cache(self, journal):
        runner = CalibrationRunner(
            laboratory_machine(), workbench=tiny_workbench(),
            injector=FaultInjector(self.PLAN, per_unit=True),
            retry_policy=RetryPolicy.resilient())
        return CalibrationCache(runner, journal=journal)

    def _sweep(self, cache, allocations):
        for shares in allocations:
            cache.params_for(ResourceVector.of(
                cpu=shares[0], memory=shares[1], io=shares[2]))

    def _replay(self, journal, cache):
        from repro.optimizer.params import OptimizerParameters

        for record in journal.records_of("calibration"):
            cache.add_point(
                tuple(float(v) for v in record.data["allocation"]),
                OptimizerParameters.from_dict(record.data["parameters"]))

    def test_kill_sweep_at_every_unit_then_resume(self, tmp_path):
        base_path = tmp_path / "sweep-baseline.journal"
        base_journal = RunJournal.create(base_path, {"run": "sweep"})
        self._sweep(self._cache(base_journal), self.ALLOCATIONS)
        base_records = [r.data for r
                        in base_journal.records_of("calibration")]
        assert len(base_records) == len(self.ALLOCATIONS)

        for k in range(1, len(self.ALLOCATIONS)):
            path = tmp_path / f"sweep-{k}.journal"
            journal = RunJournal.create(path, {"run": "sweep"})
            # The killed process calibrates only the first k allocations.
            self._sweep(self._cache(journal), self.ALLOCATIONS[:k])
            del journal  # the crash

            resumed = RunJournal.open(path)
            cache = self._cache(resumed)
            self._replay(resumed, cache)
            assert cache.n_calibrations == k
            self._sweep(cache, self.ALLOCATIONS)  # replayed units are hits
            records = [r.data for r in resumed.records_of("calibration")]
            assert records == base_records, (
                f"sweep resumed after {k} unit(s) diverged from the "
                f"uninterrupted sweep")
