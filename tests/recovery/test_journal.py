"""Tests for the write-ahead journal (``repro.recovery.journal``).

The journal's contract: atomically created, checksummed per record,
tolerant of exactly one failure mode (a torn final record from a crash
mid-append) and loud about every other kind of damage.
"""

import json

import pytest

from repro.recovery import FORMAT, JournalRecord, RunJournal, read_journal
from repro.util.errors import RecoveryError

pytestmark = pytest.mark.recovery


def make_journal(path, n_records=3):
    journal = RunJournal.create(path, {"run": "test"})
    for i in range(n_records):
        journal.append("unit", {"index": i, "value": i * 1.5})
    return journal


class TestCreateAndAppend:
    def test_create_writes_verified_header(self, tmp_path):
        path = tmp_path / "run.journal"
        RunJournal.create(path, {"run": "demo"})
        meta, records, tail = read_journal(path)
        assert meta["format"] == FORMAT
        assert meta["run"] == "demo"
        assert records == []
        assert tail == 0

    def test_create_refuses_existing_file(self, tmp_path):
        path = tmp_path / "run.journal"
        RunJournal.create(path)
        with pytest.raises(RecoveryError, match="already exists"):
            RunJournal.create(path)

    def test_create_leaves_no_file_behind_on_refusal(self, tmp_path):
        path = tmp_path / "run.journal"
        RunJournal.create(path)
        before = sorted(p.name for p in tmp_path.iterdir())
        with pytest.raises(RecoveryError):
            RunJournal.create(path)
        assert sorted(p.name for p in tmp_path.iterdir()) == before

    def test_append_round_trips(self, tmp_path):
        path = tmp_path / "run.journal"
        make_journal(path, n_records=3)
        _meta, records, tail = read_journal(path)
        assert tail == 0
        assert [r.kind for r in records] == ["unit"] * 3
        assert [r.data["index"] for r in records] == [0, 1, 2]
        assert records[1].data["value"] == pytest.approx(1.5)

    def test_sequence_numbers_are_dense(self, tmp_path):
        path = tmp_path / "run.journal"
        make_journal(path, n_records=4)
        _meta, records, _tail = read_journal(path)
        assert [r.seq for r in records] == [1, 2, 3, 4]


class TestTornTail:
    def test_partial_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "run.journal"
        make_journal(path, n_records=3)
        with open(path, "a") as handle:
            handle.write('{"seq": 4, "kind": "unit", "da')  # killed here
        _meta, records, tail = read_journal(path)
        assert tail == 1
        assert len(records) == 3

    def test_final_record_with_bad_checksum_is_dropped(self, tmp_path):
        path = tmp_path / "run.journal"
        make_journal(path, n_records=2)
        bad = json.dumps({"seq": 3, "kind": "unit", "data": {},
                          "checksum": "0" * 16})
        with open(path, "a") as handle:
            handle.write(bad + "\n")
        _meta, records, tail = read_journal(path)
        assert tail == 1
        assert len(records) == 2

    def test_open_truncates_torn_tail_then_appends_cleanly(self, tmp_path):
        path = tmp_path / "run.journal"
        make_journal(path, n_records=2)
        with open(path, "a") as handle:
            handle.write('{"torn":')
        journal = RunJournal.open(path)
        journal.append("unit", {"index": 2})
        _meta, records, tail = read_journal(path)
        assert tail == 0
        assert [r.data["index"] for r in records] == [0, 1, 2]


class TestCorruption:
    def test_checksum_mismatch_mid_file_raises(self, tmp_path):
        path = tmp_path / "run.journal"
        make_journal(path, n_records=3)
        lines = path.read_text().splitlines()
        # Flip a data byte in a middle record without fixing its checksum.
        lines[2] = lines[2].replace('"index":1', '"index":7')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(RecoveryError, match="checksum mismatch"):
            read_journal(path)

    def test_spliced_sequence_raises(self, tmp_path):
        path = tmp_path / "run.journal"
        make_journal(path, n_records=3)
        lines = path.read_text().splitlines()
        del lines[2]  # remove a middle record; seqs now skip
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(RecoveryError, match="sequence"):
            read_journal(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "run.journal"
        record = JournalRecord(seq=0, kind="unit", data={"index": 0})
        path.write_text(record.to_line() + "\n")
        with pytest.raises(RecoveryError, match="meta header"):
            read_journal(path)

    def test_wrong_format_version_raises(self, tmp_path):
        path = tmp_path / "run.journal"
        header = JournalRecord(seq=0, kind="meta",
                               data={"format": "repro-journal/99"})
        path.write_text(header.to_line() + "\n")
        with pytest.raises(RecoveryError, match="repro-journal/99"):
            read_journal(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "run.journal"
        path.write_text("")
        with pytest.raises(RecoveryError, match="empty"):
            read_journal(path)

    def test_missing_file_raises_recovery_error(self, tmp_path):
        with pytest.raises(RecoveryError, match="cannot read"):
            read_journal(tmp_path / "nope.journal")

    def test_open_refuses_corrupt_journal(self, tmp_path):
        path = tmp_path / "run.journal"
        make_journal(path, n_records=3)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-5] + 'junk"'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(RecoveryError):
            RunJournal.open(path)
