"""Tests for :class:`repro.recovery.RunSupervisor` and the journaling
cost model: a design run that survives faults, checkpoints every unit,
and refuses to resume into a different run."""

import pytest

from repro.recovery import JournalingCostModel, RunJournal, read_journal
from repro.util.errors import RecoveryError
from repro.virt.resources import ResourceVector

from tests.recovery.conftest import (
    GRID,
    journal_fingerprint,
    make_supervisor,
)

pytestmark = pytest.mark.recovery


class TestSupervisedRun:
    def test_completes_with_a_correct_design_under_faults(self, baseline):
        """The turbulent plan injects transients, VM crashes, and host
        degradation — none of which may change the *answer*."""
        design = baseline["run"].design
        shares = {
            name: design.allocation.vector_for(name).cpu
            for name in design.allocation.workload_names()
        }
        # The heavier workload must win the CPU, faults or not.
        assert shares["cust-report"] > shares["order-audit"]
        assert design.predicted_total_cost > 0.0

    def test_every_unit_is_journaled(self, baseline):
        fingerprint = baseline["fingerprint"]
        assert len(fingerprint["calibrations"]) == GRID
        assert len(fingerprint["evaluations"]) == 2 * GRID
        assert len(fingerprint["results"]) == 1
        # new_units counts budgeted work (the result record is not a
        # resumable unit — it is written once, after the design exists).
        assert baseline["total_units"] == GRID + 2 * GRID

    def test_watchdog_actions_recorded_in_result(self, baseline):
        result = baseline["fingerprint"]["results"][0]
        actions = [a["action"] for a in result["actions"]]
        assert actions == [a.action for a in baseline["run"].actions]

    def test_kill_leaves_a_resumable_journal(self, recovery_problem,
                                             turbulent_plan, tmp_path):
        path = tmp_path / "run.journal"
        killed = make_supervisor(recovery_problem, path, turbulent_plan,
                                 max_units=2).run()
        assert not killed.completed
        assert killed.design is None
        assert killed.new_units == 2
        _meta, records, tail = read_journal(path)
        assert tail == 0
        assert len(records) == 2

    def test_resume_into_different_run_is_refused(self, recovery_problem,
                                                  turbulent_plan, tmp_path):
        path = tmp_path / "run.journal"
        make_supervisor(recovery_problem, path, turbulent_plan,
                        max_units=1).run()
        different = make_supervisor(recovery_problem, path, turbulent_plan,
                                    grid=5)
        with pytest.raises(RecoveryError, match="mismatched grid"):
            different.run(resume=True)

    def test_resume_of_a_completed_run_is_a_noop_replay(self, baseline):
        journal_path = baseline["supervisor"]._journal_path
        resumed = make_supervisor(
            baseline["supervisor"]._problem, journal_path,
            baseline["supervisor"]._plan).run(resume=True)
        assert resumed.completed
        assert resumed.replayed_units == GRID + 2 * GRID
        # No duplicate result record, and the design is unchanged.
        fingerprint = journal_fingerprint(RunJournal.open(journal_path))
        assert len(fingerprint["results"]) == 1
        assert fingerprint == baseline["fingerprint"]


class _Workload:
    statements = ("SELECT 1",)


class _Spec:
    name = "w"
    workload = _Workload()


class TestJournalingCostModel:
    def test_fresh_evaluations_are_journaled_once(self, tmp_path):
        class Flat:
            kind = "flat"

            def __init__(self):
                self.calls = 0

            def cost(self, spec, allocation):
                self.calls += 1
                return 2.5

        journal = RunJournal.create(tmp_path / "j", {"run": "t"})
        inner = Flat()
        model = JournalingCostModel(inner, journal)
        allocation = ResourceVector.of(cpu=0.5, memory=0.5, io=0.5)
        spec = _Spec()
        first = model.cost(spec, allocation)
        second = model.cost(spec, allocation)
        assert first == second == 2.5
        assert inner.calls == 1
        assert len(journal.records_of("evaluation")) == 1
        record = journal.records_of("evaluation")[0]
        assert record.data == {"workload": "w",
                               "allocation": [0.5, 0.5, 0.5], "cost": 2.5}

    def test_seeded_evaluations_never_reach_the_inner_model(self, tmp_path):
        class Exploding:
            kind = "exploding"

            def cost(self, spec, allocation):  # pragma: no cover
                raise AssertionError("replayed unit was recomputed")

        journal = RunJournal.create(tmp_path / "j", {"run": "t"})
        model = JournalingCostModel(Exploding(), journal)
        allocation = ResourceVector.of(cpu=0.25, memory=0.5, io=0.5)
        spec = _Spec()
        model.seed(spec, allocation, 9.0)
        assert model.cost(spec, allocation) == 9.0
        assert journal.records_of("evaluation") == []
