"""Shared fixtures for the crash-recovery tests.

The design problem is intentionally small (one TPC-H query per
workload, a reduced calibration workbench) so that the equivalence
tests — which kill and resume a run at *every* unit boundary — stay
affordable. The shape still matches the chaos problem the CLI runs:
two workloads competing for CPU on the laboratory machine.
"""

from __future__ import annotations

import pytest

from repro.calibration.synthetic import (
    HUGE_TABLE,
    SMALL_TABLE,
    CalibrationWorkbench,
)
from repro.core.problem import VirtualizationDesignProblem, WorkloadSpec
from repro.faults import FaultPlan
from repro.recovery import RunSupervisor
from repro.virt.machine import laboratory_machine
from repro.virt.resources import ResourceKind
from repro.workloads import Workload, build_tpch_database, tpch_query

#: Grid used everywhere in these tests: 3 calibrations + 2 workloads
#: x 3 grid points = 9 journaled units per complete run.
GRID = 3
WATCHDOG_PROBES = 4


def tiny_workbench() -> CalibrationWorkbench:
    return CalibrationWorkbench(rows={
        SMALL_TABLE: 200,
        "cal_scan_a": 1_000,
        "cal_scan_b": 2_000,
        "cal_scan_c": 3_000,
        HUGE_TABLE: 4_000,
    })


@pytest.fixture(scope="package")
def recovery_problem() -> VirtualizationDesignProblem:
    db = build_tpch_database(scale_factor=0.002,
                             tables=["customer", "orders", "lineitem"])
    specs = [
        WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 1), db),
        WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 2), db),
    ]
    return VirtualizationDesignProblem(
        machine=laboratory_machine(), specs=specs,
        controlled_resources=(ResourceKind.CPU,),
    )


@pytest.fixture(scope="package")
def turbulent_plan() -> FaultPlan:
    return FaultPlan.named("turbulent")


def make_supervisor(problem, path, plan, **kwargs) -> RunSupervisor:
    kwargs.setdefault("grid", GRID)
    kwargs.setdefault("watchdog_probes", WATCHDOG_PROBES)
    kwargs.setdefault("workbench", tiny_workbench())
    return RunSupervisor(problem, path, plan=plan, **kwargs)


def journal_fingerprint(journal):
    """Everything a run commits, as plain data (bit-identical or bust)."""
    return {
        "calibrations": [r.data for r in journal.records_of("calibration")],
        "evaluations": [r.data for r in journal.records_of("evaluation")],
        "results": [r.data for r in journal.records_of("result")],
    }


@pytest.fixture(scope="package")
def baseline(recovery_problem, turbulent_plan, tmp_path_factory):
    """One uninterrupted supervised run, shared by the equivalence tests."""
    from repro.recovery import RunJournal

    path = tmp_path_factory.mktemp("baseline") / "run.journal"
    supervisor = make_supervisor(recovery_problem, path, turbulent_plan)
    run = supervisor.run()
    assert run.completed
    return {
        "run": run,
        "supervisor": supervisor,
        "fingerprint": journal_fingerprint(RunJournal.open(path)),
        "total_units": run.new_units,
    }
