"""Parallel supervised runs are bit-identical and stay crash-recoverable.

The tentpole determinism contract, applied at the top of the stack: a
journaled design run at ``workers=4`` commits the same records — the
same calibrated parameters, the same evaluations in the same order, the
same final design — as a run at ``workers=1``, under a turbulent fault
plan. And the crash-recovery property composes with it: a run killed at
a unit boundary under one worker count can be resumed under another,
because the journal's identity deliberately excludes the worker count.

(The engine-less legacy path uses a sequential fault stream, so it is
only comparable to the engine paths under a benign plan; that cross-path
check lives here too.)
"""

import pytest

from repro.faults import FaultPlan
from repro.recovery import RunJournal

from tests.recovery.conftest import journal_fingerprint, make_supervisor

pytestmark = pytest.mark.recovery


@pytest.fixture(scope="module")
def parallel_baseline(recovery_problem, turbulent_plan, tmp_path_factory):
    """One uninterrupted run at workers=1 through the engine path.

    This is the reference the worker-count equivalence tests compare
    against. It is NOT the package ``baseline`` fixture: that one runs
    the legacy engine-less path, whose sequential fault stream differs
    from the engine path's per-trial forked streams by design.
    """
    path = tmp_path_factory.mktemp("parallel-baseline") / "run.journal"
    supervisor = make_supervisor(recovery_problem, path, turbulent_plan,
                                 workers=1)
    run = supervisor.run()
    assert run.completed
    return {
        "run": run,
        "fingerprint": journal_fingerprint(RunJournal.open(path)),
        "total_units": run.new_units,
    }


class TestWorkerCountEquivalence:
    @pytest.mark.parametrize("pool", ["thread", "process"])
    def test_four_workers_journal_matches_one_worker(
            self, parallel_baseline, recovery_problem, turbulent_plan,
            tmp_path, pool):
        path = tmp_path / "run.journal"
        run = make_supervisor(recovery_problem, path, turbulent_plan,
                              workers=4, pool=pool).run()
        assert run.completed
        assert run.new_units == parallel_baseline["total_units"]
        fingerprint = journal_fingerprint(RunJournal.open(path))
        assert fingerprint == parallel_baseline["fingerprint"], (
            f"a 4-worker {pool}-pool run journaled different records "
            f"than the 1-worker run")

    def test_design_object_matches_across_worker_counts(
            self, parallel_baseline, recovery_problem, turbulent_plan,
            tmp_path):
        run = make_supervisor(recovery_problem, tmp_path / "run.journal",
                              turbulent_plan, workers=4).run()
        base = parallel_baseline["run"]
        names = base.design.allocation.workload_names()
        assert run.design.allocation.workload_names() == names
        for name in names:
            assert (run.design.allocation.vector_for(name).as_tuple()
                    == base.design.allocation.vector_for(name).as_tuple())
        assert (run.design.predicted_total_cost
                == base.design.predicted_total_cost)


class TestKillResumeAcrossWorkerCounts:
    def test_kill_parallel_resume_parallel(
            self, parallel_baseline, recovery_problem, turbulent_plan,
            tmp_path):
        """Kill a 4-worker run at every unit boundary; resume at 4."""
        total = parallel_baseline["total_units"]
        for k in range(1, total):
            path = tmp_path / f"kill-at-{k}.journal"
            killed = make_supervisor(recovery_problem, path, turbulent_plan,
                                     workers=4, max_units=k).run()
            assert not killed.completed
            assert killed.new_units == k
            resumed = make_supervisor(recovery_problem, path, turbulent_plan,
                                      workers=4).run(resume=True)
            assert resumed.completed
            assert resumed.replayed_units == k
            fingerprint = journal_fingerprint(RunJournal.open(path))
            assert fingerprint == parallel_baseline["fingerprint"], (
                f"4-worker kill/resume diverged at unit {k}")

    def test_kill_at_one_count_resume_at_another(
            self, parallel_baseline, recovery_problem, turbulent_plan,
            tmp_path):
        """Workers are not journal identity: a run killed at 4 workers
        resumes at 1 (and vice versa) onto the same records."""
        for kill_workers, resume_workers in ((4, 1), (1, 4)):
            path = tmp_path / f"{kill_workers}-to-{resume_workers}.journal"
            make_supervisor(recovery_problem, path, turbulent_plan,
                            workers=kill_workers, max_units=3).run()
            resumed = make_supervisor(recovery_problem, path, turbulent_plan,
                                      workers=resume_workers).run(resume=True)
            assert resumed.completed
            fingerprint = journal_fingerprint(RunJournal.open(path))
            assert fingerprint == parallel_baseline["fingerprint"], (
                f"kill at {kill_workers} workers / resume at "
                f"{resume_workers} diverged")


class TestLegacyPathAgreementUnderBenignPlan:
    def test_engineless_and_parallel_agree_without_faults(
            self, recovery_problem, tmp_path):
        """With no faults and no noise there is only one truth: the
        legacy unbatched path and a 4-worker engine run must journal
        identical records (greedy's batched frontier evaluates in the
        same first-appearance order as its serial probe loop)."""
        benign = FaultPlan(name="none")
        legacy_path = tmp_path / "legacy.journal"
        make_supervisor(recovery_problem, legacy_path, benign,
                        watchdog_probes=0).run()
        engine_path = tmp_path / "engine.journal"
        make_supervisor(recovery_problem, engine_path, benign,
                        watchdog_probes=0, workers=4).run()
        assert (journal_fingerprint(RunJournal.open(engine_path))
                == journal_fingerprint(RunJournal.open(legacy_path)))
