"""The join-order search must fall back to greedy beyond the DP limit."""

import pytest

from repro.engine.database import Database
from repro.engine.plans import HashJoin, MergeJoin, NestedLoopJoin, walk
from repro.engine.schema import Column, ColumnType, TableSchema
from repro.optimizer.params import OptimizerParameters
from repro.optimizer.planner import DP_RELATION_LIMIT, Planner


@pytest.fixture(scope="module")
def chain_db():
    """A chain of 12 tiny tables joinable on shared keys: beyond the DP
    limit, so the planner must take the greedy path."""
    db = Database("chain", memory_pages=2048)
    n_tables = DP_RELATION_LIMIT + 2
    for i in range(n_tables):
        db.create_table(TableSchema(f"t{i}", [
            Column("k", ColumnType.INT),
            Column(f"v{i}", ColumnType.INT),
        ]))
        db.load_rows(f"t{i}", [(j, j * (i + 1)) for j in range(20)])
    db.analyze()
    return db, n_tables


def chain_sql(n_tables):
    tables = ", ".join(f"t{i}" for i in range(n_tables))
    joins = " and ".join(
        f"t{i}.k = t{i + 1}.k" for i in range(n_tables - 1)
    )
    return f"select count(*) as n from {tables} where {joins}"


def test_greedy_fallback_plans_and_answers(chain_db):
    db, n_tables = chain_db
    sql = chain_sql(n_tables)
    planner = Planner(db.catalog, OptimizerParameters.defaults())
    plan = planner.plan_sql(sql)
    joins = [node for node in walk(plan)
             if isinstance(node, (HashJoin, MergeJoin, NestedLoopJoin))]
    assert len(joins) == n_tables - 1
    result = db.run_plan(plan)
    assert result.rows[0][0] == 20  # chain join on a shared key


def test_greedy_fallback_avoids_cross_products(chain_db):
    db, n_tables = chain_db
    plan = Planner(db.catalog, OptimizerParameters.defaults()) \
        .plan_sql(chain_sql(n_tables))
    # Every join should be keyed (hash or merge), never a cross product.
    nested = [node for node in walk(plan) if isinstance(node, NestedLoopJoin)]
    assert all(node.predicate is not None for node in nested)
