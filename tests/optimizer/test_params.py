"""Tests for optimizer parameters."""

import pytest

from repro.optimizer.params import OptimizerParameters


class TestDefaults:
    def test_postgres_flavoured_defaults(self):
        p = OptimizerParameters.defaults()
        assert p.seq_page_cost == 1.0
        assert p.random_page_cost == 4.0
        assert p.cpu_tuple_cost == 0.01
        assert p.cpu_operator_cost == 0.0025

    def test_validate_accepts_defaults(self):
        OptimizerParameters.defaults().validate()


class TestManipulation:
    def test_with_values(self):
        p = OptimizerParameters.defaults().with_values(cpu_tuple_cost=0.05)
        assert p.cpu_tuple_cost == 0.05
        assert p.random_page_cost == 4.0  # untouched

    def test_frozen(self):
        with pytest.raises(AttributeError):
            OptimizerParameters.defaults().cpu_tuple_cost = 1.0

    def test_hashable_for_cache_keys(self):
        a = OptimizerParameters.defaults()
        b = OptimizerParameters.defaults()
        assert len({a, b}) == 1

    def test_as_dict_roundtrip(self):
        p = OptimizerParameters.defaults()
        d = p.as_dict()
        assert d["cpu_tuple_cost"] == p.cpu_tuple_cost
        assert set(d) >= {"seq_page_cost", "random_page_cost",
                          "cpu_operator_cost", "effective_cache_size"}


class TestConversion:
    def test_cost_to_seconds(self):
        p = OptimizerParameters.defaults().with_values(seconds_per_seq_page=0.001)
        assert p.cost_to_seconds(500.0) == pytest.approx(0.5)

    @pytest.mark.parametrize("field,value", [
        ("cpu_tuple_cost", -1.0),
        ("seq_page_cost", 0.0),
        ("seconds_per_seq_page", 0.0),
    ])
    def test_validate_rejects_bad_values(self, field, value):
        p = OptimizerParameters.defaults().with_values(**{field: value})
        with pytest.raises(ValueError):
            p.validate()
