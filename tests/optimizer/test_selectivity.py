"""Tests for selectivity estimation."""

import pytest

from repro.engine.expr import (
    BinaryOp,
    ColumnRef,
    InListExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    NotExpr,
)
from repro.engine.statistics import TableStats, analyze_column
from repro.optimizer.selectivity import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    SelectivityEstimator,
)


@pytest.fixture
def estimator():
    stats = TableStats(table_name="t", n_rows=1000, n_pages=20)
    stats.columns["a"] = analyze_column("a", list(range(1000)))
    stats.columns["b"] = analyze_column("b", [i % 10 for i in range(1000)])
    stats.columns["n"] = analyze_column("n", [1, None, None, None] * 250)
    other = TableStats(table_name="u", n_rows=100, n_pages=5)
    other.columns["x"] = analyze_column("x", list(range(100)))
    return SelectivityEstimator({"t": stats, "u": other, "derived": None})


def col(name, alias="t"):
    return ColumnRef(alias, name)


class TestComparisons:
    def test_equality_uniform(self, estimator):
        sel = estimator.estimate(BinaryOp("=", col("a"), Literal(500)))
        assert sel == pytest.approx(0.001, abs=0.001)

    def test_equality_low_cardinality(self, estimator):
        sel = estimator.estimate(BinaryOp("=", col("b"), Literal(3)))
        assert sel == pytest.approx(0.1, abs=0.03)

    def test_range_half(self, estimator):
        sel = estimator.estimate(BinaryOp("<", col("a"), Literal(500)))
        assert sel == pytest.approx(0.5, abs=0.05)

    def test_range_flipped_constant_side(self, estimator):
        sel = estimator.estimate(BinaryOp(">", Literal(500), col("a")))
        assert sel == pytest.approx(0.5, abs=0.05)

    def test_not_equal(self, estimator):
        sel = estimator.estimate(BinaryOp("<>", col("b"), Literal(3)))
        assert sel == pytest.approx(0.9, abs=0.03)

    def test_column_vs_column_join(self, estimator):
        sel = estimator.estimate(BinaryOp("=", col("a"), col("x", "u")))
        assert sel == pytest.approx(1.0 / 1000)

    def test_no_stats_defaults(self, estimator):
        sel = estimator.estimate(BinaryOp("=", col("d", "derived"), Literal(1)))
        assert sel == DEFAULT_EQ_SELECTIVITY

    def test_expression_comparison_defaults(self, estimator):
        expr = BinaryOp("<", BinaryOp("+", col("a"), Literal(1)), col("b"))
        assert estimator.estimate(expr) == DEFAULT_RANGE_SELECTIVITY


class TestConnectives:
    def test_and_multiplies(self, estimator):
        expr = BinaryOp("and",
                        BinaryOp("<", col("a"), Literal(500)),
                        BinaryOp("=", col("b"), Literal(3)))
        assert estimator.estimate(expr) == pytest.approx(0.05, abs=0.02)

    def test_or_inclusion_exclusion(self, estimator):
        half = BinaryOp("<", col("a"), Literal(500))
        expr = BinaryOp("or", half, half)
        assert estimator.estimate(expr) == pytest.approx(0.75, abs=0.05)

    def test_not_complements(self, estimator):
        expr = NotExpr(BinaryOp("<", col("a"), Literal(500)))
        assert estimator.estimate(expr) == pytest.approx(0.5, abs=0.05)

    def test_conjunct_list_independent_columns(self, estimator):
        conjuncts = [BinaryOp("<", col("a"), Literal(500)),
                     BinaryOp("=", col("b"), Literal(3))]
        assert estimator.estimate_conjuncts(conjuncts) == \
            pytest.approx(0.05, abs=0.02)

    def test_range_pair_same_column_combined(self, estimator):
        # a >= 200 AND a < 300 is one interval (10%), not 0.8 * 0.3.
        conjuncts = [BinaryOp(">=", col("a"), Literal(200)),
                     BinaryOp("<", col("a"), Literal(300))]
        assert estimator.estimate_conjuncts(conjuncts) == \
            pytest.approx(0.1, abs=0.03)

    def test_duplicate_bounds_not_double_counted(self, estimator):
        conjuncts = [BinaryOp("<", col("a"), Literal(500)),
                     BinaryOp("<", col("a"), Literal(500))]
        assert estimator.estimate_conjuncts(conjuncts) == \
            pytest.approx(0.5, abs=0.05)

    def test_contradictory_bounds_near_zero(self, estimator):
        conjuncts = [BinaryOp(">", col("a"), Literal(800)),
                     BinaryOp("<", col("a"), Literal(100))]
        assert estimator.estimate_conjuncts(conjuncts) < 0.05

    def test_empty_conjuncts(self, estimator):
        assert estimator.estimate_conjuncts([]) == 1.0

    def test_none_predicate(self, estimator):
        assert estimator.estimate(None) == 1.0


class TestSpecialPredicates:
    def test_is_null_uses_null_fraction(self, estimator):
        assert estimator.estimate(IsNullExpr(col("n"))) == pytest.approx(0.75)
        assert estimator.estimate(IsNullExpr(col("n"), negated=True)) == \
            pytest.approx(0.25)

    def test_like_unanchored_small(self, estimator):
        sel = estimator.estimate(LikeExpr(col("a"), "%special%"))
        assert 0 < sel < 0.02

    def test_like_anchored_larger_than_unanchored(self, estimator):
        anchored = estimator.estimate(LikeExpr(col("a"), "PROMO%"))
        unanchored = estimator.estimate(LikeExpr(col("a"), "%PROMO%"))
        assert anchored > unanchored

    def test_not_like_complements(self, estimator):
        positive = estimator.estimate(LikeExpr(col("a"), "%x%"))
        negative = estimator.estimate(LikeExpr(col("a"), "%x%", negated=True))
        assert positive + negative == pytest.approx(1.0)

    def test_longer_literal_more_selective(self, estimator):
        short = estimator.estimate(LikeExpr(col("a"), "%ab%"))
        long = estimator.estimate(LikeExpr(col("a"), "%abcdefghij%"))
        assert long < short

    def test_in_list_sums(self, estimator):
        expr = InListExpr(col("b"), (1, 2, 3))
        assert estimator.estimate(expr) == pytest.approx(0.3, abs=0.05)

    def test_in_list_capped_at_one(self, estimator):
        expr = InListExpr(col("b"), tuple(range(100)))
        assert estimator.estimate(expr) <= 1.0

    def test_result_always_in_unit_interval(self, estimator):
        exprs = [
            BinaryOp("<", col("a"), Literal(-100)),
            BinaryOp(">", col("a"), Literal(10_000)),
            InListExpr(col("b"), (), negated=True),
        ]
        for expr in exprs:
            assert 0.0 <= estimator.estimate(expr) <= 1.0
