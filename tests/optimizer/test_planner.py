"""Tests for the planner: plan shapes, access paths, join ordering, and
correct execution of planned queries."""

import pytest

from repro.engine.database import Database
from repro.engine.plans import (
    Aggregate,
    HashJoin,
    IndexScan,
    JoinType,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    PlanNode,
    Project,
    SeqScan,
    Sort,
    walk,
)
from repro.engine.schema import Column, ColumnType, TableSchema
from repro.optimizer.params import OptimizerParameters
from repro.optimizer.planner import Planner


@pytest.fixture
def db():
    db = Database("plan", memory_pages=4096)
    db.create_table(TableSchema("big", [
        Column("id", ColumnType.INT),
        Column("grp", ColumnType.INT),
        Column("note", ColumnType.TEXT, avg_width=16),
    ]))
    db.create_table(TableSchema("small", [
        Column("key", ColumnType.INT),
        Column("label", ColumnType.TEXT, avg_width=10),
    ]))
    db.create_table(TableSchema("tiny", [
        Column("tkey", ColumnType.INT),
        Column("tname", ColumnType.TEXT, avg_width=10),
    ]))
    db.load_rows("big", [(i, i % 50, f"note {i}") for i in range(20_000)])
    db.load_rows("small", [(i, f"label {i}") for i in range(50)])
    db.load_rows("tiny", [(i, f"tiny {i}") for i in range(5)])
    db.create_index("big_id", "big", "id", unique=True)
    db.analyze()
    return db


@pytest.fixture
def planner(db):
    return Planner(db.catalog, OptimizerParameters.defaults())


def nodes_of(plan: PlanNode, node_type):
    return [node for node in walk(plan) if isinstance(node, node_type)]


class TestAccessPaths:
    def test_full_scan_uses_seq(self, planner):
        plan = planner.plan_sql("select id from big")
        assert nodes_of(plan, SeqScan)
        assert not nodes_of(plan, IndexScan)

    def test_selective_predicate_uses_index(self, planner):
        plan = planner.plan_sql("select grp from big where id = 17")
        scans = nodes_of(plan, IndexScan)
        assert scans and scans[0].index_name == "big_id"
        assert scans[0].low == 17 and scans[0].high == 17

    def test_narrow_range_uses_index(self, planner):
        plan = planner.plan_sql("select grp from big where id between 5 and 20")
        scans = nodes_of(plan, IndexScan)
        assert scans
        assert scans[0].low == 5 and scans[0].high == 20

    def test_wide_range_prefers_seq_scan(self, planner):
        plan = planner.plan_sql("select grp from big where id < 19000")
        assert nodes_of(plan, SeqScan)
        assert not nodes_of(plan, IndexScan)

    def test_unindexed_predicate_stays_seq(self, planner):
        plan = planner.plan_sql("select id from big where grp = 7")
        scans = nodes_of(plan, SeqScan)
        assert scans and scans[0].filter_expr is not None

    def test_high_random_page_cost_discourages_index(self, db):
        expensive = Planner(db.catalog, OptimizerParameters.defaults()
                            .with_values(random_page_cost=10_000.0))
        plan = expensive.plan_sql("select grp from big where id between 5 and 500")
        assert not nodes_of(plan, IndexScan)

    def test_estimates_annotated(self, planner):
        plan = planner.plan_sql("select id from big where grp = 7")
        assert plan.est_total_cost > 0
        scan = nodes_of(plan, SeqScan)[0]
        assert scan.est_rows == pytest.approx(400, rel=0.5)


class TestJoins:
    def test_equijoin_uses_hash_or_merge(self, planner):
        plan = planner.plan_sql(
            "select label from big, small where grp = key"
        )
        assert nodes_of(plan, HashJoin) or nodes_of(plan, MergeJoin)

    def test_join_order_three_tables(self, planner):
        plan = planner.plan_sql(
            "select label, tname from big, small, tiny "
            "where grp = key and key = tkey"
        )
        joins = nodes_of(plan, (HashJoin, MergeJoin, NestedLoopJoin))
        assert len(joins) == 2

    def test_cross_join_falls_back_to_nested_loop(self, planner):
        plan = planner.plan_sql("select label, tname from small, tiny")
        assert nodes_of(plan, NestedLoopJoin)

    def test_non_equi_join_uses_nested_loop(self, planner):
        plan = planner.plan_sql(
            "select label from small, tiny where key < tkey"
        )
        assert nodes_of(plan, NestedLoopJoin)

    def test_left_join_plan(self, planner):
        plan = planner.plan_sql(
            "select key, tname from small left outer join tiny on key = tkey"
        )
        joins = nodes_of(plan, (HashJoin, NestedLoopJoin))
        assert joins[0].join_type is JoinType.LEFT

    def test_semi_join_from_exists(self, planner):
        plan = planner.plan_sql(
            "select key from small where exists ("
            "  select 1 from tiny where tkey = key)"
        )
        joins = nodes_of(plan, (HashJoin, NestedLoopJoin))
        assert joins[0].join_type is JoinType.SEMI

    def test_anti_join_from_not_exists(self, planner):
        plan = planner.plan_sql(
            "select key from small where not exists ("
            "  select 1 from tiny where tkey = key)"
        )
        joins = nodes_of(plan, (HashJoin, NestedLoopJoin))
        assert joins[0].join_type is JoinType.ANTI

    def test_single_side_predicate_pushed_below_join(self, planner):
        plan = planner.plan_sql(
            "select label from big, small where grp = key and id < 10"
        )
        index_scans = nodes_of(plan, IndexScan)
        seq_scans = [s for s in nodes_of(plan, SeqScan)
                     if s.table_name == "big" and s.filter_expr is not None]
        assert index_scans or seq_scans

    def test_left_join_inner_predicate_pushed_to_inner(self, planner):
        plan = planner.plan_sql(
            "select key from small left outer join tiny "
            "on key = tkey and tname like '%x%'"
        )
        tiny_scans = [s for s in nodes_of(plan, SeqScan) if s.table_name == "tiny"]
        assert tiny_scans and tiny_scans[0].filter_expr is not None


class TestUpperPlan:
    def test_aggregate_project_sort_limit_stack(self, planner):
        plan = planner.plan_sql(
            "select grp, count(*) as n from big group by grp "
            "order by n desc limit 5"
        )
        assert isinstance(plan, Limit)
        assert isinstance(plan.input, Sort)
        assert isinstance(plan.input.input, Project)
        assert isinstance(plan.input.input.input, Aggregate)

    def test_group_count_estimated_from_stats(self, planner):
        plan = planner.plan_sql("select grp, count(*) from big group by grp")
        agg = nodes_of(plan, Aggregate)[0]
        assert agg.est_rows == pytest.approx(50, rel=0.2)

    def test_distinct_deduplicates(self, planner, db):
        plan = planner.plan_sql("select distinct grp from big")
        rows = db.run_plan(plan).rows
        assert sorted(row[0] for row in rows) == list(range(50))

    def test_explain_renders_tree(self, planner):
        plan = planner.plan_sql(
            "select grp, count(*) from big where id < 100 group by grp"
        )
        text = plan.explain()
        assert "Aggregate" in text
        assert "cost=" in text and "rows=" in text


class TestPlannedExecutionCorrectness:
    """Planned queries must return the same answers regardless of the
    plan shape the cost model picks."""

    def test_join_result_correct(self, planner, db):
        plan = planner.plan_sql(
            "select key, count(*) as n from big, small "
            "where grp = key group by key order by key"
        )
        rows = db.run_plan(plan).rows
        assert len(rows) == 50
        assert all(n == 400 for _key, n in rows)

    def test_plans_agree_across_parameter_sets(self, db):
        sql = ("select grp, count(*) as n from big "
               "where id between 100 and 300 group by grp order by grp")
        reference = None
        for random_cost in (0.1, 4.0, 10_000.0):
            planner = Planner(db.catalog, OptimizerParameters.defaults()
                              .with_values(random_page_cost=random_cost))
            rows = db.run_plan(planner.plan_sql(sql)).rows
            if reference is None:
                reference = rows
            else:
                assert rows == reference

    def test_leftover_conjuncts_never_dropped(self, planner, db):
        # A predicate spanning the LEFT join's two sides must survive as
        # a post-join filter.
        plan = planner.plan_sql(
            "select key, tkey from small left outer join tiny on key = tkey "
            "where key < 3"
        )
        rows = db.run_plan(plan).rows
        assert all(row[0] < 3 for row in rows)
        assert len(rows) == 3
