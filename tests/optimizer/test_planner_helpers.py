"""Unit tests for the planner's internal helpers."""


from repro.engine.expr import BinaryOp, ColumnRef, LikeExpr, Literal
from repro.optimizer.planner import (
    _ConjunctPool,
    _cross_conjuncts,
    _equi_pair,
    _extract_bound,
    _split_equi,
)


def eq(left_alias, left_col, right_alias, right_col):
    return BinaryOp("=", ColumnRef(left_alias, left_col),
                    ColumnRef(right_alias, right_col))


def local(alias, col, op="<", value=5):
    return BinaryOp(op, ColumnRef(alias, col), Literal(value))


class TestConjunctPool:
    def test_take_single_alias(self):
        pool = _ConjunctPool([local("t", "a"), eq("t", "a", "u", "x")])
        taken = pool.take_single_alias("t")
        assert len(taken) == 1
        assert len(pool.remaining()) == 1

    def test_take_multi_alias_within_region(self):
        join_pred = eq("t", "a", "u", "x")
        outside = eq("t", "a", "v", "y")
        pool = _ConjunctPool([join_pred, outside])
        taken = pool.take_multi_alias(frozenset({"t", "u"}))
        assert taken == [join_pred]
        assert pool.remaining() == [outside]

    def test_take_covered(self):
        spanning = eq("t", "a", "u", "x")
        pool = _ConjunctPool([spanning])
        assert pool.take_covered(frozenset({"t"})) == []
        assert pool.take_covered(frozenset({"t", "u"})) == [spanning]
        assert pool.remaining() == []

    def test_constant_conjunct_never_taken_as_covered(self):
        constant = BinaryOp("=", Literal(1), Literal(1))
        pool = _ConjunctPool([constant])
        assert pool.take_covered(frozenset({"t"})) == []


class TestEquiSplit:
    def test_simple_pair_oriented(self):
        pair = _equi_pair(eq("t", "a", "u", "x"),
                          frozenset({"t"}), frozenset({"u"}))
        assert pair is not None
        outer, inner = pair
        assert outer.alias == "t" and inner.alias == "u"

    def test_reversed_pair_flipped(self):
        pair = _equi_pair(eq("u", "x", "t", "a"),
                          frozenset({"t"}), frozenset({"u"}))
        outer, inner = pair
        assert outer.alias == "t" and inner.alias == "u"

    def test_non_equality_rejected(self):
        pred = BinaryOp("<", ColumnRef("t", "a"), ColumnRef("u", "x"))
        assert _equi_pair(pred, frozenset({"t"}), frozenset({"u"})) is None

    def test_same_side_rejected(self):
        pred = eq("t", "a", "t", "b")
        assert _equi_pair(pred, frozenset({"t"}), frozenset({"u"})) is None

    def test_split_separates_residual(self):
        key = eq("t", "a", "u", "x")
        residual = BinaryOp("<", ColumnRef("t", "b"), ColumnRef("u", "y"))
        pairs, rest = _split_equi([key, residual],
                                  frozenset({"t"}), frozenset({"u"}))
        assert len(pairs) == 1
        assert rest == [residual]


class TestCrossConjuncts:
    def test_selects_only_spanning(self):
        spanning = eq("t", "a", "u", "x")
        one_sided = local("t", "a")
        third_party = eq("t", "a", "v", "z")
        out = _cross_conjuncts([spanning, one_sided, third_party],
                               frozenset({"t"}), frozenset({"u"}))
        assert out == [spanning]


class TestExtractBound:
    def test_column_op_literal(self):
        assert _extract_bound(local("t", "a", "<", 9), "t", "a") == ("<", 9)
        assert _extract_bound(local("t", "a", "=", 3), "t", "a") == ("=", 3)

    def test_literal_op_column_flipped(self):
        pred = BinaryOp(">", Literal(9), ColumnRef("t", "a"))
        assert _extract_bound(pred, "t", "a") == ("<", 9)

    def test_other_column_ignored(self):
        assert _extract_bound(local("t", "b"), "t", "a") is None

    def test_other_alias_ignored(self):
        assert _extract_bound(local("u", "a"), "t", "a") is None

    def test_null_literal_ignored(self):
        pred = BinaryOp("<", ColumnRef("t", "a"), Literal(None))
        assert _extract_bound(pred, "t", "a") is None

    def test_non_sargable_ignored(self):
        assert _extract_bound(LikeExpr(ColumnRef("t", "a"), "%x%"),
                              "t", "a") is None
