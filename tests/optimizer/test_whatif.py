"""Tests for the virtualization-aware what-if optimizer mode."""

import pytest

from repro.optimizer.params import OptimizerParameters
from repro.optimizer.whatif import WhatIfOptimizer


@pytest.fixture
def whatif(simple_db):
    return WhatIfOptimizer(simple_db.catalog, OptimizerParameters.defaults())


class TestEstimation:
    def test_estimate_query(self, whatif):
        estimate = whatif.estimate_query("select count(*) as n from t")
        assert estimate.cost_units > 0
        assert estimate.estimated_seconds > 0
        assert estimate.plan is not None

    def test_estimates_deterministic_and_cached(self, whatif):
        sql = "select count(*) as n from t where a < 100"
        first = whatif.estimate_query(sql)
        second = whatif.estimate_query(sql)
        assert first is second  # plan cache hit

    def test_workload_sums_queries(self, whatif):
        sql = "select count(*) as n from t"
        single = whatif.estimate_query(sql).estimated_seconds
        total = whatif.estimate_workload([sql, sql, sql])
        assert total == pytest.approx(3 * single)

    def test_seconds_follow_conversion(self, whatif):
        estimate = whatif.estimate_query("select count(*) as n from t")
        assert estimate.estimated_seconds == pytest.approx(
            whatif.params.cost_to_seconds(estimate.cost_units)
        )


class TestParameterSwapping:
    def test_with_params_does_not_touch_catalog(self, whatif, simple_db):
        tables_before = simple_db.catalog.table_names()
        whatif.with_params(OptimizerParameters.defaults()
                           .with_values(cpu_tuple_cost=99.0))
        assert simple_db.catalog.table_names() == tables_before

    def test_different_params_different_estimates(self, whatif):
        sql = "select count(*) as n from t"
        cheap_cpu = whatif.with_params(
            OptimizerParameters.defaults().with_values(cpu_tuple_cost=0.001)
        ).estimate_query(sql)
        costly_cpu = whatif.with_params(
            OptimizerParameters.defaults().with_values(cpu_tuple_cost=1.0)
        ).estimate_query(sql)
        assert costly_cpu.cost_units > cheap_cpu.cost_units

    def test_parameters_can_flip_plan_choice(self, whatif):
        sql = "select b from t where a between 10 and 30"
        low_random = whatif.with_params(
            OptimizerParameters.defaults().with_values(random_page_cost=0.01)
        ).estimate_query(sql)
        high_random = whatif.with_params(
            OptimizerParameters.defaults().with_values(random_page_cost=1e6)
        ).estimate_query(sql)
        assert "IndexScan" in low_random.plan.explain()
        assert "IndexScan" not in high_random.plan.explain()

    def test_plan_cache_shared_across_with_params(self, whatif):
        sql = "select count(*) as n from t"
        variant = whatif.with_params(whatif.params)
        assert variant.estimate_query(sql) is whatif.estimate_query(sql)

    def test_compare_lists_all(self, whatif):
        sql = "select count(*) as n from t"
        sets = [OptimizerParameters.defaults().with_values(cpu_tuple_cost=c)
                for c in (0.001, 0.01, 0.1)]
        estimates = whatif.compare(sql, sets)
        costs = [e.cost_units for e in estimates]
        assert costs == sorted(costs)


class TestExplain:
    def test_explain_mentions_parameters(self, whatif):
        text = whatif.explain("select count(*) as n from t")
        assert "cpu_tuple_cost" in text
        assert "SeqScan" in text or "IndexScan" in text
