"""Tests for the operator cost formulas."""

import pytest

from repro.engine.expr import BinaryOp, ColumnRef, LikeExpr, Literal
from repro.optimizer import cost as costf
from repro.optimizer.params import OptimizerParameters

P = OptimizerParameters.defaults()


class TestPredicateCost:
    def test_none_is_free(self):
        assert costf.predicate_cpu_cost(None, P) == 0.0

    def test_scales_with_op_count(self):
        one = BinaryOp("<", ColumnRef("t", "a"), Literal(1))
        two = BinaryOp("and", one, one)
        assert costf.predicate_cpu_cost(two, P) > costf.predicate_cpu_cost(one, P)

    def test_like_adds_byte_cost(self):
        plain = BinaryOp("<", ColumnRef("t", "a"), Literal(1))
        like = LikeExpr(ColumnRef("t", "c"), "%x%")
        assert costf.predicate_cpu_cost(like, P) > costf.predicate_cpu_cost(plain, P)

    def test_expr_like_bytes_uses_default_width(self):
        like = LikeExpr(ColumnRef("t", "c"), "%x%")
        assert costf.expr_like_bytes(like, None) == costf.DEFAULT_TEXT_WIDTH

    def test_nested_like_found(self):
        expr = BinaryOp("and",
                        LikeExpr(ColumnRef("t", "c"), "%x%"),
                        LikeExpr(ColumnRef("t", "d"), "%y%"))
        assert costf.expr_like_bytes(expr, None) == 2 * costf.DEFAULT_TEXT_WIDTH


class TestScanCosts:
    def test_seq_scan_io_plus_cpu(self):
        cost = costf.seq_scan_cost(P, n_pages=100, n_rows=1000,
                                   filter_cost_per_tuple=0.0)
        assert cost == pytest.approx(100 * 1.0 + 1000 * 0.01)

    def test_seq_scan_filter_adds(self):
        base = costf.seq_scan_cost(P, 100, 1000, 0.0)
        filtered = costf.seq_scan_cost(P, 100, 1000, 0.005)
        assert filtered == pytest.approx(base + 1000 * 0.005)

    def test_cache_discount_monotone(self):
        small = costf.cache_discount(P, relation_pages=1000)
        large = costf.cache_discount(P, relation_pages=10 * P.effective_cache_size)
        assert small > large

    def test_cache_discount_bounds(self):
        assert 0 <= costf.cache_discount(P, 10**9) <= 0.9
        assert costf.cache_discount(P, 0) == 1.0

    def test_index_scan_cheaper_when_cached(self):
        hot = P.with_values(effective_cache_size=10**6)
        cold = P.with_values(effective_cache_size=1)
        args = dict(index_height=3, leaf_pages_fetched=10,
                    tuples_fetched=500, heap_pages=1000,
                    filter_cost_per_tuple=0.0)
        assert costf.index_scan_cost(hot, **args) < costf.index_scan_cost(cold, **args)

    def test_selective_index_beats_seq_scan(self):
        seq = costf.seq_scan_cost(P, n_pages=10_000, n_rows=1_000_000,
                                  filter_cost_per_tuple=0.0025)
        index = costf.index_scan_cost(P, index_height=3, leaf_pages_fetched=2,
                                      tuples_fetched=100, heap_pages=10_000,
                                      filter_cost_per_tuple=0.0)
        assert index < seq


class TestJoinCosts:
    def test_hash_join_includes_inputs(self):
        cost = costf.hash_join_cost(P, outer_cost=50, inner_cost=30,
                                    outer_rows=1000, inner_rows=100,
                                    result_rows=1000)
        assert cost > 80

    def test_hash_build_side_matters(self):
        small_build = costf.hash_join_cost(P, 0, 0, 1_000_000, 10, 100)
        large_build = costf.hash_join_cost(P, 0, 0, 10, 1_000_000, 100)
        assert small_build != large_build

    def test_nested_loop_quadratic(self):
        small = costf.nested_loop_cost(P, 0, 0, 100, 100, 10, 0.0025)
        large = costf.nested_loop_cost(P, 0, 0, 1000, 1000, 10, 0.0025)
        assert large > 50 * small

    def test_hash_beats_nested_loop_for_large_equijoins(self):
        hash_cost = costf.hash_join_cost(P, 0, 0, 10_000, 10_000, 10_000)
        nl_cost = costf.nested_loop_cost(P, 0, 0, 10_000, 10_000, 10_000, 0.0025)
        assert hash_cost < nl_cost

    def test_merge_join_linear_walk(self):
        cost = costf.merge_join_cost(P, 10, 10, 1000, 1000, 500)
        assert cost == pytest.approx(20 + 2000 * P.cpu_operator_cost
                                     + 500 * P.cpu_tuple_cost)


class TestSortAndAggregate:
    def test_sort_in_memory_no_io(self):
        cost = costf.sort_cost(P, input_cost=0, n_rows=100, row_width=50, n_keys=1)
        # Pure comparison CPU: 2 * n log2(n) * cpu_operator_cost.
        assert cost == pytest.approx(
            2 * 100 * 6.643856 * P.cpu_operator_cost, rel=1e-3
        )

    def test_sort_spills_beyond_workmem(self):
        small = costf.sort_cost(P, 0, 1000, 100, 1)
        huge = costf.sort_cost(P, 0, 10_000_000, 100, 1)
        pages = (10_000_000 * 100) / 8192
        assert huge > 2 * pages * P.seq_page_cost  # spill I/O dominates

    def test_sort_empty_input(self):
        assert costf.sort_cost(P, 5.0, 0, 100, 1) == 5.0

    def test_aggregate_scales_with_input(self):
        small = costf.aggregate_cost(P, 0, 1000, 10, 2, 0.005)
        large = costf.aggregate_cost(P, 0, 100_000, 10, 2, 0.005)
        assert large > 50 * small

    def test_project_and_filter(self):
        assert costf.project_cost(P, 10, 1000, 0.0025) > 10
        assert costf.filter_cost(P, 10, 1000, 0.0025) == pytest.approx(12.5)
